//! Graceful degradation under overload: the quality governor of E14.
//!
//! A real DJ set must keep producing audio even when the host is
//! overloaded — a glitch is worse than a temporarily thinner mix. This
//! module decides *when* to trade quality for headroom; the mechanics of
//! the trade (dropping FX slots through the generation-swap path, halving
//! the auxiliary-phase work) live in
//! [`AudioEngine::observe_deadline`](crate::apc::AudioEngine::observe_deadline).
//!
//! # State machine
//!
//! Two states, `Full` and `Degraded`, with hysteresis on both edges:
//!
//! * `Full → Degraded` ([`DegradeAction::Shed`]) when at least
//!   [`shed_misses`](DegradeConfig::shed_misses) of the last
//!   [`window`](DegradeConfig::window) cycles missed their deadline —
//!   a *sustained* overload signal, so an isolated scheduling hiccup
//!   never sheds quality.
//! * `Degraded → Full` ([`DegradeAction::Restore`]) after a full
//!   [`restore_clean`](DegradeConfig::restore_clean)-cycle observation
//!   chunk with at most
//!   [`restore_tolerance`](DegradeConfig::restore_tolerance) misses.
//!   The tolerance matters on real hosts: a shared machine sprinkles
//!   ~1 % random stall misses over any run, and a strict
//!   zero-miss-streak condition would block restoration forever. A
//!   chunk that exceeds the tolerance simply starts a fresh chunk, so
//!   sustained pressure keeps the engine degraded while sparse noise
//!   cannot.
//!
//! Oscillation is impossible by construction, not by tuning:
//!
//! 1. Any transition arms a dwell timer; no further transition is
//!    considered for [`min_dwell`](DegradeConfig::min_dwell) cycles.
//! 2. Every transition clears the miss window and the restore chunk, so
//!    the evidence for the *next* transition must accumulate entirely
//!    after the current one — pre-transition misses can never justify a
//!    re-shed after a restore.
//!
//! Together these bound the transition rate at one per `min_dwell`
//! cycles and force each transition to be justified by fresh evidence.

/// Thresholds of the degradation state machine. Cycle counts, not wall
/// time — the engine observes one deadline verdict per audio cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeConfig {
    /// Sliding window (in cycles) over which misses are counted.
    pub window: usize,
    /// Misses within the window that trigger a shed.
    pub shed_misses: usize,
    /// Length (in cycles) of the degraded-mode observation chunk a
    /// restore needs.
    pub restore_clean: usize,
    /// Misses a restore chunk may contain and still count as clean
    /// (absorbs host-noise misses; sustained pressure always exceeds it).
    pub restore_tolerance: usize,
    /// Minimum cycles between two transitions (both directions).
    pub min_dwell: u64,
}

impl Default for DegradeConfig {
    /// Defaults sized for the 2.9 ms cycle: react to sustained overload
    /// within ~1/8 s, restore after ~1/4 s of near-clean running, and
    /// never transition more than ~5×/s.
    fn default() -> Self {
        DegradeConfig {
            window: 32,
            shed_misses: 4,
            restore_clean: 96,
            restore_tolerance: 4,
            min_dwell: 64,
        }
    }
}

/// A transition the policy wants the engine to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeAction {
    /// Enter degraded mode: shed non-critical load.
    Shed,
    /// Leave degraded mode: restore full quality.
    Restore,
}

/// A committed transition, for telemetry and the E14 report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradeEvent {
    /// Engine cycle at which the transition was committed.
    pub cycle: u64,
    /// Which way it went.
    pub action: DegradeAction,
}

/// The hysteresis state machine. Allocation-free after construction
/// except for the event log (one small push per committed transition,
/// amortized by a reserved capacity — transitions are rare by design).
#[derive(Debug)]
pub struct DegradationPolicy {
    cfg: DegradeConfig,
    /// Ring of the last `cfg.window` deadline verdicts (`true` = missed).
    ring: Vec<bool>,
    head: usize,
    filled: usize,
    misses_in_window: usize,
    /// Cycles observed in the current degraded-mode restore chunk.
    chunk_cycles: usize,
    /// Misses observed in the current restore chunk.
    chunk_misses: usize,
    degraded: bool,
    last_transition: Option<u64>,
    events: Vec<DegradeEvent>,
}

impl DegradationPolicy {
    /// Build a policy. Degenerate configs are clamped into sanity
    /// (`window ≥ 1`, `1 ≤ shed_misses ≤ window`, `restore_clean ≥ 1`)
    /// rather than rejected — a policy must never panic mid-set.
    pub fn new(cfg: DegradeConfig) -> Self {
        let window = cfg.window.max(1);
        let restore_clean = cfg.restore_clean.max(1);
        let cfg = DegradeConfig {
            window,
            shed_misses: cfg.shed_misses.clamp(1, window),
            restore_clean,
            restore_tolerance: cfg.restore_tolerance.min(restore_clean - 1),
            min_dwell: cfg.min_dwell,
        };
        DegradationPolicy {
            ring: vec![false; window],
            head: 0,
            filled: 0,
            misses_in_window: 0,
            chunk_cycles: 0,
            chunk_misses: 0,
            degraded: false,
            last_transition: None,
            events: Vec::with_capacity(64),
            cfg,
        }
    }

    /// The (clamped) configuration in force.
    pub fn config(&self) -> DegradeConfig {
        self.cfg
    }

    /// Currently in degraded mode?
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Committed transitions, oldest first.
    pub fn events(&self) -> &[DegradeEvent] {
        &self.events
    }

    /// Record one cycle's deadline verdict (`missed == true` when the
    /// cycle blew its deadline). Pure bookkeeping; pair with
    /// [`pending`](Self::pending) / [`transition`](Self::transition), or
    /// use [`step`](Self::step) to do all three.
    pub fn record(&mut self, missed: bool) {
        if self.filled == self.cfg.window {
            if self.ring[self.head] {
                self.misses_in_window -= 1;
            }
        } else {
            self.filled += 1;
        }
        self.ring[self.head] = missed;
        if missed {
            self.misses_in_window += 1;
        }
        self.head = (self.head + 1) % self.cfg.window;
        if self.degraded {
            self.chunk_cycles += 1;
            if missed {
                self.chunk_misses += 1;
            }
            // A chunk that blew its tolerance can never justify a
            // restore; start observing afresh.
            if self.chunk_cycles >= self.cfg.restore_clean
                && self.chunk_misses > self.cfg.restore_tolerance
            {
                self.chunk_cycles = 0;
                self.chunk_misses = 0;
            }
        }
    }

    /// The transition the evidence currently justifies at `cycle`, if
    /// any. Read-only: the engine performs the (fallible) topology swap
    /// first and only then commits via [`transition`](Self::transition),
    /// so a failed swap is retried next cycle with no state torn.
    pub fn pending(&self, cycle: u64) -> Option<DegradeAction> {
        if let Some(t) = self.last_transition {
            if cycle.saturating_sub(t) < self.cfg.min_dwell {
                return None;
            }
        }
        if !self.degraded && self.misses_in_window >= self.cfg.shed_misses {
            Some(DegradeAction::Shed)
        } else if self.degraded
            && self.chunk_cycles >= self.cfg.restore_clean
            && self.chunk_misses <= self.cfg.restore_tolerance
        {
            Some(DegradeAction::Restore)
        } else {
            None
        }
    }

    /// Commit a transition at `cycle`: flip the mode, log the event, arm
    /// the dwell timer, and clear both evidence accumulators so the next
    /// transition needs entirely fresh evidence.
    pub fn transition(&mut self, cycle: u64, action: DegradeAction) {
        self.degraded = matches!(action, DegradeAction::Shed);
        self.last_transition = Some(cycle);
        self.ring.fill(false);
        self.head = 0;
        self.filled = 0;
        self.misses_in_window = 0;
        self.chunk_cycles = 0;
        self.chunk_misses = 0;
        self.events.push(DegradeEvent { cycle, action });
    }

    /// Record + decide + commit in one call, for hosts without a
    /// fallible actuation step between decision and commitment.
    pub fn step(&mut self, cycle: u64, missed: bool) -> Option<DegradeAction> {
        self.record(missed);
        let action = self.pending(cycle)?;
        self.transition(cycle, action);
        Some(action)
    }
}

// --------------------------------------------------------------------------
// The network axis: latency vs. dropouts
// --------------------------------------------------------------------------

/// Thresholds of the network degradation axis (E17).
///
/// Where the deadline axis trades *quality* (FX slots) for *headroom*,
/// this axis trades *latency* (jitter-buffer playout depth) for *dropout
/// rate* (concealed frames). Deepening is cheap and urgent — every conceal
/// is an audible artifact — while shallowing merely recovers latency, so
/// the ladder climbs in [`depth_step`](Self::depth_step) jumps and
/// descends one step per clean observation chunk (the chunked restore).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetDegradeConfig {
    /// Sliding window (in cycles) over which conceals are counted.
    pub window: usize,
    /// Conceals within the window that trigger a deepen.
    pub deepen_conceals: usize,
    /// Length (in cycles) of the clean observation chunk one shallowing
    /// step needs.
    pub restore_clean: usize,
    /// Conceals a restore chunk may contain and still count as clean.
    pub restore_tolerance: usize,
    /// Minimum cycles between two depth transitions (both directions).
    pub min_dwell: u64,
    /// Depth cycles added per deepen (and removed per shallow step).
    pub depth_step: u32,
    /// Floor of the depth ladder (the latency target).
    pub min_depth: u32,
    /// Ceiling of the depth ladder (the dropout-protection limit).
    pub max_depth: u32,
}

impl Default for NetDegradeConfig {
    /// Defaults sized for the 2.9 ms cycle: react to a dropout burst
    /// within ~1/10 s, recover one step of latency per ~3/4 s of clean
    /// reception, and never retune more than ~5×/s.
    fn default() -> Self {
        NetDegradeConfig {
            window: 32,
            deepen_conceals: 2,
            restore_clean: 256,
            restore_tolerance: 0,
            min_dwell: 64,
            depth_step: 2,
            min_depth: 1,
            max_depth: 12,
        }
    }
}

/// A depth transition the network policy wants the engine to perform.
/// Carries the new target depth so actuation needs no second read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetDegradeAction {
    /// Dropouts observed: raise the playout depth to the carried target
    /// (more latency, fewer conceals).
    Deepen(u32),
    /// A clean chunk elapsed: lower the depth one step to the carried
    /// target (recover latency).
    Shallow(u32),
}

impl NetDegradeAction {
    /// The depth the action retunes to.
    pub fn target(&self) -> u32 {
        match *self {
            NetDegradeAction::Deepen(d) | NetDegradeAction::Shallow(d) => d,
        }
    }
}

/// A committed depth transition, for telemetry and the E17 report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetDegradeEvent {
    /// Engine cycle at which the transition was committed.
    pub cycle: u64,
    /// Which way it went, with the new target depth.
    pub action: NetDegradeAction,
}

/// The depth-ladder state machine of the network axis. Same
/// anti-oscillation construction as [`DegradationPolicy`]: any transition
/// arms the dwell timer and clears all evidence, so consecutive
/// transitions are at least `min_dwell` apart and each is justified by
/// observations made entirely after the previous one. Allocation-free
/// after construction except the event log.
#[derive(Debug)]
pub struct NetLatencyPolicy {
    cfg: NetDegradeConfig,
    /// Ring of the last `cfg.window` per-cycle conceal counts.
    ring: Vec<u32>,
    head: usize,
    filled: usize,
    conceals_in_window: u64,
    /// Cycles observed in the current shallow-restore chunk.
    chunk_cycles: usize,
    /// Conceals observed in the current restore chunk.
    chunk_conceals: u64,
    target_depth: u32,
    last_transition: Option<u64>,
    events: Vec<NetDegradeEvent>,
}

impl NetLatencyPolicy {
    /// Build a policy starting at `start_depth`. Degenerate configs are
    /// clamped into sanity rather than rejected.
    pub fn new(cfg: NetDegradeConfig, start_depth: u32) -> Self {
        let window = cfg.window.max(1);
        let restore_clean = cfg.restore_clean.max(1);
        let max_depth = cfg.max_depth.max(cfg.min_depth.max(1));
        let cfg = NetDegradeConfig {
            window,
            deepen_conceals: cfg.deepen_conceals.max(1),
            restore_clean,
            restore_tolerance: cfg.restore_tolerance,
            min_dwell: cfg.min_dwell,
            depth_step: cfg.depth_step.max(1),
            min_depth: cfg.min_depth.max(1),
            max_depth,
        };
        NetLatencyPolicy {
            ring: vec![0; window],
            head: 0,
            filled: 0,
            conceals_in_window: 0,
            chunk_cycles: 0,
            chunk_conceals: 0,
            target_depth: start_depth.clamp(cfg.min_depth, cfg.max_depth),
            last_transition: None,
            events: Vec::with_capacity(64),
            cfg,
        }
    }

    /// The (clamped) configuration in force.
    pub fn config(&self) -> NetDegradeConfig {
        self.cfg
    }

    /// The depth the policy currently wants the jitter buffers at.
    pub fn target_depth(&self) -> u32 {
        self.target_depth
    }

    /// Committed depth transitions, oldest first.
    pub fn events(&self) -> &[NetDegradeEvent] {
        &self.events
    }

    /// Record one cycle's dropout evidence: how many frames the remote
    /// decks concealed this cycle.
    pub fn record(&mut self, conceals: u32) {
        if self.filled == self.cfg.window {
            self.conceals_in_window -= self.ring[self.head] as u64;
        } else {
            self.filled += 1;
        }
        self.ring[self.head] = conceals;
        self.conceals_in_window += conceals as u64;
        self.head = (self.head + 1) % self.cfg.window;
        if self.target_depth > self.cfg.min_depth {
            self.chunk_cycles += 1;
            self.chunk_conceals += conceals as u64;
            if self.chunk_cycles >= self.cfg.restore_clean
                && self.chunk_conceals > self.cfg.restore_tolerance as u64
            {
                self.chunk_cycles = 0;
                self.chunk_conceals = 0;
            }
        }
    }

    /// The depth transition the evidence currently justifies at `cycle`.
    /// Read-only, like [`DegradationPolicy::pending`]: the engine actuates
    /// first and commits via [`transition`](Self::transition) only on
    /// success.
    pub fn pending(&self, cycle: u64) -> Option<NetDegradeAction> {
        if let Some(t) = self.last_transition {
            if cycle.saturating_sub(t) < self.cfg.min_dwell {
                return None;
            }
        }
        if self.target_depth < self.cfg.max_depth
            && self.conceals_in_window >= self.cfg.deepen_conceals as u64
        {
            let to = (self.target_depth + self.cfg.depth_step).min(self.cfg.max_depth);
            Some(NetDegradeAction::Deepen(to))
        } else if self.target_depth > self.cfg.min_depth
            && self.chunk_cycles >= self.cfg.restore_clean
            && self.chunk_conceals <= self.cfg.restore_tolerance as u64
        {
            let to = self
                .target_depth
                .saturating_sub(self.cfg.depth_step)
                .max(self.cfg.min_depth);
            Some(NetDegradeAction::Shallow(to))
        } else {
            None
        }
    }

    /// Commit a depth transition at `cycle`: adopt the target, log the
    /// event, arm the dwell timer, and clear both evidence accumulators.
    pub fn transition(&mut self, cycle: u64, action: NetDegradeAction) {
        self.target_depth = action.target();
        self.last_transition = Some(cycle);
        self.ring.fill(0);
        self.head = 0;
        self.filled = 0;
        self.conceals_in_window = 0;
        self.chunk_cycles = 0;
        self.chunk_conceals = 0;
        self.events.push(NetDegradeEvent { cycle, action });
    }

    /// Record + decide + commit in one call.
    pub fn step(&mut self, cycle: u64, conceals: u32) -> Option<NetDegradeAction> {
        self.record(conceals);
        let action = self.pending(cycle)?;
        self.transition(cycle, action);
        Some(action)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DegradeConfig {
        DegradeConfig {
            window: 8,
            shed_misses: 4,
            restore_clean: 6,
            restore_tolerance: 1,
            min_dwell: 10,
        }
    }

    /// Drive the policy with a closure `cycle -> missed`.
    fn drive(
        policy: &mut DegradationPolicy,
        cycles: std::ops::Range<u64>,
        missed: impl Fn(u64) -> bool,
    ) -> Vec<DegradeEvent> {
        let before = policy.events().len();
        for c in cycles {
            policy.step(c, missed(c));
        }
        policy.events()[before..].to_vec()
    }

    #[test]
    fn clean_input_never_transitions() {
        let mut p = DegradationPolicy::new(cfg());
        let ev = drive(&mut p, 0..10_000, |_| false);
        assert!(ev.is_empty());
        assert!(!p.is_degraded());
    }

    #[test]
    fn isolated_misses_below_threshold_never_shed() {
        let mut p = DegradationPolicy::new(cfg());
        // 3 misses per 8-cycle window, threshold is 4.
        let ev = drive(&mut p, 0..10_000, |c| c % 8 < 3);
        assert!(ev.is_empty());
    }

    #[test]
    fn sustained_misses_shed_and_clean_air_restores() {
        let mut p = DegradationPolicy::new(cfg());
        let ev = drive(&mut p, 0..100, |c| c < 50);
        assert_eq!(ev.len(), 2, "one shed, one restore: {ev:?}");
        assert_eq!(ev[0].action, DegradeAction::Shed);
        assert_eq!(ev[1].action, DegradeAction::Restore);
        // Shed as soon as the evidence allows: cycle shed_misses - 1.
        assert_eq!(ev[0].cycle, 3);
        // Pressure clears at 50 mid-chunk; that chunk resets at 51 (too
        // many misses), and the first clean chunk [52, 57] restores.
        assert_eq!(ev[1].cycle, 57);
        assert!(!p.is_degraded());
    }

    #[test]
    fn restore_is_always_attempted_once_pressure_clears() {
        // Whatever miss pattern preceded it, a long-enough clean stretch
        // always restores.
        for storm_len in [10u64, 137, 1000] {
            let mut p = DegradationPolicy::new(cfg());
            drive(&mut p, 0..storm_len, |c| c % 3 != 2); // 2/3 miss rate
            assert!(p.is_degraded(), "storm_len={storm_len}");
            let ev = drive(&mut p, storm_len..storm_len + 200, |_| false);
            assert_eq!(ev.len(), 1, "storm_len={storm_len}");
            assert_eq!(ev[0].action, DegradeAction::Restore);
            assert!(!p.is_degraded());
        }
    }

    #[test]
    fn transitions_alternate_and_respect_dwell() {
        // Adversarial input engineered to oscillate as fast as possible:
        // miss whenever running at full quality, clean whenever degraded.
        let mut p = DegradationPolicy::new(cfg());
        let mut events = Vec::new();
        let mut degraded = false;
        for c in 0..100_000u64 {
            if let Some(a) = p.step(c, !degraded) {
                degraded = matches!(a, DegradeAction::Shed);
                events.push(DegradeEvent {
                    cycle: c,
                    action: a,
                });
            }
        }
        assert!(events.len() > 2, "adversary should force transitions");
        for pair in events.windows(2) {
            assert_ne!(pair[0].action, pair[1].action, "must alternate");
            assert!(
                pair[1].cycle - pair[0].cycle >= cfg().min_dwell,
                "dwell violated: {pair:?}"
            );
        }
    }

    #[test]
    fn shed_restore_shed_within_dwell_is_impossible_by_construction() {
        // Strongest oscillation bound: even if every cycle between them
        // missed, a re-shed needs (a) the dwell to expire and (b)
        // shed_misses fresh misses after the restore cleared the window.
        let c = cfg();
        let mut p = DegradationPolicy::new(c);
        drive(&mut p, 0..10, |_| true);
        assert!(p.is_degraded());
        // Clean air long enough to restore (the first chunk absorbs the
        // storm's tail and resets; the next clean chunk restores).
        let ev = drive(&mut p, 10..30, |_| false);
        assert_eq!(ev.len(), 1);
        let restore_cycle = ev[0].cycle;
        // All-miss input again: the earliest legal re-shed is bounded
        // below by BOTH restore_cycle + min_dwell and restore_cycle +
        // shed_misses (window was cleared).
        let ev = drive(&mut p, 30..200, |_| true);
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].action, DegradeAction::Shed);
        assert!(ev[0].cycle >= restore_cycle + c.min_dwell);
        assert!(ev[0].cycle as i64 - 30 >= c.shed_misses as i64 - 1);
    }

    #[test]
    fn failed_actuation_is_retried_without_state_loss() {
        // The engine path: record + pending, but skip transition (e.g. a
        // staging failure). The decision must persist to the next cycle.
        let mut p = DegradationPolicy::new(cfg());
        for _ in 0..4 {
            p.record(true);
        }
        assert_eq!(p.pending(3), Some(DegradeAction::Shed));
        // Not committed; next cycle the verdict stands.
        p.record(true);
        assert_eq!(p.pending(4), Some(DegradeAction::Shed));
        p.transition(4, DegradeAction::Shed);
        assert!(p.is_degraded());
        assert_eq!(p.events().len(), 1);
    }

    #[test]
    fn sparse_noise_misses_do_not_block_restore() {
        // The failure mode a strict clean-streak condition has on real
        // hosts: ~2 % random stall misses while degraded must not pin
        // the engine in degraded mode forever.
        let mut p = DegradationPolicy::new(DegradeConfig {
            window: 8,
            shed_misses: 4,
            restore_clean: 100,
            restore_tolerance: 3,
            min_dwell: 10,
        });
        drive(&mut p, 0..10, |_| true);
        assert!(p.is_degraded());
        let ev = drive(&mut p, 10..400, |c| c % 50 == 0);
        assert_eq!(ev.len(), 1, "sparse noise blocked the restore: {ev:?}");
        assert_eq!(ev[0].action, DegradeAction::Restore);
        assert!(!p.is_degraded());
    }

    #[test]
    fn sustained_pressure_exceeds_the_tolerance_and_blocks_restore() {
        let mut p = DegradationPolicy::new(DegradeConfig {
            window: 8,
            shed_misses: 4,
            restore_clean: 20,
            restore_tolerance: 3,
            min_dwell: 10,
        });
        // Shed, then keep missing every third cycle (a 33 % miss rate is
        // pressure, not noise): every chunk blows its tolerance.
        drive(&mut p, 0..10, |_| true);
        let ev = drive(&mut p, 10..2_000, |c| c % 3 == 0);
        assert!(ev.is_empty(), "pressure must hold the shed: {ev:?}");
        assert!(p.is_degraded());
    }

    fn net_cfg() -> NetDegradeConfig {
        NetDegradeConfig {
            window: 8,
            deepen_conceals: 2,
            restore_clean: 12,
            restore_tolerance: 0,
            min_dwell: 10,
            depth_step: 2,
            min_depth: 1,
            max_depth: 9,
        }
    }

    #[test]
    fn clean_reception_never_retunes() {
        let mut p = NetLatencyPolicy::new(net_cfg(), 1);
        for c in 0..10_000u64 {
            assert!(p.step(c, 0).is_none());
        }
        assert_eq!(p.target_depth(), 1);
    }

    #[test]
    fn dropout_bursts_climb_the_ladder_and_clean_air_descends_it() {
        let mut p = NetLatencyPolicy::new(net_cfg(), 1);
        // A dropout storm: one conceal per cycle for 40 cycles.
        for c in 0..40u64 {
            p.step(c, 1);
        }
        assert_eq!(p.target_depth(), 9, "storm should drive to max depth");
        let climbs = p.events().len();
        assert!(climbs >= 3, "ladder climbs in steps: {:?}", p.events());
        for pair in p.events().windows(2) {
            assert!(pair[1].cycle - pair[0].cycle >= net_cfg().min_dwell);
        }
        // Clean air: chunked restore walks back down one step at a time.
        for c in 40..2_000u64 {
            p.step(c, 0);
        }
        assert_eq!(p.target_depth(), 1, "clean air must recover the latency");
        let descents = &p.events()[climbs..];
        assert!(descents.len() >= 4, "one step per chunk: {descents:?}");
        for e in descents {
            assert!(matches!(e.action, NetDegradeAction::Shallow(_)));
        }
        for pair in descents.windows(2) {
            assert!(
                pair[1].cycle - pair[0].cycle >= net_cfg().restore_clean as u64,
                "chunked restore: {pair:?}"
            );
        }
    }

    #[test]
    fn sustained_dropouts_hold_the_depth() {
        let mut p = NetLatencyPolicy::new(net_cfg(), 1);
        for c in 0..100u64 {
            p.step(c, 1);
        }
        assert_eq!(p.target_depth(), 9);
        let before = p.events().len();
        // Keep concealing every 8th cycle: every restore chunk is dirty.
        for c in 100..5_000u64 {
            p.step(c, u32::from(c % 8 == 0));
        }
        assert_eq!(p.target_depth(), 9, "pressure must hold the depth");
        assert_eq!(p.events().len(), before);
    }

    #[test]
    fn net_transitions_respect_dwell_under_adversarial_input() {
        // Conceal exactly when shallow, play clean when deep — the
        // fastest oscillation an adversary can force.
        let mut p = NetLatencyPolicy::new(net_cfg(), 1);
        for c in 0..50_000u64 {
            let conceals = u32::from(p.target_depth() <= 3);
            p.step(c, conceals);
        }
        assert!(p.events().len() > 2);
        for pair in p.events().windows(2) {
            assert!(
                pair[1].cycle - pair[0].cycle >= net_cfg().min_dwell,
                "dwell violated: {pair:?}"
            );
        }
    }

    #[test]
    fn failed_net_actuation_is_retried_without_state_loss() {
        let mut p = NetLatencyPolicy::new(net_cfg(), 1);
        p.record(1);
        p.record(1);
        let a = p.pending(1).expect("two conceals reach the watermark");
        assert_eq!(a, NetDegradeAction::Deepen(3));
        // Not committed (staging failed); the verdict stands next cycle.
        p.record(0);
        assert_eq!(p.pending(2), Some(NetDegradeAction::Deepen(3)));
        p.transition(2, a);
        assert_eq!(p.target_depth(), 3);
    }

    #[test]
    fn net_degenerate_configs_are_clamped_not_fatal() {
        let p = NetLatencyPolicy::new(
            NetDegradeConfig {
                window: 0,
                deepen_conceals: 0,
                restore_clean: 0,
                restore_tolerance: 0,
                min_dwell: 0,
                depth_step: 0,
                min_depth: 0,
                max_depth: 0,
            },
            0,
        );
        let c = p.config();
        assert_eq!(c.window, 1);
        assert_eq!(c.deepen_conceals, 1);
        assert_eq!(c.restore_clean, 1);
        assert_eq!(c.depth_step, 1);
        assert_eq!(c.min_depth, 1);
        assert!(c.max_depth >= c.min_depth);
        assert_eq!(p.target_depth(), 1);
    }

    #[test]
    fn degenerate_configs_are_clamped_not_fatal() {
        let p = DegradationPolicy::new(DegradeConfig {
            window: 0,
            shed_misses: 0,
            restore_clean: 0,
            restore_tolerance: 9,
            min_dwell: 0,
        });
        let c = p.config();
        assert_eq!(c.window, 1);
        assert_eq!(c.shed_misses, 1);
        assert_eq!(c.restore_clean, 1);
        // Tolerance may never reach the chunk length, or a chunk of pure
        // misses would read as clean.
        assert_eq!(c.restore_tolerance, 0);
    }
}
