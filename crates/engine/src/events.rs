//! Event middleware: the decoupling layer between the control surface and
//! the core (Fig. 2 of the paper's architecture).
//!
//! "The User Interface layer … communicates with the Core subsystems
//! indirectly via the Event Middleware." DJ Star's GUI and USB controllers
//! emit control events; the middleware queues them and the engine drains
//! the queue once per APC, so knob turns never race the audio thread.
//! This module reproduces that layer: a timestamped control-event queue
//! with per-cycle draining and last-writer-wins coalescing per control.

use std::collections::VecDeque;

/// A control-surface event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlEvent {
    /// Crossfader moved to a position in `[0, 1]`.
    Crossfader(f32),
    /// Deck fader moved (deck index, gain).
    DeckGain(usize, f32),
    /// Deck EQ changed (deck, low/mid/high dB).
    DeckEq(usize, [f32; 3]),
    /// Deck filter knob moved (deck, position in `[-1, 1]`).
    DeckFilter(usize, f32),
    /// Effect slot toggled (deck, slot, enabled).
    FxToggle(usize, usize, bool),
    /// Master gain changed.
    MasterGain(f32),
    /// Deck transport nudge: a momentary speed offset (deck, delta).
    Nudge(usize, f32),
    /// Topology request: load (`true`) or eject (`false`) a deck. The
    /// engine turns this into a pending graph edit rather than applying it
    /// inline — topology changes are staged off the audio thread.
    DeckLoadState(usize, bool),
    /// Topology request: resize a deck's FX chain to the given slot count.
    FxChain(usize, usize),
}

/// A queued event with the cycle it was submitted in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedEvent {
    /// Engine cycle at submission time.
    pub cycle: u64,
    /// The event.
    pub event: ControlEvent,
}

/// The middleware queue. Events accumulate between APCs; the engine drains
/// once per cycle. Bounded: the oldest events are dropped beyond the
/// capacity (a stuck GUI must not grow the audio process unboundedly).
#[derive(Debug)]
pub struct EventQueue {
    queue: VecDeque<QueuedEvent>,
    capacity: usize,
    dropped: u64,
}

impl EventQueue {
    /// A queue holding at most `capacity` pending events.
    pub fn new(capacity: usize) -> Self {
        EventQueue {
            queue: VecDeque::with_capacity(capacity.min(1024)),
            capacity: capacity.max(1),
            dropped: 0,
        }
    }

    /// DJ Star's default: 256 pending events.
    pub fn standard() -> Self {
        Self::new(256)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Events dropped due to overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Submit an event from the control surface.
    pub fn push(&mut self, cycle: u64, event: ControlEvent) {
        if self.queue.len() == self.capacity {
            self.queue.pop_front();
            self.dropped += 1;
        }
        self.queue.push_back(QueuedEvent { cycle, event });
    }

    /// Drain all pending events in submission order.
    pub fn drain(&mut self) -> Vec<QueuedEvent> {
        self.queue.drain(..).collect()
    }

    /// Drain with last-writer-wins coalescing: for continuous controls
    /// (faders, knobs), only the most recent value per control survives;
    /// discrete toggles are preserved in order. This is what keeps a fast
    /// knob sweep from costing one EQ redesign per MIDI tick.
    pub fn drain_coalesced(&mut self) -> Vec<QueuedEvent> {
        let all: Vec<QueuedEvent> = self.queue.drain(..).collect();
        let mut out: Vec<QueuedEvent> = Vec::with_capacity(all.len());
        for qe in all {
            let slot = out
                .iter_mut()
                .rev()
                .find(|o| coalesces(&o.event, &qe.event));
            match slot {
                Some(o) if !matches!(qe.event, ControlEvent::FxToggle(..)) => *o = qe,
                _ => out.push(qe),
            }
        }
        out
    }
}

/// True when `b` supersedes `a` (same continuous control).
fn coalesces(a: &ControlEvent, b: &ControlEvent) -> bool {
    use ControlEvent::*;
    match (a, b) {
        (Crossfader(_), Crossfader(_)) => true,
        (MasterGain(_), MasterGain(_)) => true,
        (DeckGain(d1, _), DeckGain(d2, _)) => d1 == d2,
        (DeckEq(d1, _), DeckEq(d2, _)) => d1 == d2,
        (DeckFilter(d1, _), DeckFilter(d2, _)) => d1 == d2,
        (Nudge(d1, _), Nudge(d2, _)) => d1 == d2,
        _ => false,
    }
}

impl Default for EventQueue {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_drain_in_order() {
        let mut q = EventQueue::standard();
        q.push(1, ControlEvent::Crossfader(0.1));
        q.push(1, ControlEvent::DeckGain(0, 0.5));
        q.push(2, ControlEvent::MasterGain(0.9));
        let drained = q.drain();
        assert_eq!(drained.len(), 3);
        assert_eq!(drained[0].event, ControlEvent::Crossfader(0.1));
        assert_eq!(drained[2].cycle, 2);
        assert!(q.is_empty());
    }

    #[test]
    fn coalescing_keeps_last_value_per_control() {
        let mut q = EventQueue::standard();
        for i in 0..10 {
            q.push(1, ControlEvent::Crossfader(i as f32 / 10.0));
        }
        q.push(1, ControlEvent::DeckGain(0, 0.3));
        q.push(1, ControlEvent::DeckGain(1, 0.4));
        q.push(1, ControlEvent::DeckGain(0, 0.7));
        let drained = q.drain_coalesced();
        assert_eq!(drained.len(), 3, "{drained:?}");
        assert_eq!(drained[0].event, ControlEvent::Crossfader(0.9));
        // Deck 0's later value won; deck 1 untouched.
        assert!(drained.contains(&QueuedEvent {
            cycle: 1,
            event: ControlEvent::DeckGain(0, 0.7)
        }));
        assert!(drained.contains(&QueuedEvent {
            cycle: 1,
            event: ControlEvent::DeckGain(1, 0.4)
        }));
    }

    #[test]
    fn toggles_are_never_coalesced() {
        let mut q = EventQueue::standard();
        q.push(1, ControlEvent::FxToggle(0, 1, true));
        q.push(1, ControlEvent::FxToggle(0, 1, false));
        q.push(1, ControlEvent::FxToggle(0, 1, true));
        assert_eq!(q.drain_coalesced().len(), 3);
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut q = EventQueue::new(3);
        for i in 0..5 {
            q.push(i, ControlEvent::MasterGain(i as f32));
        }
        assert_eq!(q.len(), 3);
        assert_eq!(q.dropped(), 2);
        let drained = q.drain();
        assert_eq!(drained[0].cycle, 2, "oldest surviving event");
    }

    #[test]
    fn different_decks_do_not_coalesce() {
        let mut q = EventQueue::standard();
        q.push(1, ControlEvent::DeckFilter(0, -0.5));
        q.push(1, ControlEvent::DeckFilter(1, 0.5));
        assert_eq!(q.drain_coalesced().len(), 2);
    }

    #[test]
    fn toggles_keep_relative_order_through_continuous_sweeps() {
        // A filter sweep arrives interleaved with FX toggles on two decks.
        // Coalescing must (a) keep every toggle, in submission order, and
        // (b) leave each surviving continuous event at its *first*
        // position with its *last* value — so a sweep that started before
        // a toggle still applies before it.
        let mut q = EventQueue::standard();
        q.push(1, ControlEvent::DeckFilter(0, 0.1));
        q.push(1, ControlEvent::FxToggle(0, 0, false));
        q.push(2, ControlEvent::DeckFilter(0, 0.2));
        q.push(2, ControlEvent::FxToggle(1, 2, true));
        q.push(3, ControlEvent::DeckFilter(1, 0.5));
        q.push(3, ControlEvent::FxToggle(0, 0, true));
        q.push(4, ControlEvent::DeckFilter(0, 0.3));
        let drained: Vec<ControlEvent> = q.drain_coalesced().iter().map(|e| e.event).collect();
        assert_eq!(
            drained,
            vec![
                ControlEvent::DeckFilter(0, 0.3),
                ControlEvent::FxToggle(0, 0, false),
                ControlEvent::FxToggle(1, 2, true),
                ControlEvent::DeckFilter(1, 0.5),
                ControlEvent::FxToggle(0, 0, true),
            ]
        );
    }

    #[test]
    fn continuous_events_coalesce_per_deck_across_interleaving() {
        // Two decks swept simultaneously (the classic two-hand move):
        // each deck's controls coalesce independently, none cross decks.
        let mut q = EventQueue::standard();
        for i in 0..6 {
            q.push(1, ControlEvent::DeckGain(0, i as f32 * 0.1));
            q.push(1, ControlEvent::DeckGain(1, 1.0 - i as f32 * 0.1));
            q.push(1, ControlEvent::DeckEq(i % 2, [i as f32, 0.0, 0.0]));
        }
        let drained = q.drain_coalesced();
        assert_eq!(drained.len(), 4, "{drained:?}");
        assert!(drained.contains(&QueuedEvent {
            cycle: 1,
            event: ControlEvent::DeckGain(0, 0.5)
        }));
        assert!(drained.contains(&QueuedEvent {
            cycle: 1,
            event: ControlEvent::DeckGain(1, 0.5)
        }));
        assert!(drained.contains(&QueuedEvent {
            cycle: 1,
            event: ControlEvent::DeckEq(0, [4.0, 0.0, 0.0])
        }));
        assert!(drained.contains(&QueuedEvent {
            cycle: 1,
            event: ControlEvent::DeckEq(1, [5.0, 0.0, 0.0])
        }));
    }

    #[test]
    fn topology_requests_are_never_coalesced() {
        // Load/eject and chain-resize requests are discrete state machines
        // like FxToggle: a load-eject-load sequence must reach the engine
        // as three events, not collapse to one.
        let mut q = EventQueue::standard();
        q.push(1, ControlEvent::DeckLoadState(2, false));
        q.push(2, ControlEvent::DeckLoadState(2, true));
        q.push(3, ControlEvent::DeckLoadState(2, false));
        q.push(3, ControlEvent::FxChain(0, 6));
        q.push(4, ControlEvent::FxChain(0, 4));
        let drained: Vec<ControlEvent> = q.drain_coalesced().iter().map(|e| e.event).collect();
        assert_eq!(
            drained,
            vec![
                ControlEvent::DeckLoadState(2, false),
                ControlEvent::DeckLoadState(2, true),
                ControlEvent::DeckLoadState(2, false),
                ControlEvent::FxChain(0, 6),
                ControlEvent::FxChain(0, 4),
            ]
        );
    }
}
