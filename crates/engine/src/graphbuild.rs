//! Assembly of the 67-node DJ Star task graph (Fig. 3).
//!
//! Structure per deck `d` (4 decks):
//!
//! ```text
//! SPd1..SPd4  ─┬─► FXd1 ─► FXd2 ─► FXd3 ─► FXd4 ─► Channel_d ─► (Mixer, CueBuffer)
//! LevelMeter_d │   (the effect chain sums the four preprocess bands)
//! WaveformTap_d│  independent bookkeeping sources
//! BeatPhase_d  │
//! KeyDetect_d ─┘
//! ```
//!
//! Master section: `ClockTick → AudioSampler → Mixer → MasterBuffer →
//! {AudioOut1 → LatencyMon, RecordBuffer, MasterMeter, SpectrumTap}`,
//! `Channels → CueBuffer → MonitorBuffer`, `Mixer → {HeadroomCalc,
//! AutoGain}`, `ClockTick → TempoMaster`, and `{AudioOut1, RecordBuffer,
//! MonitorBuffer} → StatsCollector`.
//!
//! Node count: 4 decks × (4 SP + 4 FX + 1 Channel + 4 bookkeeping) = 52,
//! plus 15 master-section nodes = **67** (the paper's count, §IV). Source
//! nodes: 16 SP + 16 deck bookkeeping + ClockTick = **33**, matching the
//! paper's measured initial concurrency of 33.

use crate::nodes::*;
use djstar_core::graph::{NodeId, Section, TaskGraph, TaskGraphBuilder};
use djstar_dsp::effects::EffectKind;
use djstar_workload::scenario::Scenario;

/// Ids of the landmark nodes of the built graph.
#[derive(Debug, Clone)]
pub struct NodeMap {
    /// SP filters, `[deck][band]`.
    pub sp: [[NodeId; 4]; 4],
    /// Effect chain, `[deck][slot]`.
    pub fx: [[NodeId; 4]; 4],
    /// Channel strips per deck.
    pub channel: [NodeId; 4],
    /// The mixer.
    pub mixer: NodeId,
    /// Master buffer (post-mixer bus).
    pub master_buffer: NodeId,
    /// Final audio output (what the sound card consumes).
    pub audio_out: NodeId,
    /// Record path.
    pub record: NodeId,
    /// Cue mix.
    pub cue: NodeId,
    /// Headphone monitor.
    pub monitor: NodeId,
    /// Clock tick source.
    pub clock: NodeId,
    /// The sampler.
    pub sampler: NodeId,
    /// The stats sink (last node of the queue).
    pub stats: NodeId,
}

/// The effect kinds loaded into the four FX slots of every deck.
pub const DECK_FX: [EffectKind; 4] = [
    EffectKind::EchoDelay,
    EffectKind::Flanger,
    EffectKind::Phaser,
    EffectKind::Overdrive,
];

/// Build the DJ Star graph for `scenario`.
///
/// Inactive decks still contribute their nodes (the paper's graph always
/// has 67 nodes; unused decks process silence), but their effects are
/// disabled.
pub fn build_djstar_graph(scenario: &Scenario) -> (TaskGraph, NodeMap) {
    let mut b = TaskGraphBuilder::new();
    let profile = scenario.work;
    let sr = djstar_dsp::SAMPLE_RATE;
    let mut seed = 0u32;
    let mut next_seed = || {
        seed += 1;
        seed
    };
    let deck_letter = |d: usize| ["A", "B", "C", "D"][d];

    let mut sp = [[NodeId(0); 4]; 4];
    let mut fx = [[NodeId(0); 4]; 4];
    let mut channel = [NodeId(0); 4];

    for d in 0..4 {
        let section = Section::deck(d);
        let cfg = &scenario.decks[d];
        // Sample-preprocess filterbank (sources).
        #[allow(clippy::needless_range_loop)] // `band` names the SP slot
        for band in 0..4 {
            sp[d][band] = b.add(
                format!("SP{}{}", deck_letter(d), band + 1),
                section,
                Box::new(SpFilterNode::new(d, band, profile, next_seed())),
                &[],
            );
        }
        // Effect chain: FX1 sums the four bands, then FX2..FX4 in series.
        // The deck's fx_weight scales the chain's compute (the paper's
        // chains are visibly imbalanced, Fig. 11).
        let mut deck_profile = profile;
        deck_profile.fx_iters = ((profile.fx_iters as f32 * cfg.fx_weight).round() as u32).max(1);
        for slot in 0..4 {
            let preds: Vec<NodeId> = if slot == 0 {
                sp[d].to_vec()
            } else {
                vec![fx[d][slot - 1]]
            };
            let effect = DECK_FX[slot].build(sr);
            let enabled = cfg.active && cfg.fx_enabled[slot];
            fx[d][slot] = b.add(
                format!("FX{}{}", deck_letter(d), slot + 1),
                section,
                Box::new(EffectNode::new(effect, enabled, deck_profile, next_seed())),
                &preds,
            );
        }
        // Channel strip.
        channel[d] = b.add(
            format!("Channel{}", deck_letter(d)),
            section,
            Box::new(ChannelNode::new(
                d,
                cfg.filter_pos,
                cfg.eq_db,
                profile,
                next_seed(),
            )),
            &[fx[d][3]],
        );
        // Independent bookkeeping sources.
        b.add(
            format!("LevelMeter{}", deck_letter(d)),
            section,
            Box::new(LevelMeterNode::for_deck(d, profile, next_seed())),
            &[],
        );
        b.add(
            format!("WaveformTap{}", deck_letter(d)),
            section,
            Box::new(WaveformTapNode::new(d, profile, next_seed())),
            &[],
        );
        b.add(
            format!("BeatPhase{}", deck_letter(d)),
            section,
            Box::new(BeatPhaseNode::new(d, profile, next_seed())),
            &[],
        );
        b.add(
            format!("KeyDetect{}", deck_letter(d)),
            section,
            Box::new(KeyDetectNode::new(d, profile, next_seed())),
            &[],
        );
    }

    // Master section.
    let clock = b.add(
        "ClockTick",
        Section::Master,
        Box::new(ClockTickNode::new(profile, next_seed())),
        &[],
    );
    let sampler = b.add(
        "AudioSampler",
        Section::Master,
        Box::new(SamplerNode::new(profile, next_seed())),
        &[clock],
    );
    let mixer = b.add(
        "Mixer",
        Section::Master,
        Box::new(MixerNode::new(profile, next_seed())),
        &[channel[0], channel[1], channel[2], channel[3], sampler],
    );
    let master_buffer = b.add(
        "MasterBuffer",
        Section::Master,
        Box::new(MasterBufferNode::new(profile, next_seed())),
        &[mixer],
    );
    let audio_out = b.add(
        "AudioOut1",
        Section::Master,
        Box::new(AudioOutNode::new(profile, next_seed())),
        &[master_buffer],
    );
    let record = b.add(
        "RecordBuffer",
        Section::Master,
        Box::new(RecordBufferNode::new(profile, next_seed())),
        &[master_buffer],
    );
    let cue = b.add(
        "CueBuffer",
        Section::Master,
        Box::new(CueBufferNode::new(
            [false, true, false, false],
            profile,
            next_seed(),
        )),
        &[channel[0], channel[1], channel[2], channel[3]],
    );
    let monitor = b.add(
        "MonitorBuffer",
        Section::Master,
        Box::new(MonitorBufferNode::new(profile, next_seed())),
        &[cue],
    );
    b.add(
        "MasterMeter",
        Section::Master,
        Box::new(LevelMeterNode::for_input(profile, next_seed())),
        &[master_buffer],
    );
    b.add(
        "SpectrumTap",
        Section::Master,
        Box::new(SpectrumTapNode::new(profile, next_seed())),
        &[master_buffer],
    );
    b.add(
        "HeadroomCalc",
        Section::Master,
        Box::new(HeadroomCalcNode::new(profile, next_seed())),
        &[mixer],
    );
    b.add(
        "AutoGain",
        Section::Master,
        Box::new(AutoGainNode::new(profile, next_seed())),
        &[mixer],
    );
    b.add(
        "TempoMaster",
        Section::Master,
        Box::new(TempoMasterNode::new(profile, next_seed())),
        &[clock],
    );
    b.add(
        "LatencyMon",
        Section::Master,
        Box::new(LatencyMonNode::new(profile, next_seed())),
        &[audio_out],
    );
    let stats = b.add(
        "StatsCollector",
        Section::Master,
        Box::new(StatsCollectorNode::new(profile, next_seed())),
        &[audio_out, record, monitor],
    );

    let graph = b.build().expect("the DJ Star graph is a valid DAG");
    (
        graph,
        NodeMap {
            sp,
            fx,
            channel,
            mixer,
            master_buffer,
            audio_out,
            record,
            cue,
            monitor,
            clock,
            sampler,
            stats,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use djstar_workload::scenario::Scenario;

    #[test]
    fn graph_has_exactly_67_nodes() {
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        assert_eq!(g.len(), 67, "the paper's graph has 67 nodes");
    }

    #[test]
    fn graph_has_exactly_33_sources() {
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        assert_eq!(
            g.topology().sources().len(),
            33,
            "the paper measures 33 initially concurrent nodes"
        );
    }

    #[test]
    fn queue_is_valid_and_covers_all_nodes() {
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        assert!(t.is_valid_execution_order(t.queue()));
    }

    #[test]
    fn critical_path_matches_structure() {
        // SP → FX1 → FX2 → FX3 → FX4 → Channel → Mixer → MasterBuffer →
        // AudioOut → StatsCollector = 10 nodes.
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        assert_eq!(g.topology().critical_path_len(), 10);
    }

    #[test]
    fn node_map_names_line_up() {
        let (g, map) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        assert_eq!(t.name(map.mixer), "Mixer");
        assert_eq!(t.name(map.audio_out), "AudioOut1");
        assert_eq!(t.name(map.sp[2][0]), "SPC1");
        assert_eq!(t.name(map.fx[1][3]), "FXB4");
        assert_eq!(t.name(map.channel[3]), "ChannelD");
        assert_eq!(t.name(map.stats), "StatsCollector");
    }

    #[test]
    fn stats_collector_is_the_unique_sink() {
        let (g, map) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        // Sinks = nodes with no successors that are not bookkeeping outputs.
        let audio_sinks: Vec<u32> = (0..t.len() as u32)
            .filter(|&n| t.succs(NodeId(n)).is_empty())
            .collect();
        assert!(audio_sinks.contains(&map.stats.0));
        // The stats node has the maximum depth in the graph.
        let max_depth = (0..t.len() as u32)
            .map(|n| t.depth(NodeId(n)))
            .max()
            .unwrap();
        assert_eq!(t.depth(map.stats), max_depth);
    }

    #[test]
    fn sections_partition_the_graph() {
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        let mut per_section = std::collections::HashMap::new();
        for n in 0..t.len() as u32 {
            *per_section.entry(t.section(NodeId(n))).or_insert(0usize) += 1;
        }
        assert_eq!(per_section[&Section::DeckA], 13);
        assert_eq!(per_section[&Section::DeckB], 13);
        assert_eq!(per_section[&Section::DeckC], 13);
        assert_eq!(per_section[&Section::DeckD], 13);
        assert_eq!(per_section[&Section::Master], 15);
    }

    #[test]
    fn initial_concurrency_drops_to_about_four_chains() {
        // After the sources, the structural parallelism is the 4 FX chains:
        // depth 1 holds the four FX1 nodes plus the two clock followers.
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        let depth1: Vec<&str> = (0..t.len() as u32)
            .filter(|&n| t.depth(NodeId(n)) == 1)
            .map(|n| t.name(NodeId(n)))
            .collect();
        assert_eq!(depth1.len(), 6, "{depth1:?}");
        assert!(depth1.iter().filter(|n| n.starts_with("FX")).count() == 4);
    }
}
