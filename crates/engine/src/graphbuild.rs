//! Assembly of the 67-node DJ Star task graph (Fig. 3).
//!
//! Structure per deck `d` (4 decks):
//!
//! ```text
//! SPd1..SPd4  ─┬─► FXd1 ─► FXd2 ─► FXd3 ─► FXd4 ─► Channel_d ─► (Mixer, CueBuffer)
//! LevelMeter_d │   (the effect chain sums the four preprocess bands)
//! WaveformTap_d│  independent bookkeeping sources
//! BeatPhase_d  │
//! KeyDetect_d ─┘
//! ```
//!
//! Master section: `ClockTick → AudioSampler → Mixer → MasterBuffer →
//! {AudioOut1 → LatencyMon, RecordBuffer, MasterMeter, SpectrumTap}`,
//! `Channels → CueBuffer → MonitorBuffer`, `Mixer → {HeadroomCalc,
//! AutoGain}`, `ClockTick → TempoMaster`, and `{AudioOut1, RecordBuffer,
//! MonitorBuffer} → StatsCollector`.
//!
//! Node count: 4 decks × (4 SP + 4 FX + 1 Channel + 4 bookkeeping) = 52,
//! plus 15 master-section nodes = **67** (the paper's count, §IV). Source
//! nodes: 16 SP + 16 deck bookkeeping + ClockTick = **33**, matching the
//! paper's measured initial concurrency of 33.

use crate::netnodes::{jitter_config_from_spec, net_plan_from_spec, BroadcastSink, NetDeckSource};
use crate::nodes::*;
use djstar_core::graph::{NodeId, Section, TaskGraph, TaskGraphBuilder};
use djstar_dsp::effects::EffectKind;
use djstar_workload::scenario::Scenario;

/// Build-time shape of the DJ Star graph: which decks are loaded and how
/// many FX slots each loaded deck's chain holds.
///
/// The paper's fixed 67-node graph is [`paper_default`](Self::paper_default)
/// (4 loaded decks x 4 FX slots). Live reconfiguration (see
/// `crate::reconfig`) edits a shape, rebuilds the graph off the audio
/// thread, and swaps it into the running executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphShape {
    /// Whether deck `d` contributes its 13-node section to the graph.
    pub deck_loaded: [bool; 4],
    /// FX chain length per deck (`1..=MAX_FX_SLOTS`); ignored for
    /// unloaded decks.
    pub fx_slots: [usize; 4],
    /// Whether a loaded deck streams over the network: a `NetSrc` receiver
    /// node feeds its SP filterbank instead of the local audio slot.
    pub remote_decks: [bool; 4],
    /// Jitter-buffer playout depth override per remote deck (`0` = use the
    /// scenario's start depth). The degradation governor's latency axis:
    /// rebuilding with a larger depth trades latency for fewer dropouts.
    pub net_depth: [u32; 4],
    /// Broadcast listeners fed from the master bus (`0` = no sink node).
    pub listeners: u32,
}

impl GraphShape {
    /// Upper bound on a deck's FX chain length.
    pub const MAX_FX_SLOTS: usize = 8;

    /// The paper's shape: all four decks loaded, four FX slots each, no
    /// networking.
    pub fn paper_default() -> Self {
        GraphShape {
            deck_loaded: [true; 4],
            fx_slots: [4; 4],
            remote_decks: [false; 4],
            net_depth: [0; 4],
            listeners: 0,
        }
    }

    /// The paper shape with the network machinery a [`NetSpec`] asks for.
    pub fn for_net(net: &djstar_workload::NetSpec) -> Self {
        let mut net_depth = [0u32; 4];
        for (d, slot) in net_depth.iter_mut().enumerate() {
            if net.remote_decks[d] {
                *slot = net.start_depth;
            }
        }
        GraphShape {
            remote_decks: net.remote_decks,
            net_depth,
            listeners: net.listeners,
            ..Self::paper_default()
        }
    }

    /// Node count of the graph this shape builds: 15 master nodes, plus
    /// `4 SP + fx_slots + 1 channel + 4 bookkeeping` per loaded deck, one
    /// `NetSrc` per loaded remote deck, and the broadcast sink.
    pub fn node_count(&self) -> usize {
        15 + usize::from(self.listeners > 0)
            + (0..4)
                .filter(|&d| self.deck_loaded[d])
                .map(|d| 9 + self.fx_slots[d] + usize::from(self.remote_decks[d]))
                .sum::<usize>()
    }

    /// Indices of the loaded decks, in order.
    pub fn loaded_decks(&self) -> Vec<usize> {
        (0..4).filter(|&d| self.deck_loaded[d]).collect()
    }
}

impl Default for GraphShape {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Landmark node ids of one loaded deck.
#[derive(Debug, Clone)]
pub struct DeckNodes {
    /// SP filterbank, `[band]`.
    pub sp: [NodeId; 4],
    /// Effect chain, one id per slot (variable length under reshaping).
    pub fx: Vec<NodeId>,
    /// Channel strip.
    pub channel: NodeId,
}

/// Ids of the landmark nodes of the built graph. Unloaded decks have no
/// nodes, so the per-deck landmarks are optional.
#[derive(Debug, Clone)]
pub struct NodeMap {
    /// Per-deck landmarks; `None` when the deck is not in the graph.
    pub decks: [Option<DeckNodes>; 4],
    /// The mixer.
    pub mixer: NodeId,
    /// Master buffer (post-mixer bus).
    pub master_buffer: NodeId,
    /// Final audio output (what the sound card consumes).
    pub audio_out: NodeId,
    /// Record path.
    pub record: NodeId,
    /// Cue mix.
    pub cue: NodeId,
    /// Headphone monitor.
    pub monitor: NodeId,
    /// Clock tick source.
    pub clock: NodeId,
    /// The sampler.
    pub sampler: NodeId,
    /// The stats sink (last node of the queue).
    pub stats: NodeId,
    /// Per-deck network receiver; `None` when the deck plays locally.
    pub net_src: [Option<NodeId>; 4],
    /// The broadcast sink, when the shape has listeners.
    pub broadcast: Option<NodeId>,
}

impl NodeMap {
    /// Landmarks of deck `d`, when loaded.
    pub fn deck(&self, d: usize) -> Option<&DeckNodes> {
        self.decks.get(d).and_then(|o| o.as_ref())
    }

    /// Channel strip of deck `d`, when loaded.
    pub fn channel(&self, d: usize) -> Option<NodeId> {
        self.deck(d).map(|k| k.channel)
    }

    /// FX slot `slot` of deck `d`, when present.
    pub fn fx(&self, d: usize, slot: usize) -> Option<NodeId> {
        self.deck(d).and_then(|k| k.fx.get(slot).copied())
    }

    /// SP band filter `band` of deck `d`, when loaded.
    pub fn sp(&self, d: usize, band: usize) -> Option<NodeId> {
        self.deck(d).and_then(|k| k.sp.get(band).copied())
    }
}

/// The effect kinds loaded into the four FX slots of every deck.
pub const DECK_FX: [EffectKind; 4] = [
    EffectKind::EchoDelay,
    EffectKind::Flanger,
    EffectKind::Phaser,
    EffectKind::Overdrive,
];

/// Build the paper's fixed-shape DJ Star graph for `scenario`.
///
/// Inactive decks still contribute their nodes (the paper's graph always
/// has 67 nodes; unused decks process silence), but their effects are
/// disabled. Equivalent to [`build_shaped_graph`] with
/// [`GraphShape::paper_default`].
pub fn build_djstar_graph(scenario: &Scenario) -> (TaskGraph, NodeMap) {
    build_shaped_graph(scenario, &GraphShape::paper_default())
}

/// Build the DJ Star graph for `scenario` with an explicit `shape`:
/// unloaded decks contribute no nodes at all, and each loaded deck's FX
/// chain holds `shape.fx_slots[d]` slots (slot `s` loads
/// `DECK_FX[s % 4]`, enabled per the scenario's `fx_enabled[s % 4]`).
///
/// Node names are stable across shapes — `SPA1`, `FXB5`, `ChannelC`, … —
/// which is what lets the executors' generation swap carry processor
/// state over by name when the shape changes.
pub fn build_shaped_graph(scenario: &Scenario, shape: &GraphShape) -> (TaskGraph, NodeMap) {
    let mut b = TaskGraphBuilder::new();
    let profile = scenario.work;
    let sr = djstar_dsp::SAMPLE_RATE;
    let mut seed = 0u32;
    let mut next_seed = || {
        seed += 1;
        seed
    };
    let deck_letter = |d: usize| ["A", "B", "C", "D"][d];
    let net_plan = net_plan_from_spec(&scenario.net);

    let mut decks: [Option<DeckNodes>; 4] = [None, None, None, None];
    let mut net_src: [Option<NodeId>; 4] = [None; 4];

    #[allow(clippy::needless_range_loop)] // `d` indexes shape, scenario and decks alike
    for d in 0..4 {
        if !shape.deck_loaded[d] {
            continue;
        }
        let slots = shape.fx_slots[d].clamp(1, GraphShape::MAX_FX_SLOTS);
        let section = Section::deck(d);
        let cfg = &scenario.decks[d];
        // Remote deck: a network receiver feeds the SP filterbank. The
        // name carries no depth — the generation swap's name-keyed carry
        // preserves the jitter buffer's state across reshapes, and the
        // engine retunes the carried buffer's target depth post-commit.
        if shape.remote_decks[d] {
            let depth = (shape.net_depth[d] > 0).then_some(shape.net_depth[d]);
            let jcfg = jitter_config_from_spec(&scenario.net, depth);
            net_src[d] = Some(b.add(
                format!("NetSrc{}", deck_letter(d)),
                section,
                Box::new(NetDeckSource::new(d, net_plan, jcfg, profile, next_seed())),
                &[],
            ));
        }
        let sp_preds: Vec<NodeId> = net_src[d].into_iter().collect();
        // Sample-preprocess filterbank (sources for local decks).
        let mut sp = [NodeId(0); 4];
        #[allow(clippy::needless_range_loop)] // `band` names the SP slot
        for band in 0..4 {
            sp[band] = b.add(
                format!("SP{}{}", deck_letter(d), band + 1),
                section,
                Box::new(SpFilterNode::new(d, band, profile, next_seed())),
                &sp_preds,
            );
        }
        // Effect chain: the first slot sums the four bands, the rest run
        // in series. The deck's fx_weight scales the chain's compute (the
        // paper's chains are visibly imbalanced, Fig. 11).
        let mut deck_profile = profile;
        deck_profile.fx_iters = ((profile.fx_iters as f32 * cfg.fx_weight).round() as u32).max(1);
        let mut fx: Vec<NodeId> = Vec::with_capacity(slots);
        for slot in 0..slots {
            let preds: Vec<NodeId> = if slot == 0 {
                sp.to_vec()
            } else {
                vec![fx[slot - 1]]
            };
            let effect = DECK_FX[slot % 4].build(sr);
            let enabled = cfg.active && cfg.fx_enabled[slot % 4];
            fx.push(b.add(
                format!("FX{}{}", deck_letter(d), slot + 1),
                section,
                Box::new(EffectNode::new(effect, enabled, deck_profile, next_seed())),
                &preds,
            ));
        }
        // Channel strip.
        let channel = b.add(
            format!("Channel{}", deck_letter(d)),
            section,
            Box::new(ChannelNode::new(
                d,
                cfg.filter_pos,
                cfg.eq_db,
                profile,
                next_seed(),
            )),
            &[*fx.last().expect("at least one FX slot")],
        );
        // Independent bookkeeping sources.
        b.add(
            format!("LevelMeter{}", deck_letter(d)),
            section,
            Box::new(LevelMeterNode::for_deck(d, profile, next_seed())),
            &[],
        );
        b.add(
            format!("WaveformTap{}", deck_letter(d)),
            section,
            Box::new(WaveformTapNode::new(d, profile, next_seed())),
            &[],
        );
        b.add(
            format!("BeatPhase{}", deck_letter(d)),
            section,
            Box::new(BeatPhaseNode::new(d, profile, next_seed())),
            &[],
        );
        b.add(
            format!("KeyDetect{}", deck_letter(d)),
            section,
            Box::new(KeyDetectNode::new(d, profile, next_seed())),
            &[],
        );
        decks[d] = Some(DeckNodes { sp, fx, channel });
    }

    // Channel inputs the master section consumes, in deck order. The
    // crossfader side of each comes with it so the mixer's layout tracks
    // the shape.
    const DECK_SIDES: [f32; 4] = [-1.0, 1.0, 0.0, 0.0];
    let wired: Vec<(usize, NodeId)> = decks
        .iter()
        .enumerate()
        .filter_map(|(d, k)| k.as_ref().map(|k| (d, k.channel)))
        .collect();
    let mixer_sides: Vec<f32> = wired.iter().map(|&(d, _)| DECK_SIDES[d]).collect();
    // Cue defaults to deck B, matching the paper-shape mask.
    let cue_mask: Vec<bool> = wired.iter().map(|&(d, _)| d == 1).collect();
    let channel_ids: Vec<NodeId> = wired.iter().map(|&(_, id)| id).collect();
    // The mixer and cue bus are wired per shape (one input slot per loaded
    // deck), so their names carry the wiring: the generation swap's
    // name-keyed carry-over then never drags a stale input layout into a
    // reshaped graph — a changed wiring gets a fresh (stateless) node.
    let wiring: String = wired.iter().map(|&(d, _)| deck_letter(d)).collect();

    // Master section.
    let clock = b.add(
        "ClockTick",
        Section::Master,
        Box::new(ClockTickNode::new(profile, next_seed())),
        &[],
    );
    let sampler = b.add(
        "AudioSampler",
        Section::Master,
        Box::new(SamplerNode::new(profile, next_seed())),
        &[clock],
    );
    let mixer_preds: Vec<NodeId> = channel_ids.iter().copied().chain([sampler]).collect();
    let mixer = b.add(
        format!("Mixer[{wiring}]"),
        Section::Master,
        Box::new(MixerNode::with_sides(mixer_sides, profile, next_seed())),
        &mixer_preds,
    );
    let master_buffer = b.add(
        "MasterBuffer",
        Section::Master,
        Box::new(MasterBufferNode::new(profile, next_seed())),
        &[mixer],
    );
    let audio_out = b.add(
        "AudioOut1",
        Section::Master,
        Box::new(AudioOutNode::new(profile, next_seed())),
        &[master_buffer],
    );
    let record = b.add(
        "RecordBuffer",
        Section::Master,
        Box::new(RecordBufferNode::new(profile, next_seed())),
        &[master_buffer],
    );
    let cue = b.add(
        format!("CueBuffer[{wiring}]"),
        Section::Master,
        Box::new(CueBufferNode::new(cue_mask, profile, next_seed())),
        &channel_ids,
    );
    let monitor = b.add(
        "MonitorBuffer",
        Section::Master,
        Box::new(MonitorBufferNode::new(profile, next_seed())),
        &[cue],
    );
    b.add(
        "MasterMeter",
        Section::Master,
        Box::new(LevelMeterNode::for_input(profile, next_seed())),
        &[master_buffer],
    );
    b.add(
        "SpectrumTap",
        Section::Master,
        Box::new(SpectrumTapNode::new(profile, next_seed())),
        &[master_buffer],
    );
    b.add(
        "HeadroomCalc",
        Section::Master,
        Box::new(HeadroomCalcNode::new(profile, next_seed())),
        &[mixer],
    );
    b.add(
        "AutoGain",
        Section::Master,
        Box::new(AutoGainNode::new(profile, next_seed())),
        &[mixer],
    );
    b.add(
        "TempoMaster",
        Section::Master,
        Box::new(TempoMasterNode::new(profile, next_seed())),
        &[clock],
    );
    b.add(
        "LatencyMon",
        Section::Master,
        Box::new(LatencyMonNode::new(profile, next_seed())),
        &[audio_out],
    );
    let stats = b.add(
        "StatsCollector",
        Section::Master,
        Box::new(StatsCollectorNode::new(profile, next_seed())),
        &[audio_out, record, monitor],
    );
    // Broadcast sink: encodes the master bus for N listeners. The name
    // carries the listener count, so a changed audience gets a fresh node
    // (its queues are sized at construction).
    let broadcast = (shape.listeners > 0).then(|| {
        b.add(
            format!("BroadcastSink[n{}]", shape.listeners),
            Section::Master,
            Box::new(BroadcastSink::new(
                shape.listeners,
                net_plan,
                profile,
                next_seed(),
            )),
            &[master_buffer],
        )
    });

    let graph = b.build().expect("the DJ Star graph is a valid DAG");
    (
        graph,
        NodeMap {
            decks,
            mixer,
            master_buffer,
            audio_out,
            record,
            cue,
            monitor,
            clock,
            sampler,
            stats,
            net_src,
            broadcast,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use djstar_workload::scenario::Scenario;

    #[test]
    fn graph_has_exactly_67_nodes() {
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        assert_eq!(g.len(), 67, "the paper's graph has 67 nodes");
    }

    #[test]
    fn graph_has_exactly_33_sources() {
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        assert_eq!(
            g.topology().sources().len(),
            33,
            "the paper measures 33 initially concurrent nodes"
        );
    }

    #[test]
    fn queue_is_valid_and_covers_all_nodes() {
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        assert!(t.is_valid_execution_order(t.queue()));
    }

    #[test]
    fn critical_path_matches_structure() {
        // SP → FX1 → FX2 → FX3 → FX4 → Channel → Mixer → MasterBuffer →
        // AudioOut → StatsCollector = 10 nodes.
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        assert_eq!(g.topology().critical_path_len(), 10);
    }

    #[test]
    fn node_map_names_line_up() {
        let (g, map) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        assert_eq!(t.name(map.mixer), "Mixer[ABCD]");
        assert_eq!(t.name(map.audio_out), "AudioOut1");
        assert_eq!(t.name(map.sp(2, 0).unwrap()), "SPC1");
        assert_eq!(t.name(map.fx(1, 3).unwrap()), "FXB4");
        assert_eq!(t.name(map.channel(3).unwrap()), "ChannelD");
        assert_eq!(t.name(map.stats), "StatsCollector");
    }

    #[test]
    fn shaped_graph_drops_unloaded_decks() {
        let mut shape = GraphShape::paper_default();
        shape.deck_loaded[2] = false;
        shape.deck_loaded[3] = false;
        let (g, map) = build_shaped_graph(&Scenario::light_test(), &shape);
        assert_eq!(g.len(), shape.node_count());
        assert_eq!(g.len(), 67 - 2 * 13);
        assert!(map.deck(0).is_some() && map.deck(1).is_some());
        assert!(map.deck(2).is_none() && map.deck(3).is_none());
        let t = g.topology();
        // The mixer consumes the two wired channels plus the sampler.
        assert_eq!(t.preds(map.mixer).len(), 3);
        assert_eq!(t.preds(map.cue).len(), 2);
        assert!(t.is_valid_execution_order(t.queue()));
    }

    #[test]
    fn shaped_graph_extends_fx_chains() {
        let mut shape = GraphShape::paper_default();
        shape.fx_slots[0] = 7;
        shape.fx_slots[1] = 1;
        let (g, map) = build_shaped_graph(&Scenario::light_test(), &shape);
        assert_eq!(g.len(), shape.node_count());
        assert_eq!(g.len(), 67 + 3 - 3);
        let t = g.topology();
        assert_eq!(t.name(map.fx(0, 6).unwrap()), "FXA7");
        assert_eq!(map.deck(1).unwrap().fx.len(), 1);
        // The longer chain stretches the critical path: SP + 7 FX +
        // Channel + Mixer + MasterBuffer + AudioOut + Stats = 13.
        assert_eq!(t.critical_path_len(), 13);
        // Channel hangs off the last slot of the chain.
        assert_eq!(
            t.preds(map.channel(0).unwrap()),
            &[map.fx(0, 6).unwrap().0][..]
        );
        assert_eq!(
            t.preds(map.channel(1).unwrap()),
            &[map.fx(1, 0).unwrap().0][..]
        );
    }

    #[test]
    fn shaped_graph_with_no_decks_still_has_a_master_section() {
        let shape = GraphShape {
            deck_loaded: [false; 4],
            ..GraphShape::paper_default()
        };
        let (g, map) = build_shaped_graph(&Scenario::light_test(), &shape);
        assert_eq!(g.len(), 15);
        let t = g.topology();
        assert_eq!(t.preds(map.mixer), &[map.sampler.0][..]);
        assert!(t.preds(map.cue).is_empty());
        assert!(t.is_valid_execution_order(t.queue()));
    }

    #[test]
    fn default_shape_matches_fixed_builder() {
        let scenario = Scenario::light_test();
        let (a, _) = build_djstar_graph(&scenario);
        let (b, _) = build_shaped_graph(&scenario, &GraphShape::paper_default());
        let (ta, tb) = (a.topology(), b.topology());
        assert_eq!(ta.len(), tb.len());
        for n in 0..ta.len() as u32 {
            assert_eq!(ta.name(NodeId(n)), tb.name(NodeId(n)));
            assert_eq!(ta.preds(NodeId(n)), tb.preds(NodeId(n)));
        }
    }

    #[test]
    fn stats_collector_is_the_unique_sink() {
        let (g, map) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        // Sinks = nodes with no successors that are not bookkeeping outputs.
        let audio_sinks: Vec<u32> = (0..t.len() as u32)
            .filter(|&n| t.succs(NodeId(n)).is_empty())
            .collect();
        assert!(audio_sinks.contains(&map.stats.0));
        // The stats node has the maximum depth in the graph.
        let max_depth = (0..t.len() as u32)
            .map(|n| t.depth(NodeId(n)))
            .max()
            .unwrap();
        assert_eq!(t.depth(map.stats), max_depth);
    }

    #[test]
    fn sections_partition_the_graph() {
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        let mut per_section = std::collections::HashMap::new();
        for n in 0..t.len() as u32 {
            *per_section.entry(t.section(NodeId(n))).or_insert(0usize) += 1;
        }
        assert_eq!(per_section[&Section::DeckA], 13);
        assert_eq!(per_section[&Section::DeckB], 13);
        assert_eq!(per_section[&Section::DeckC], 13);
        assert_eq!(per_section[&Section::DeckD], 13);
        assert_eq!(per_section[&Section::Master], 15);
    }

    #[test]
    fn networked_shape_adds_receivers_and_broadcast() {
        let mut scenario = Scenario::light_test();
        scenario.net = djstar_workload::NetSpec::lossy(5);
        let shape = GraphShape::for_net(&scenario.net);
        let (g, map) = build_shaped_graph(&scenario, &shape);
        // 67 + 2 NetSrc + 1 BroadcastSink.
        assert_eq!(g.len(), shape.node_count());
        assert_eq!(g.len(), 70);
        let t = g.topology();
        let na = map.net_src[0].expect("deck A is remote");
        assert_eq!(t.name(na), "NetSrcA");
        assert!(map.net_src[2].is_none());
        // The receiver feeds all four SP bands of its deck.
        for band in 0..4 {
            assert_eq!(t.preds(map.sp(0, band).unwrap()), &[na.0][..]);
        }
        // Local decks keep their SP sources.
        assert!(t.preds(map.sp(2, 0).unwrap()).is_empty());
        let bc = map.broadcast.expect("listeners > 0");
        assert_eq!(t.name(bc), "BroadcastSink[n4]");
        assert_eq!(t.preds(bc), &[map.master_buffer.0][..]);
        // The receiver stretches the deck's chain by one level.
        assert_eq!(t.critical_path_len(), 11);
        assert!(t.is_valid_execution_order(t.queue()));
    }

    #[test]
    fn default_shape_has_no_network_nodes() {
        let (g, map) = build_djstar_graph(&Scenario::light_test());
        assert!(map.net_src.iter().all(|n| n.is_none()));
        assert!(map.broadcast.is_none());
        assert_eq!(g.len(), GraphShape::paper_default().node_count());
    }

    #[test]
    fn initial_concurrency_drops_to_about_four_chains() {
        // After the sources, the structural parallelism is the 4 FX chains:
        // depth 1 holds the four FX1 nodes plus the two clock followers.
        let (g, _) = build_djstar_graph(&Scenario::light_test());
        let t = g.topology();
        let depth1: Vec<&str> = (0..t.len() as u32)
            .filter(|&n| t.depth(NodeId(n)) == 1)
            .map(|n| t.name(NodeId(n)))
            .collect();
        assert_eq!(depth1.len(), 6, "{depth1:?}");
        assert!(depth1.iter().filter(|n| n.starts_with("FX")).count() == 4);
    }
}
