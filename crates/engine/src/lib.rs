//! The DJ Star application engine: everything around the task graph.
//!
//! DJ Star's audio processing cycle (APC) is
//! `T(APC) = T(TP) + T(GP) + T(Graph) + T(VC)` (§VI):
//!
//! * **TP** — timecode processing: decoding the control signal of the
//!   external turntables ([`timecode`]), 16 % of the APC in the paper.
//! * **GP** — graph preprocessing: time stretching, phase alignment and
//!   buffer management for each deck ([`deck`]), the largest non-graph
//!   chunk (33 %).
//! * **Graph** — the 67-node task graph ([`graphbuild`], executed by
//!   `djstar-core`), 38 %.
//! * **VC** — various calculations (master tempo, accounting).
//!
//! [`apc::AudioEngine`] drives all four phases against a simulated sound
//! card ([`soundcard`]) with the 2.9 ms deadline, and [`profiling`] is the
//! scoped-timer hotspot profiler used to regenerate the §III analysis.

pub mod apc;
pub mod deck;
pub mod degrade;
pub mod events;
pub mod graphbuild;
pub mod modes;
pub mod netnodes;
pub mod nodes;
pub mod profiling;
pub mod reconfig;
pub mod soundcard;
pub mod sync;
pub mod timecode;
pub mod venue;

pub use apc::{
    fault_plan_from_spec, ApcTiming, AudioEngine, AuxWork, DegradeOutcome, NetDegradeOutcome,
    VenueCyclePrep,
};
pub use degrade::{
    DegradationPolicy, DegradeAction, DegradeConfig, DegradeEvent, NetDegradeAction,
    NetDegradeConfig, NetDegradeEvent, NetLatencyPolicy,
};
pub use graphbuild::{build_djstar_graph, build_shaped_graph, GraphShape, NodeMap};
pub use modes::{
    canonical_shape, reachable_edits, shape_fingerprint, AdmissionControl, BlueprintCache,
    ModeCacheStats, NodeCostModel, ShapeFingerprint, Unschedulable,
};
pub use netnodes::{BroadcastSink, BroadcastStats, NetDeckSource};
pub use reconfig::{
    apply_edit, stage_topology, EditError, GraphEdit, ReconfigError, StagedTopology,
};
pub use soundcard::SoundCardSim;
pub use venue::{AdmissionRejection, SessionCounters, SessionSpec, VenueServer};
