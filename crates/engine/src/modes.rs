//! Mode-aware scheduling: a per-shape blueprint cache and a
//! schedulability admission check for live reconfiguration.
//!
//! PR 4's stage/commit split keeps the *commit* cheap, but every mode
//! switch still pays a full stage — graph build, buffer allocation and
//! (for PLAN) blueprint compilation — before it can commit. A performer
//! flipping between a handful of deck/FX *modes* rebuilds the same few
//! generations over and over. This module closes that gap:
//!
//! * [`shape_fingerprint`] canonicalises a [`GraphShape`] into a stable
//!   64-bit key. Fields the build ignores (FX slots of an unloaded deck,
//!   playout depth of a local deck) are zeroed first, so two shapes that
//!   build the same graph share one cache slot.
//! * [`BlueprintCache`] maps fingerprints to fully staged generations
//!   ([`StagedTopology`]). Hits are *take-once*: the staged generation
//!   moves out of the cache and into the commit, so a hit allocates
//!   nothing. Capacity is bounded (LRU eviction) and a **generation
//!   epoch** invalidates every entry when the node-cost calibration or
//!   the worker count changes — a blueprint compiled against stale costs
//!   must never be committed.
//! * [`reachable_edits`] enumerates the one-[`GraphEdit`] neighborhood of
//!   a shape. The engine precompiles those targets off the audio thread
//!   (`AudioEngine::precompile_neighborhood`), so the *next* switch is a
//!   warm hit with high probability.
//! * [`AdmissionControl`] runs a schedulability check before anything is
//!   staged: a list-schedule bound ([`djstar_sim::session_bound_ns`]) on
//!   the *target* shape under the calibrated [`NodeCostModel`], compared
//!   against the margined deadline ([`djstar_sim::cycle_budget_ns`]).
//!   A shape the simulator proves unschedulable is rejected with a typed
//!   [`Unschedulable`] before a single node is built — mirroring the
//!   venue layer's oracle-confirmed session admission.

use crate::graphbuild::{build_shaped_graph, GraphShape};
use crate::reconfig::{GraphEdit, StagedTopology};
use djstar_core::graph::GraphTopology;
use djstar_sim::{cycle_budget_ns, session_bound_ns, DurationModel, SimGraph};
use djstar_workload::scenario::Scenario;
use std::fmt;

/// The admission check proved the target shape cannot meet the margined
/// deadline. Nothing was staged; the running generation is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Unschedulable {
    /// List-schedule bound of the target shape (plus aux floor), ns.
    pub bound_ns: u64,
    /// The margined cycle budget the bound must fit, ns.
    pub budget_ns: u64,
    /// Node count of the rejected shape.
    pub node_count: usize,
}

impl fmt::Display for Unschedulable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape of {} nodes bounded at {} ns exceeds the {} ns cycle budget",
            self.node_count, self.bound_ns, self.budget_ns
        )
    }
}

impl std::error::Error for Unschedulable {}

/// Canonical 64-bit fingerprint of a [`GraphShape`] (FNV-1a over the
/// canonicalised fields). Equal fingerprints mean the shapes build the
/// same graph generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ShapeFingerprint(u64);

impl ShapeFingerprint {
    /// The raw 64-bit key.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// `shape` with every build-ignored field zeroed: unloaded decks carry no
/// FX/remote/depth state, local decks no playout depth. Two shapes with
/// equal canonical forms build identical graphs.
pub fn canonical_shape(shape: &GraphShape) -> GraphShape {
    let mut c = *shape;
    for d in 0..4 {
        if !c.deck_loaded[d] {
            c.fx_slots[d] = 0;
            c.remote_decks[d] = false;
        }
        if !c.remote_decks[d] {
            c.net_depth[d] = 0;
        }
    }
    c
}

/// Fingerprint of the [`canonical_shape`] of `shape`.
pub fn shape_fingerprint(shape: &GraphShape) -> ShapeFingerprint {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let c = canonical_shape(shape);
    let mut h = OFFSET;
    let mut fold = |byte: u64| {
        h ^= byte;
        h = h.wrapping_mul(PRIME);
    };
    for d in 0..4 {
        fold(u64::from(c.deck_loaded[d]));
        fold(c.fx_slots[d] as u64);
        fold(u64::from(c.remote_decks[d]));
        fold(u64::from(c.net_depth[d]));
    }
    fold(u64::from(c.listeners));
    ShapeFingerprint(h)
}

/// Every [`GraphEdit`] that applies to `shape` — its one-edit
/// reachability neighborhood, the precompile frontier of the blueprint
/// cache. `ResizeThreads` is excluded (not a shape edit) and playout
/// depth only steps by one in either direction.
pub fn reachable_edits(shape: &GraphShape) -> Vec<GraphEdit> {
    let mut edits = Vec::new();
    for d in 0..4 {
        if !shape.deck_loaded[d] {
            edits.push(GraphEdit::LoadDeck(d));
            continue;
        }
        edits.push(GraphEdit::UnloadDeck(d));
        if shape.fx_slots[d] < GraphShape::MAX_FX_SLOTS {
            edits.push(GraphEdit::InsertFxSlot(d));
        }
        if shape.fx_slots[d] > 1 {
            edits.push(GraphEdit::RemoveFxSlot(d));
        }
        if shape.remote_decks[d] {
            edits.push(GraphEdit::DisconnectRemoteDeck(d));
            if shape.net_depth[d] > 0 {
                edits.push(GraphEdit::SetNetDepth(d, shape.net_depth[d] + 1));
                if shape.net_depth[d] > 1 {
                    edits.push(GraphEdit::SetNetDepth(d, shape.net_depth[d] - 1));
                }
            }
        } else {
            edits.push(GraphEdit::ConnectRemoteDeck(d));
        }
    }
    edits
}

/// Counters of one [`BlueprintCache`]'s life so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ModeCacheStats {
    /// `take` found a staged generation for the requested shape.
    pub hits: u64,
    /// `take` found nothing; the caller staged from scratch.
    pub misses: u64,
    /// Entries inserted (precompiles and refreshes alike).
    pub inserted: u64,
    /// Entries evicted to respect the capacity bound.
    pub evicted: u64,
    /// Inserts dropped because their epoch was stale.
    pub stale_rejected: u64,
    /// Times the whole cache was invalidated (epoch bumps).
    pub invalidations: u64,
}

struct CacheEntry {
    key: ShapeFingerprint,
    /// Insert/refresh stamp — the LRU axis. Hits *remove* entries, so
    /// recency of insertion is recency of use.
    stamp: u64,
    staged: StagedTopology,
}

/// Bounded cache of fully staged generations, keyed by canonical shape
/// fingerprint.
///
/// Hits are take-once (the generation moves out, zero allocation on the
/// taking thread); capacity evicts least-recently-inserted; and the
/// **epoch** guards against stale blueprints: [`invalidate`]
/// (BlueprintCache::invalidate) bumps it and clears the cache, and any
/// insert stamped with an older epoch (a background precompile that
/// raced a recalibration) is dropped instead of stored.
pub struct BlueprintCache {
    capacity: usize,
    epoch: u64,
    clock: u64,
    entries: Vec<CacheEntry>,
    stats: ModeCacheStats,
}

impl BlueprintCache {
    /// An empty cache holding at most `capacity` staged generations.
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BlueprintCache {
            capacity,
            epoch: 0,
            clock: 0,
            entries: Vec::with_capacity(capacity),
            stats: ModeCacheStats::default(),
        }
    }

    /// Current generation epoch. Capture it before staging off-thread and
    /// pass it to [`insert_at`](Self::insert_at) so a racing
    /// recalibration voids the work instead of caching a stale blueprint.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of cached generations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters so far.
    pub fn stats(&self) -> ModeCacheStats {
        self.stats
    }

    /// Is a generation for `shape` cached? (No effect on hit/miss
    /// counters.)
    pub fn contains(&self, shape: &GraphShape) -> bool {
        let key = shape_fingerprint(shape);
        self.entries.iter().any(|e| e.key == key)
    }

    /// Take the staged generation for `shape` out of the cache, if one is
    /// cached. A hit removes the entry (generations are single-use — the
    /// commit consumes them) and performs no allocation.
    ///
    /// The hit is re-stamped with the *requested* shape: canonical
    /// equality only guarantees the built graphs match, and committing
    /// the donor's shape verbatim would resurrect its latent don't-care
    /// fields (e.g. the FX chain length of an unloaded deck, which
    /// decides the chain the deck reloads with later).
    pub fn take(&mut self, shape: &GraphShape) -> Option<StagedTopology> {
        let key = shape_fingerprint(shape);
        match self.entries.iter().position(|e| e.key == key) {
            Some(i) => {
                self.stats.hits += 1;
                let mut staged = self.entries.swap_remove(i).staged;
                staged.shape = *shape;
                Some(staged)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Refresh `shape`'s LRU stamp without taking it. The eager
    /// precompiler touches entries it would otherwise re-stage, so a
    /// neighbor that is still one edit away is never the eviction
    /// victim of unrelated inserts. Returns whether the entry exists.
    pub fn touch(&mut self, shape: &GraphShape) -> bool {
        let key = shape_fingerprint(shape);
        match self.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                self.clock += 1;
                e.stamp = self.clock;
                true
            }
            None => false,
        }
    }

    /// Insert a staged generation under the current epoch. Replaces any
    /// entry for the same canonical shape; evicts the least-recently
    /// inserted entry when full. Returns whether it was stored.
    pub fn insert(&mut self, staged: StagedTopology) -> bool {
        let epoch = self.epoch;
        self.insert_at(epoch, staged)
    }

    /// Insert a generation staged under `epoch`. Dropped (returns
    /// `false`) when `epoch` is no longer current — the staging raced an
    /// [`invalidate`](Self::invalidate) and its blueprint is stale.
    pub fn insert_at(&mut self, epoch: u64, staged: StagedTopology) -> bool {
        if epoch != self.epoch {
            self.stats.stale_rejected += 1;
            return false;
        }
        let key = shape_fingerprint(staged.shape());
        self.clock += 1;
        let stamp = self.clock;
        if let Some(i) = self.entries.iter().position(|e| e.key == key) {
            self.entries[i] = CacheEntry { key, stamp, staged };
            self.stats.inserted += 1;
            return true;
        }
        if self.entries.len() >= self.capacity {
            if let Some(oldest) = self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(i, _)| i)
            {
                self.entries.swap_remove(oldest);
                self.stats.evicted += 1;
            }
        }
        self.entries.push(CacheEntry { key, stamp, staged });
        self.stats.inserted += 1;
        true
    }

    /// Void every cached generation and bump the epoch. Called whenever
    /// the inputs a blueprint bakes in change: node-cost recalibration,
    /// worker-count resize, strategy change.
    pub fn invalidate(&mut self) {
        self.entries.clear();
        self.epoch += 1;
        self.stats.invalidations += 1;
    }
}

impl fmt::Debug for BlueprintCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BlueprintCache")
            .field("len", &self.entries.len())
            .field("capacity", &self.capacity)
            .field("epoch", &self.epoch)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Per-node cost estimates for the admission bound, calibrated from
/// traced execution or uniform as a structural fallback.
///
/// Lookup is by node name: exact name first, then the node's *kind* (the
/// name with its deck letter, slot digits and bracket suffix stripped —
/// `FXB5` → `FX`, `ChannelC` → `Channel`, `Mixer[0.5/0.5]` → `Mixer`),
/// then the default. The kind fallback is what lets costs measured on
/// one shape price a *different* shape: deck C's fifth FX slot costs
/// about what deck A's slots did, even if no `FXC5` ever ran.
#[derive(Debug, Clone)]
pub struct NodeCostModel {
    exact: Vec<(String, u64)>,
    kinds: Vec<(String, u64)>,
    default_ns: u64,
}

impl NodeCostModel {
    /// Every node costs `ns` — the structural (uncalibrated) model.
    pub fn uniform(ns: u64) -> Self {
        NodeCostModel {
            exact: Vec::new(),
            kinds: Vec::new(),
            default_ns: ns.max(1),
        }
    }

    /// Calibrate from per-node duration samples (ns), one sample vector
    /// per node of `topo` — the shape of
    /// `AudioEngine::measured_node_durations`. Node cost is the sample
    /// mean; kind cost is the mean over the kind's nodes; the default is
    /// the global mean.
    pub fn from_samples(topo: &GraphTopology, samples: &[Vec<u64>]) -> Self {
        let mean = |v: &[u64]| -> Option<u64> {
            if v.is_empty() {
                None
            } else {
                Some((v.iter().sum::<u64>() / v.len() as u64).max(1))
            }
        };
        let mut exact: Vec<(String, u64)> = Vec::with_capacity(topo.len());
        let mut kind_sums: Vec<(String, u64, u64)> = Vec::new();
        let mut total = 0u64;
        let mut counted = 0u64;
        for i in 0..topo.len() {
            let name = topo.name(djstar_core::graph::NodeId(i as u32));
            let Some(cost) = samples.get(i).and_then(|v| mean(v)) else {
                continue;
            };
            exact.push((name.to_string(), cost));
            total += cost;
            counted += 1;
            let kind = Self::kind_of(name);
            match kind_sums.iter_mut().find(|(k, _, _)| k == kind) {
                Some((_, sum, n)) => {
                    *sum += cost;
                    *n += 1;
                }
                None => kind_sums.push((kind.to_string(), cost, 1)),
            }
        }
        let default_ns = total.checked_div(counted).map_or(1, |d| d.max(1));
        let kinds = kind_sums
            .into_iter()
            .map(|(k, sum, n)| (k, (sum / n).max(1)))
            .collect();
        NodeCostModel {
            exact,
            kinds,
            default_ns,
        }
    }

    /// The cost (ns) estimated for a node named `name`.
    pub fn cost(&self, name: &str) -> u64 {
        if let Some((_, c)) = self.exact.iter().find(|(n, _)| n == name) {
            return *c;
        }
        let kind = Self::kind_of(name);
        if let Some((_, c)) = self.kinds.iter().find(|(k, _)| k == kind) {
            return *c;
        }
        self.default_ns
    }

    /// Per-node constant durations for every node of `topo`, in node
    /// order — the [`DurationModel::Constant`] the admission bound feeds
    /// the list scheduler.
    pub fn durations_for(&self, topo: &GraphTopology) -> Vec<u64> {
        (0..topo.len())
            .map(|i| self.cost(topo.name(djstar_core::graph::NodeId(i as u32))))
            .collect()
    }

    /// A node name's kind: the bracket suffix, trailing slot digits and
    /// trailing deck letter (`A`–`D`) stripped.
    fn kind_of(name: &str) -> &str {
        let base = match name.find('[') {
            Some(i) => &name[..i],
            None => name,
        };
        let base = base.trim_end_matches(|c: char| c.is_ascii_digit());
        let bytes = base.as_bytes();
        if bytes.len() >= 2 && matches!(bytes[bytes.len() - 1], b'A'..=b'D') {
            &base[..base.len() - 1]
        } else {
            base
        }
    }
}

/// Schedulability admission for mode switches: before a target shape is
/// staged, bound its cycle cost with a list schedule under the calibrated
/// [`NodeCostModel`] and reject it ([`Unschedulable`]) when the bound
/// exceeds the margined deadline.
///
/// Verdicts are cached per canonical fingerprint (bounding a shape builds
/// its graph, which is expensive), and [`set_costs`](Self::set_costs)
/// clears them — callers must invalidate their [`BlueprintCache`] in the
/// same breath.
#[derive(Debug, Clone)]
pub struct AdmissionControl {
    deadline_ns: u64,
    margin: f64,
    threads: u32,
    aux_floor_ns: u64,
    costs: NodeCostModel,
    verdicts: Vec<(ShapeFingerprint, Result<u64, Unschedulable>)>,
}

impl AdmissionControl {
    /// Admission against `deadline_ns` at safety `margin` for a
    /// `threads`-worker executor, pricing nodes with `costs`.
    pub fn new(deadline_ns: u64, margin: f64, threads: usize, costs: NodeCostModel) -> Self {
        AdmissionControl {
            deadline_ns,
            margin,
            threads: threads.max(1) as u32,
            aux_floor_ns: 0,
            costs,
            verdicts: Vec::new(),
        }
    }

    /// Add a fixed per-cycle floor (ns) for non-graph work sharing the
    /// cycle (aux mixing, soundcard submit).
    pub fn with_aux_floor(mut self, aux_floor_ns: u64) -> Self {
        self.aux_floor_ns = aux_floor_ns;
        self.verdicts.clear();
        self
    }

    /// The margined cycle budget a bound must fit (ns).
    pub fn budget_ns(&self) -> u64 {
        cycle_budget_ns(self.deadline_ns, self.margin)
    }

    /// The deadline being admitted against (ns).
    pub fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// The safety margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// Worker count the bound schedules for.
    pub fn threads(&self) -> usize {
        self.threads as usize
    }

    /// Retarget the worker count (an executor resize). Clears cached
    /// verdicts; the caller must invalidate its blueprint cache too.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1) as u32;
        self.verdicts.clear();
    }

    /// The cost model in use.
    pub fn costs(&self) -> &NodeCostModel {
        &self.costs
    }

    /// Swap in a recalibrated cost model. Clears cached verdicts; the
    /// caller must invalidate its blueprint cache too.
    pub fn set_costs(&mut self, costs: NodeCostModel) {
        self.costs = costs;
        self.verdicts.clear();
    }

    /// The list-schedule bound (ns) of `shape` under the cost model —
    /// uncached, for oracles and sweeps.
    pub fn bound_ns(&self, scenario: &Scenario, shape: &GraphShape) -> u64 {
        let (graph, _) = build_shaped_graph(scenario, shape);
        let topo = graph.topology();
        let sim = SimGraph::from_topology(topo);
        let durations = DurationModel::Constant(self.costs.durations_for(topo));
        session_bound_ns(&sim, &durations, self.threads, self.aux_floor_ns)
    }

    /// Admit or reject `shape`: `Ok(bound_ns)` when its list-schedule
    /// bound fits the margined budget, a typed [`Unschedulable`]
    /// otherwise. Verdicts are cached by canonical fingerprint.
    pub fn check(&mut self, scenario: &Scenario, shape: &GraphShape) -> Result<u64, Unschedulable> {
        let key = shape_fingerprint(shape);
        if let Some((_, verdict)) = self.verdicts.iter().find(|(k, _)| *k == key) {
            return *verdict;
        }
        let bound_ns = self.bound_ns(scenario, shape);
        let budget_ns = self.budget_ns();
        let verdict = if bound_ns <= budget_ns {
            Ok(bound_ns)
        } else {
            Err(Unschedulable {
                bound_ns,
                budget_ns,
                node_count: shape.node_count(),
            })
        };
        self.verdicts.push((key, verdict));
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconfig::{apply_edit, stage_topology};
    use djstar_core::exec::Strategy;

    #[test]
    fn fingerprint_canonicalises_ignored_fields() {
        let mut a = GraphShape::paper_default();
        a.deck_loaded[2] = false;
        let mut b = a;
        b.fx_slots[2] = 7; // unloaded: ignored
        b.net_depth[1] = 9; // not remote: ignored
        assert_eq!(shape_fingerprint(&a), shape_fingerprint(&b));

        let mut c = a;
        c.fx_slots[0] = 5; // loaded: significant
        assert_ne!(shape_fingerprint(&a), shape_fingerprint(&c));
        let mut d = a;
        d.listeners = 3;
        assert_ne!(shape_fingerprint(&a), shape_fingerprint(&d));
        let mut e = a;
        e.remote_decks[1] = true;
        e.net_depth[1] = 9; // remote: depth now significant
        assert_ne!(shape_fingerprint(&a), shape_fingerprint(&e));
    }

    #[test]
    fn reachable_edits_all_apply() {
        let mut shape = GraphShape::paper_default();
        shape.deck_loaded[3] = false;
        shape.fx_slots[0] = GraphShape::MAX_FX_SLOTS;
        shape.fx_slots[1] = 1;
        shape.remote_decks[2] = true;
        shape.net_depth[2] = 3;
        let edits = reachable_edits(&shape);
        assert!(!edits.is_empty());
        for &edit in &edits {
            let mut target = shape;
            apply_edit(&mut target, edit).unwrap_or_else(|e| {
                panic!("reachable edit {edit:?} must apply, got {e}");
            });
            assert_ne!(
                shape_fingerprint(&target),
                shape_fingerprint(&shape),
                "edit {edit:?} must change the canonical shape"
            );
        }
        // Saturated chains don't offer the saturating edit.
        assert!(!edits.contains(&GraphEdit::InsertFxSlot(0)));
        assert!(!edits.contains(&GraphEdit::RemoveFxSlot(1)));
        // The unloaded deck offers exactly a load.
        assert!(edits.contains(&GraphEdit::LoadDeck(3)));
        assert!(!edits.contains(&GraphEdit::UnloadDeck(3)));
        // Depth steps both ways around 3.
        assert!(edits.contains(&GraphEdit::SetNetDepth(2, 4)));
        assert!(edits.contains(&GraphEdit::SetNetDepth(2, 2)));
    }

    fn staged_for(shape: &GraphShape) -> StagedTopology {
        let scenario = Scenario::light_test();
        stage_topology(&scenario, shape, Strategy::Busy, 2, 16).unwrap()
    }

    #[test]
    fn cache_takes_are_single_use_and_counted() {
        let mut cache = BlueprintCache::new(4);
        let shape = GraphShape::paper_default();
        assert!(cache.take(&shape).is_none());
        assert!(cache.insert(staged_for(&shape)));
        assert!(cache.contains(&shape));
        let hit = cache.take(&shape).expect("warm hit");
        assert_eq!(hit.shape(), &shape);
        assert!(cache.take(&shape).is_none(), "takes are single-use");
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.inserted, 1);
    }

    #[test]
    fn touch_protects_an_entry_from_eviction() {
        let mut cache = BlueprintCache::new(2);
        let mut shapes = Vec::new();
        for fx in 1..=3usize {
            let mut s = GraphShape::paper_default();
            s.fx_slots[0] = fx;
            shapes.push(s);
        }
        cache.insert(staged_for(&shapes[0]));
        cache.insert(staged_for(&shapes[1]));
        assert!(cache.touch(&shapes[0]), "touch must find the cached entry");
        assert!(!cache.touch(&shapes[2]), "touch must miss uncached shapes");
        cache.insert(staged_for(&shapes[2]));
        assert!(cache.contains(&shapes[0]), "touched entry must survive");
        assert!(!cache.contains(&shapes[1]), "untouched entry is the victim");
    }

    #[test]
    fn hits_are_restamped_with_the_requested_shape() {
        // Donor and requester share a canonical shape (deck 2 unloaded,
        // so its FX count is a don't-care for the built graph) but
        // disagree on the latent FX count. The hit must carry the
        // requester's shape — committing the donor's verbatim would make
        // deck 2 reload with the donor's chain length later.
        let mut donor = GraphShape::paper_default();
        donor.deck_loaded[2] = false;
        donor.fx_slots[2] = 7;
        let mut requested = donor;
        requested.fx_slots[2] = 3;
        assert_eq!(shape_fingerprint(&donor), shape_fingerprint(&requested));
        let mut cache = BlueprintCache::new(4);
        cache.insert(staged_for(&donor));
        let hit = cache.take(&requested).expect("canonical-equal hit");
        assert_eq!(hit.shape(), &requested);
    }

    #[test]
    fn cache_evicts_least_recently_inserted() {
        let mut cache = BlueprintCache::new(2);
        let mut shapes = Vec::new();
        for fx in 1..=3usize {
            let mut s = GraphShape::paper_default();
            s.fx_slots[0] = fx;
            shapes.push(s);
            cache.insert(staged_for(&s));
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evicted, 1);
        assert!(!cache.contains(&shapes[0]), "oldest entry evicted");
        assert!(cache.contains(&shapes[1]));
        assert!(cache.contains(&shapes[2]));
    }

    #[test]
    fn invalidation_bumps_epoch_and_voids_stale_inserts() {
        let mut cache = BlueprintCache::new(4);
        let shape = GraphShape::paper_default();
        let epoch = cache.epoch();
        cache.insert(staged_for(&shape));
        cache.invalidate();
        assert!(cache.is_empty());
        assert_eq!(cache.epoch(), epoch + 1);
        // A precompile that was in flight under the old epoch is dropped.
        assert!(!cache.insert_at(epoch, staged_for(&shape)));
        assert!(!cache.contains(&shape));
        assert_eq!(cache.stats().stale_rejected, 1);
        // Under the fresh epoch it stores fine.
        assert!(cache.insert_at(cache.epoch(), staged_for(&shape)));
        assert!(cache.contains(&shape));
    }

    #[test]
    fn kind_fallback_prices_unseen_names() {
        let scenario = Scenario::light_test();
        let (graph, _) = build_shaped_graph(&scenario, &GraphShape::paper_default());
        let topo = graph.topology();
        let samples: Vec<Vec<u64>> = (0..topo.len()).map(|i| vec![100 + i as u64]).collect();
        let model = NodeCostModel::from_samples(topo, &samples);
        // Exact names resolve to their own mean.
        let sp_a1 = (0..topo.len())
            .find(|&i| topo.name(djstar_core::graph::NodeId(i as u32)) == "SPA1")
            .unwrap();
        assert_eq!(model.cost("SPA1"), 100 + sp_a1 as u64);
        // An FX slot never built (paper shape stops at FX?4) prices via
        // the FX kind, not the global default.
        let fx_kind = model.cost("FXC7");
        assert_ne!(fx_kind, 0);
        assert_eq!(fx_kind, model.cost("FXA8"));
        // Kinds strip deck letters, digits and bracket suffixes.
        assert_eq!(NodeCostModel::kind_of("FXB5"), "FX");
        assert_eq!(NodeCostModel::kind_of("SPA1"), "SP");
        assert_eq!(NodeCostModel::kind_of("ChannelC"), "Channel");
        assert_eq!(NodeCostModel::kind_of("NetSrcA"), "NetSrc");
        assert_eq!(NodeCostModel::kind_of("Mixer[0.50/0.50]"), "Mixer");
        assert_eq!(NodeCostModel::kind_of("BroadcastSink[n3]"), "BroadcastSink");
        assert_eq!(NodeCostModel::kind_of("AudioOut1"), "AudioOut");
    }

    #[test]
    fn admission_rejects_exactly_over_budget_shapes() {
        let scenario = Scenario::light_test();
        let shape = GraphShape::paper_default();
        let costs = NodeCostModel::uniform(100);
        let mut generous = AdmissionControl::new(1_000_000_000, 0.1, 2, costs.clone());
        let bound = generous
            .check(&scenario, &shape)
            .expect("a 1s deadline admits everything");
        assert!(bound > 0);

        // A budget exactly at the bound admits; one below rejects with
        // the same bound — the boundary the differential battery walks.
        let mut exact = AdmissionControl::new(bound, 0.0, 2, costs.clone());
        assert_eq!(exact.check(&scenario, &shape), Ok(bound));
        let mut tight = AdmissionControl::new(bound - 1, 0.0, 2, costs);
        let err = tight.check(&scenario, &shape).unwrap_err();
        assert_eq!(err.bound_ns, bound);
        assert_eq!(err.budget_ns, bound - 1);
        assert_eq!(err.node_count, shape.node_count());
        // Verdicts are cached: a second check agrees without rebuilding.
        assert_eq!(tight.check(&scenario, &shape), Err(err));
    }

    #[test]
    fn admission_bound_matches_sim_oracle() {
        let scenario = Scenario::light_test();
        let mut shape = GraphShape::paper_default();
        shape.deck_loaded[1] = false;
        shape.fx_slots[2] = 7;
        let ctrl = AdmissionControl::new(50_000, 0.2, 3, NodeCostModel::uniform(250));
        let bound = ctrl.bound_ns(&scenario, &shape);
        // Recompute independently through the public sim API.
        let (graph, _) = build_shaped_graph(&scenario, &shape);
        let topo = graph.topology();
        let sim = SimGraph::from_topology(topo);
        let durations = DurationModel::Constant(vec![250; topo.len()]);
        assert_eq!(bound, session_bound_ns(&sim, &durations, 3, 0));
        assert_eq!(
            bound <= ctrl.budget_ns(),
            djstar_sim::admissible(&[bound], 50_000, 0.2)
        );
    }
}
