//! Network nodes of the DJ Star graph: remote deck receivers and the
//! broadcast sink.
//!
//! [`NetDeckSource`] replaces a deck's local audio feed with a simulated
//! remote stream: a seeded [`NetFaultPlan`] decides — purely per
//! `(seed, cycle, stream)` — which packets arrive this cycle, and an
//! adaptive [`JitterBuffer`] reorders, de-duplicates and conceals. Because
//! the trace is stateless and the executors guarantee exactly-once node
//! execution, the played audio is bit-identical for a fixed seed across
//! every strategy and thread count.
//!
//! [`BroadcastSink`] models streaming the master bus to `N` listeners with
//! per-listener backpressure: a stalled listener's queue grows and frames
//! past the queue bound are dropped (and counted).
//!
//! Both nodes record into `CycleCtx::counters` when the engine armed
//! telemetry; with counters absent they take no timestamps at all.

use std::time::Instant;

use djstar_core::net::{
    fill_remote_frame, Arrival, JitterBuffer, JitterConfig, NetFaultPlan, NetStats, PopOutcome,
    MAX_ARRIVALS,
};
use djstar_core::processor::{CycleCtx, Processor};
use djstar_dsp::buffer::AudioBuf;
use djstar_workload::profile::{NodeClass, WorkProfile};

use crate::nodes::{sum_inputs, CostModel};
use djstar_workload::netspec::NetSpec;

/// Convert the workload's engine-agnostic [`NetSpec`] into the core's
/// packet-trace plan (the counterpart of `apc::fault_plan_from_spec`).
pub fn net_plan_from_spec(spec: &NetSpec) -> NetFaultPlan {
    NetFaultPlan {
        seed: spec.seed,
        base_delay: spec.base_delay,
        jitter: spec.jitter,
        loss_rate: spec.loss_rate,
        dup_rate: spec.dup_rate,
        dup_delay: spec.dup_delay,
        reorder_rate: spec.reorder_rate,
        reorder_extra: spec.reorder_extra,
        burst_period: spec.burst_period,
        burst_len: spec.burst_len,
        burst_jitter: spec.burst_jitter,
        listener_stall_rate: spec.listener_stall_rate,
    }
}

/// The jitter-buffer configuration a [`NetSpec`] asks for; `start_depth`
/// can be overridden (the degradation governor rebuilds shapes with an
/// explicit per-deck depth).
pub fn jitter_config_from_spec(spec: &NetSpec, start_depth: Option<u32>) -> JitterConfig {
    JitterConfig {
        min_depth: spec.min_depth,
        max_depth: spec.max_depth,
        start_depth: start_depth
            .unwrap_or(spec.start_depth)
            .clamp(spec.min_depth, spec.max_depth),
        adapt: spec.adapt,
        ..JitterConfig::default()
    }
}

/// Decorrelates the synthesized content of different streams sharing one
/// trace seed.
const STREAM_SEED_MIX: u64 = 0x9E37_79B9_7F4A_7C15;

/// NetSrc: receives one remote deck's packet stream through a jitter
/// buffer (a source node; its output feeds the deck's SP filterbank).
pub struct NetDeckSource {
    stream: u32,
    plan: NetFaultPlan,
    buf: JitterBuffer,
    stream_seed: u64,
    /// Stats snapshot at the end of the previous cycle (for counter deltas).
    last: NetStats,
    cost: CostModel,
}

impl NetDeckSource {
    /// The receiver of deck `deck`'s remote stream under `plan`.
    pub fn new(
        deck: usize,
        plan: NetFaultPlan,
        cfg: JitterConfig,
        profile: WorkProfile,
        seed: u32,
    ) -> Self {
        NetDeckSource {
            stream: deck as u32,
            plan,
            buf: JitterBuffer::for_plan(2, djstar_dsp::BUFFER_FRAMES, &plan, cfg),
            stream_seed: plan
                .seed
                .wrapping_add((deck as u64 + 1).wrapping_mul(STREAM_SEED_MIX)),
            last: NetStats::default(),
            cost: CostModel::new(NodeClass::SpFilter, profile, seed),
        }
    }

    /// Lifetime reception statistics of the jitter buffer.
    pub fn net_stats(&self) -> NetStats {
        self.buf.stats()
    }

    /// Current playout depth (cycles of added latency).
    pub fn depth(&self) -> u32 {
        self.buf.depth()
    }

    /// Depth the buffer is converging to.
    pub fn target_depth(&self) -> u32 {
        self.buf.target_depth()
    }

    /// Retarget the playout depth (the degradation governor's actuator);
    /// the buffer applies at most one bounded step per cycle.
    pub fn set_target_depth(&mut self, depth: u32) {
        self.buf.set_target_depth(depth);
    }

    /// Widen or narrow the adaptation range.
    pub fn set_depth_bounds(&mut self, min_depth: u32, max_depth: u32) {
        self.buf.set_depth_bounds(min_depth, max_depth);
    }
}

impl Processor for NetDeckSource {
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn process(&mut self, _inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        let cycle = ctx.epoch;
        let timed = ctx.counters.is_some();

        // -- Receive: drain this cycle's arrivals into the ring. ----------
        let t_recv = timed.then(Instant::now);
        if self.plan.lost(cycle, self.stream) {
            self.buf.note_lost();
        }
        let mut arr = [Arrival { seq: 0, dup: false }; MAX_ARRIVALS];
        let n = self.plan.arrivals(cycle, self.stream, &mut arr);
        let seed = self.stream_seed;
        for a in &arr[..n] {
            self.buf
                .push_with(a.seq, |slot| fill_remote_frame(seed, a.seq, slot));
        }
        if let (Some(c), Some(t0)) = (ctx.counters, t_recv) {
            c.add_net_wait_ns(t0.elapsed().as_nanos() as u64);
        }

        // -- Play: pop the frame due this cycle (or conceal). -------------
        let t_pop = timed.then(Instant::now);
        let outcome = self.buf.pop(cycle, output);
        if let (Some(c), Some(t0)) = (ctx.counters, t_pop) {
            if matches!(outcome, PopOutcome::Concealed | PopOutcome::Held) {
                c.add_net_conceal_ns(t0.elapsed().as_nanos() as u64);
            }
        }

        // -- Account: per-cycle counter deltas. ---------------------------
        if let Some(c) = ctx.counters {
            let s = self.buf.stats();
            c.add_net_cycle(
                s.lost - self.last.lost,
                s.late - self.last.late,
                s.duplicated - self.last.duplicated,
                s.concealed - self.last.concealed,
                s.depth_changes - self.last.depth_changes,
            );
            self.last = s;
        }

        self.cost.apply(output);
    }
}

/// Plain-value delivery statistics of one [`BroadcastSink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BroadcastStats {
    /// Encoded frames dropped past a stalled listener's queue bound.
    pub dropped: u64,
    /// Listener-cycles spent stalled.
    pub stalled_cycles: u64,
    /// Deepest per-listener queue observed.
    pub max_queue: u32,
}

/// BroadcastSink: encodes the master bus for `N` simulated listeners.
///
/// Each cycle enqueues one encoded frame per listener; an unstalled
/// listener drains up to two frames (so it catches up after a stall), a
/// stalled one drains none. Queues past [`BroadcastSink::QUEUE_CAP`] drop
/// the overflow — the per-listener backpressure account.
pub struct BroadcastSink {
    plan: NetFaultPlan,
    queues: Vec<u32>,
    stats: BroadcastStats,
    /// Drops snapshot at the end of the previous cycle.
    last_dropped: u64,
    cost: CostModel,
}

impl BroadcastSink {
    /// Frames a listener may queue before the encoder drops.
    pub const QUEUE_CAP: u32 = 8;

    /// A sink feeding `listeners` simulated downlinks under `plan`.
    pub fn new(listeners: u32, plan: NetFaultPlan, profile: WorkProfile, seed: u32) -> Self {
        BroadcastSink {
            plan,
            queues: vec![0; listeners as usize],
            stats: BroadcastStats::default(),
            last_dropped: 0,
            cost: CostModel::new(NodeClass::MasterChain, profile, seed),
        }
    }

    /// Listener count.
    pub fn listeners(&self) -> u32 {
        self.queues.len() as u32
    }

    /// Lifetime delivery statistics.
    pub fn broadcast_stats(&self) -> BroadcastStats {
        self.stats
    }
}

impl Processor for BroadcastSink {
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        // "Encode": the master bus passes through unchanged; the cost model
        // below charges the encoder's compute.
        sum_inputs(inputs, output);

        let cycle = ctx.epoch;
        for (l, q) in self.queues.iter_mut().enumerate() {
            *q += 1; // this cycle's encoded frame
            if self.plan.listener_stalled(cycle, l as u32) {
                self.stats.stalled_cycles += 1;
            } else {
                *q = q.saturating_sub(2); // drain, catching up post-stall
            }
            if *q > Self::QUEUE_CAP {
                self.stats.dropped += (*q - Self::QUEUE_CAP) as u64;
                *q = Self::QUEUE_CAP;
            }
            if *q > self.stats.max_queue {
                self.stats.max_queue = *q;
            }
        }

        if let Some(c) = ctx.counters {
            c.add_broadcast_drops(self.stats.dropped - self.last_dropped);
            self.last_dropped = self.stats.dropped;
        }

        self.cost.apply(output);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light() -> WorkProfile {
        WorkProfile::light()
    }

    fn ctx(epoch: u64) -> CycleCtx<'static> {
        CycleCtx {
            epoch,
            external_audio: &[],
            controls: &[],
            counters: None,
        }
    }

    #[test]
    fn net_source_plays_the_stream_after_preroll() {
        let plan = NetFaultPlan::quiet(7);
        let mut node = NetDeckSource::new(0, plan, JitterConfig::fixed(2), light(), 1);
        let mut out = AudioBuf::zeroed(2, djstar_dsp::BUFFER_FRAMES);
        for c in 0..40u64 {
            node.process(&[], &mut out, &ctx(c));
        }
        assert!(out.rms() > 0.01, "remote stream should be audible");
        let s = node.net_stats();
        assert_eq!(s.concealed, 0, "quiet network must not conceal");
        assert!(s.received > 30);
    }

    #[test]
    fn net_source_is_deterministic_per_seed() {
        let mut plan = NetFaultPlan::quiet(42);
        plan.jitter = 3;
        plan.loss_rate = 0.05;
        let run = || {
            let mut node = NetDeckSource::new(1, plan, JitterConfig::fixed(4), light(), 1);
            let mut out = AudioBuf::zeroed(2, djstar_dsp::BUFFER_FRAMES);
            let mut sig = Vec::new();
            for c in 0..200u64 {
                node.process(&[], &mut out, &ctx(c));
                sig.extend_from_slice(out.samples());
            }
            sig
        };
        assert_eq!(run(), run(), "same seed must be bit-identical");
    }

    #[test]
    fn governor_can_retune_depth_through_the_node() {
        let plan = NetFaultPlan::quiet(3);
        let mut node = NetDeckSource::new(0, plan, JitterConfig::adaptive(1, 8), light(), 1);
        let mut out = AudioBuf::zeroed(2, djstar_dsp::BUFFER_FRAMES);
        for c in 0..10u64 {
            node.process(&[], &mut out, &ctx(c));
        }
        node.set_target_depth(5);
        assert_eq!(node.target_depth(), 5);
        for c in 10..40u64 {
            node.process(&[], &mut out, &ctx(c));
        }
        assert_eq!(node.depth(), 5, "bounded steps must reach the target");
    }

    #[test]
    fn broadcast_sink_counts_drops_under_stall() {
        let mut plan = NetFaultPlan::quiet(11);
        plan.listener_stall_rate = 0.9;
        let mut node = BroadcastSink::new(4, plan, light(), 2);
        let master = AudioBuf::from_fn(2, 64, |_, i| ((i as f32) * 0.11).sin() * 0.4);
        let mut out = AudioBuf::zeroed(2, 64);
        for c in 0..400u64 {
            node.process(&[&master], &mut out, &ctx(c));
        }
        let s = node.broadcast_stats();
        assert!(s.stalled_cycles > 1000, "stalls: {}", s.stalled_cycles);
        assert!(s.dropped > 100, "drops: {}", s.dropped);
        assert!(s.max_queue == BroadcastSink::QUEUE_CAP);
        // Audio passes through untouched (modulo the cost residue).
        assert!((out.rms() - master.rms()).abs() < 1e-4);
    }

    #[test]
    fn broadcast_sink_clean_network_never_drops() {
        let plan = NetFaultPlan::quiet(11);
        let mut node = BroadcastSink::new(8, plan, light(), 2);
        let master = AudioBuf::zeroed(2, 64);
        let mut out = AudioBuf::zeroed(2, 64);
        for c in 0..400u64 {
            node.process(&[&master], &mut out, &ctx(c));
        }
        let s = node.broadcast_stats();
        assert_eq!(s.dropped, 0);
        assert_eq!(s.stalled_cycles, 0);
        assert!(s.max_queue <= 1);
    }
}
