//! Processor implementations for every node kind of the DJ Star graph
//! (Fig. 3): sample-preprocess filters, deck effects, channel strips, the
//! mixer, the master section, and the independent bookkeeping nodes.
//!
//! Every processor finishes by running the calibratable [`CostModel`], which
//! burns a per-class, signal-energy-dependent number of compute iterations
//! (see `djstar_workload::profile`) — this is what gives our graph the
//! paper's heterogeneous, data-dependent node-cost distribution.

use djstar_core::processor::{CycleCtx, Processor};
use djstar_dsp::biquad::{Biquad, FilterKind};
use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::dynamics::{Compressor, HardClip, Limiter};
use djstar_dsp::effects::Effect;
use djstar_dsp::eq::{ChannelFilter, ThreeBandEq};
use djstar_dsp::meter::{goertzel_power, LevelMeter};
use djstar_dsp::mix::{crossfader_gain, mix_into};
use djstar_dsp::work::burn;
use djstar_workload::profile::{NodeClass, WorkProfile};

/// Indices into `CycleCtx::controls` (the engine's live control surface).
pub mod controls {
    /// Crossfader position in `[0, 1]`.
    pub const CROSSFADER: usize = 0;
    /// Master output gain.
    pub const MASTER_GAIN: usize = 1;
    /// Master beat clock (monotonically increasing beat count).
    pub const BEAT_CLOCK: usize = 2;
    /// Channel fader gain of deck `d`.
    pub const fn deck_gain(d: usize) -> usize {
        3 + d
    }
    /// Total number of control slots.
    pub const COUNT: usize = 7;
}

/// Reads a control value, defaulting when the engine supplied none (tests).
#[inline]
fn ctrl(ctx: &CycleCtx<'_>, idx: usize, default: f32) -> f32 {
    ctx.controls.get(idx).copied().unwrap_or(default)
}

/// The calibratable per-node compute burden.
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    class: NodeClass,
    profile: WorkProfile,
    seed: f32,
}

impl CostModel {
    /// Cost model for a node of `class`; `seed` decorrelates the burn
    /// kernels of different nodes (use the node's index).
    pub fn new(class: NodeClass, profile: WorkProfile, seed: u32) -> Self {
        CostModel {
            class,
            profile,
            seed: (seed as f32 * 0.137).fract(),
        }
    }

    /// Normalized signal energy of a buffer: RMS mapped into `[0, 1]`.
    /// RMS (not mean-square) keeps the mapping from saturating at hot
    /// levels, preserving the loud/quiet cost contrast that produces the
    /// paper's bimodal execution-time histograms (Fig. 9).
    fn energy_of(buf: &AudioBuf) -> f32 {
        let len = buf.samples().len();
        let mean_sq = if len == 0 {
            0.0
        } else {
            buf.energy() / len as f32
        };
        (mean_sq.sqrt() * 1.6).clamp(0.0, 1.0)
    }

    /// The iteration count [`apply`](Self::apply) would burn for `buf` —
    /// exposed so tests can verify the data dependence deterministically.
    pub fn iters_for(&self, buf: &AudioBuf) -> u32 {
        self.profile
            .effective_iters(self.class, Self::energy_of(buf))
    }

    /// Burn the configured iterations, scaled by the buffer's normalized
    /// signal energy, and fold an unobservably small residue into the
    /// buffer so the optimizer cannot elide the work.
    pub fn apply(&self, buf: &mut AudioBuf) {
        let energy = Self::energy_of(buf);
        let iters = self.profile.effective_iters(self.class, energy);
        let sink = burn(iters, self.seed + energy);
        if let Some(s0) = buf.samples_mut().first_mut() {
            *s0 += sink * 1e-20;
        }
    }
}

/// Unity gains for summing nodes (the graph caps predecessors at 16).
const UNITY_GAINS: [f32; 16] = [1.0; 16];

/// Sum all inputs into `out` (cleared first); a no-op clear for sources.
/// Routed through the fused mixer kernel, which makes a single pass per
/// channel plane when the layouts line up.
pub(crate) fn sum_inputs(inputs: &[&AudioBuf], out: &mut AudioBuf) {
    if inputs.len() <= UNITY_GAINS.len() {
        mix_into(out, inputs, &UNITY_GAINS[..inputs.len()]);
    } else {
        out.clear();
        for i in inputs {
            out.mix_add(i, 1.0);
        }
    }
}

// --------------------------------------------------------------------------
// Deck section nodes
// --------------------------------------------------------------------------

/// SPx: sample-preprocess band filter reading the deck's external audio.
///
/// The four SP nodes of a deck form a Linkwitz–Riley 4-band crossover
/// (200 / 1200 / 5000 Hz): each node applies its branch of the LR4 split
/// tree, so when the first effect node sums the four bands the deck signal
/// reconstructs flat (see `djstar_dsp::crossover`). Each node owns its own
/// filter chain — the graph decomposition demands independent nodes — and
/// the shared tree prefixes are simply duplicated per branch.
pub struct SpFilterNode {
    deck: usize,
    chain: Vec<Biquad>,
    cost: CostModel,
}

/// LR4 crossover points of the SP filterbank (Hz).
const SP_CROSSOVERS: [f32; 3] = [200.0, 1_200.0, 5_000.0];

impl SpFilterNode {
    /// The `band`-th (0–3) preprocess filter of `deck`.
    pub fn new(deck: usize, band: usize, profile: WorkProfile, seed: u32) -> Self {
        let sr = djstar_dsp::SAMPLE_RATE;
        let q = core::f32::consts::FRAC_1_SQRT_2;
        // LR4 = two cascaded Butterworth sections per split side. The band's
        // branch through the split tree:
        //   b0: LP(f1)            b1: HP(f1)·LP(f2)
        //   b2: HP(f1)·HP(f2)·LP(f3)   b3: HP(f1)·HP(f2)·HP(f3)
        let mut chain = Vec::new();
        let mut push = |kind, f| {
            for _ in 0..2 {
                chain.push(Biquad::design(kind, f, q, sr));
            }
        };
        match band {
            0 => push(FilterKind::Lowpass, SP_CROSSOVERS[0]),
            1 => {
                push(FilterKind::Highpass, SP_CROSSOVERS[0]);
                push(FilterKind::Lowpass, SP_CROSSOVERS[1]);
            }
            2 => {
                push(FilterKind::Highpass, SP_CROSSOVERS[0]);
                push(FilterKind::Highpass, SP_CROSSOVERS[1]);
                push(FilterKind::Lowpass, SP_CROSSOVERS[2]);
            }
            _ => {
                push(FilterKind::Highpass, SP_CROSSOVERS[0]);
                push(FilterKind::Highpass, SP_CROSSOVERS[1]);
                push(FilterKind::Highpass, SP_CROSSOVERS[2]);
            }
        }
        SpFilterNode {
            deck,
            chain,
            cost: CostModel::new(NodeClass::SpFilter, profile, seed),
        }
    }
}

impl Processor for SpFilterNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        // A wired predecessor (the deck's network receiver) takes priority
        // over the local external-audio slot; local decks stay sources.
        if let Some(src) = inputs.first() {
            output.copy_from(src);
        } else {
            match ctx.external_audio.get(self.deck) {
                Some(src) => output.copy_from(src),
                None => output.clear(),
            }
        }
        // One fused pass over the whole 6–8 section chain (channels ride
        // the SIMD lanes, coefficients stay in registers).
        djstar_dsp::biquad::process_chain(&mut self.chain, output);
        self.cost.apply(output);
    }
}

/// FXn: a deck effect; the first in the chain sums the four SP bands.
pub struct EffectNode {
    effect: Box<dyn Effect>,
    enabled: bool,
    cost: CostModel,
}

impl EffectNode {
    /// An effect node wrapping `effect`; when `enabled` is false the node
    /// passes audio through (but still pays its queue slot, like DJ Star's
    /// nodes that "do not modify the audio packets").
    pub fn new(effect: Box<dyn Effect>, enabled: bool, profile: WorkProfile, seed: u32) -> Self {
        EffectNode {
            effect,
            enabled,
            cost: CostModel::new(NodeClass::Effect, profile, seed),
        }
    }

    /// Enable or disable the effect (live control).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on;
    }
}

impl Processor for EffectNode {
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        // Recombining the SP bands needs no normalization: they form a
        // Linkwitz-Riley crossover whose sum is allpass-flat.
        sum_inputs(inputs, output);
        if self.enabled {
            self.effect.process(output);
        }
        self.cost.apply(output);
    }
}

/// Channel strip: single-knob filter + 3-band EQ + fader gain.
pub struct ChannelNode {
    deck: usize,
    filter: ChannelFilter,
    eq: ThreeBandEq,
    cost: CostModel,
}

impl ChannelNode {
    /// The channel strip of `deck` with the given knob settings.
    pub fn new(
        deck: usize,
        filter_pos: f32,
        eq_db: [f32; 3],
        profile: WorkProfile,
        seed: u32,
    ) -> Self {
        let sr = djstar_dsp::SAMPLE_RATE;
        let mut filter = ChannelFilter::new(sr);
        filter.set_position(filter_pos);
        let mut eq = ThreeBandEq::new(sr);
        eq.set_gains(eq_db[0], eq_db[1], eq_db[2]);
        ChannelNode {
            deck,
            filter,
            eq,
            cost: CostModel::new(NodeClass::Channel, profile, seed),
        }
    }

    /// Live EQ control.
    pub fn set_eq(&mut self, low_db: f32, mid_db: f32, high_db: f32) {
        self.eq.set_gains(low_db, mid_db, high_db);
    }

    /// Live filter-knob control.
    pub fn set_filter(&mut self, pos: f32) {
        self.filter.set_position(pos);
    }
}

impl Processor for ChannelNode {
    fn as_any_mut(&mut self) -> Option<&mut dyn std::any::Any> {
        Some(self)
    }

    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        sum_inputs(inputs, output);
        self.filter.process(output);
        self.eq.process(output);
        output.scale(ctrl(ctx, controls::deck_gain(self.deck), 1.0));
        self.cost.apply(output);
    }
}

// --------------------------------------------------------------------------
// Master section nodes
// --------------------------------------------------------------------------

/// The mixer: crossfades channels A/B, adds C/D and the sampler.
pub struct MixerNode {
    /// Crossfader side of each channel input; inputs beyond this list are
    /// sampler feeds. One entry per channel actually wired into the graph,
    /// so a reshaped graph with unloaded decks just builds a shorter list.
    sides: Vec<f32>,
    sampler_gain: f32,
    cost: CostModel,
}

impl MixerNode {
    /// A mixer with channels A on side -1, B on side +1, C and D center.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        Self::with_sides(vec![-1.0, 1.0, 0.0, 0.0], profile, seed)
    }

    /// A mixer over an explicit channel/side layout (shaped graphs).
    pub fn with_sides(sides: Vec<f32>, profile: WorkProfile, seed: u32) -> Self {
        MixerNode {
            sides,
            sampler_gain: 0.7,
            cost: CostModel::new(NodeClass::Mixer, profile, seed),
        }
    }
}

impl Processor for MixerNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        let x = ctrl(ctx, controls::CROSSFADER, 0.5);
        let mut gains = [0.0f32; 16];
        if inputs.len() <= gains.len() {
            for (i, g) in gains.iter_mut().take(inputs.len()).enumerate() {
                *g = match self.sides.get(i) {
                    Some(&side) => crossfader_gain(x, side),
                    None => self.sampler_gain,
                };
            }
            mix_into(output, inputs, &gains[..inputs.len()]);
        } else {
            output.clear();
            for (i, buf) in inputs.iter().enumerate() {
                let gain = match self.sides.get(i) {
                    Some(&side) => crossfader_gain(x, side),
                    None => self.sampler_gain,
                };
                output.mix_add(buf, gain);
            }
        }
        self.cost.apply(output);
    }
}

/// Master buffer: master gain + limiter.
pub struct MasterBufferNode {
    limiter: Limiter,
    cost: CostModel,
}

impl MasterBufferNode {
    /// The master bus processor.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        MasterBufferNode {
            limiter: Limiter::master(djstar_dsp::SAMPLE_RATE),
            cost: CostModel::new(NodeClass::MasterChain, profile, seed),
        }
    }
}

impl Processor for MasterBufferNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        sum_inputs(inputs, output);
        output.scale(ctrl(ctx, controls::MASTER_GAIN, 1.0));
        self.limiter.process(output);
        self.cost.apply(output);
    }
}

/// Final hardware output: limiter + hard clip safety net.
pub struct AudioOutNode {
    limiter: Limiter,
    clip: HardClip,
    clipped: u64,
    cost: CostModel,
}

impl AudioOutNode {
    /// The output stage.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        AudioOutNode {
            limiter: Limiter::master(djstar_dsp::SAMPLE_RATE),
            clip: HardClip::new(1.0),
            clipped: 0,
            cost: CostModel::new(NodeClass::MasterChain, profile, seed),
        }
    }

    /// Total clipped samples so far (the clip indicator).
    pub fn clipped_samples(&self) -> u64 {
        self.clipped
    }
}

impl Processor for AudioOutNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        sum_inputs(inputs, output);
        self.limiter.process(output);
        self.clipped += self.clip.process(output) as u64;
        self.cost.apply(output);
    }
}

/// Record buffer: an independently limited/clipped copy of the master.
pub struct RecordBufferNode {
    limiter: Limiter,
    clip: HardClip,
    cost: CostModel,
}

impl RecordBufferNode {
    /// The record-path processor (slightly lower ceiling than the master).
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        RecordBufferNode {
            limiter: Limiter::new(0.89, 0.5, 60.0, djstar_dsp::SAMPLE_RATE),
            clip: HardClip::new(0.95),
            cost: CostModel::new(NodeClass::MasterChain, profile, seed),
        }
    }
}

impl Processor for RecordBufferNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        sum_inputs(inputs, output);
        self.limiter.process(output);
        self.clip.process(output);
        self.cost.apply(output);
    }
}

/// Cue buffer: pre-crossfader mix of the cue-enabled channels.
pub struct CueBufferNode {
    /// One enable flag per wired channel input (shaped graphs wire only
    /// the loaded decks).
    cue_enabled: Vec<bool>,
    cost: CostModel,
}

impl CueBufferNode {
    /// Cue mix over the given channel-enable mask.
    pub fn new(cue_enabled: impl Into<Vec<bool>>, profile: WorkProfile, seed: u32) -> Self {
        CueBufferNode {
            cue_enabled: cue_enabled.into(),
            cost: CostModel::new(NodeClass::MasterChain, profile, seed),
        }
    }
}

impl Processor for CueBufferNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        output.clear();
        let n = self.cue_enabled.iter().filter(|&&e| e).count().max(1);
        for (i, buf) in inputs.iter().enumerate() {
            if *self.cue_enabled.get(i).unwrap_or(&false) {
                output.mix_add(buf, 1.0 / n as f32);
            }
        }
        self.cost.apply(output);
    }
}

/// Monitor buffer: mono downmix of the cue signal (Fig. 3: "Mono").
pub struct MonitorBufferNode {
    cost: CostModel,
}

impl MonitorBufferNode {
    /// The headphone-monitor processor.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        MonitorBufferNode {
            cost: CostModel::new(NodeClass::MasterChain, profile, seed),
        }
    }
}

impl Processor for MonitorBufferNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        sum_inputs(inputs, output);
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Clock tick: fires a trigger sample whenever the beat counter crosses an
/// integer boundary. (A source node: reads only the control surface.)
pub struct ClockTickNode {
    last_beat: f32,
    cost: CostModel,
}

impl ClockTickNode {
    /// The master clock node.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        ClockTickNode {
            last_beat: 0.0,
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for ClockTickNode {
    fn process(&mut self, _inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        let beat = ctrl(ctx, controls::BEAT_CLOCK, 0.0);
        output.clear();
        if beat.floor() > self.last_beat.floor() {
            output.set_sample(0, 0, 1.0);
        }
        output.set_sample(0, 1.min(output.frames() - 1), beat.fract());
        self.last_beat = beat;
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Audio sampler: plays a one-shot stab when the clock node fires every
/// fourth beat.
pub struct SamplerNode {
    sample: Vec<f32>,
    pos: Option<usize>,
    beats_seen: u32,
    cost: CostModel,
}

impl SamplerNode {
    /// A sampler loaded with a synthesized stab.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        // 60 ms decaying square stab.
        let n = (0.06 * djstar_dsp::SAMPLE_RATE as f32) as usize;
        let sample = (0..n)
            .map(|i| {
                let t = i as f32 / djstar_dsp::SAMPLE_RATE as f32;
                let sq = if (t * 660.0).fract() < 0.5 { 1.0 } else { -1.0 };
                0.4 * sq * (-t * 35.0).exp()
            })
            .collect();
        SamplerNode {
            sample,
            pos: None,
            beats_seen: 0,
            cost: CostModel::new(NodeClass::MasterChain, profile, seed),
        }
    }
}

impl Processor for SamplerNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        let triggered = inputs
            .first()
            .map(|clock| clock.sample(0, 0) > 0.5)
            .unwrap_or(false);
        if triggered {
            self.beats_seen += 1;
            if self.beats_seen % 4 == 1 {
                self.pos = Some(0);
            }
        }
        output.clear();
        if let Some(p) = self.pos.take() {
            // Straight slice copies into the planar channel planes.
            let n = (self.sample.len() - p).min(output.frames());
            let seg = &self.sample[p..p + n];
            let (l, r) = output.as_planar_slices_mut();
            l[..n].copy_from_slice(seg);
            if !r.is_empty() {
                r[..n].copy_from_slice(seg);
            }
            if p + n < self.sample.len() {
                self.pos = Some(p + n);
            }
        }
        self.cost.apply(output);
    }
}

// --------------------------------------------------------------------------
// Bookkeeping nodes (independent or tap nodes; "do not modify the audio")
// --------------------------------------------------------------------------

/// Per-deck level meter (source: reads the deck's external audio).
pub struct LevelMeterNode {
    deck: Option<usize>,
    meter: LevelMeter,
    cost: CostModel,
}

impl LevelMeterNode {
    /// A meter reading deck `deck`'s external audio (source node).
    pub fn for_deck(deck: usize, profile: WorkProfile, seed: u32) -> Self {
        LevelMeterNode {
            deck: Some(deck),
            meter: LevelMeter::standard(),
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }

    /// A meter reading its first graph input (e.g. the master bus).
    pub fn for_input(profile: WorkProfile, seed: u32) -> Self {
        LevelMeterNode {
            deck: None,
            meter: LevelMeter::standard(),
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for LevelMeterNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        let (peak, rms) = match self.deck {
            Some(d) => match ctx.external_audio.get(d) {
                Some(src) => self.meter.update(src),
                None => (0.0, 0.0),
            },
            None => match inputs.first() {
                Some(src) => self.meter.update(src),
                None => (0.0, 0.0),
            },
        };
        output.clear();
        output.set_sample(0, 0, peak);
        output.set_sample(0, 1.min(output.frames() - 1), rms);
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Waveform tap: decimated copy of the deck audio for the GUI (source).
pub struct WaveformTapNode {
    deck: usize,
    cost: CostModel,
}

impl WaveformTapNode {
    /// The waveform tap of `deck`.
    pub fn new(deck: usize, profile: WorkProfile, seed: u32) -> Self {
        WaveformTapNode {
            deck,
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for WaveformTapNode {
    fn process(&mut self, _inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        output.clear();
        if let Some(src) = ctx.external_audio.get(self.deck) {
            let step = 8;
            for (k, i) in (0..src.frames()).step_by(step).enumerate() {
                if k >= output.frames() {
                    break;
                }
                output.set_sample(0, k, src.sample(0, i));
            }
        }
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Beat-phase estimator: onset energy flux of the deck audio (source).
pub struct BeatPhaseNode {
    deck: usize,
    prev_energy: f32,
    flux_acc: f32,
    cost: CostModel,
}

impl BeatPhaseNode {
    /// The beat-phase estimator of `deck`.
    pub fn new(deck: usize, profile: WorkProfile, seed: u32) -> Self {
        BeatPhaseNode {
            deck,
            prev_energy: 0.0,
            flux_acc: 0.0,
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for BeatPhaseNode {
    fn process(&mut self, _inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        output.clear();
        if let Some(src) = ctx.external_audio.get(self.deck) {
            let e = src.energy() / src.samples().len().max(1) as f32;
            let flux = (e - self.prev_energy).max(0.0);
            self.prev_energy = e;
            self.flux_acc = 0.9 * self.flux_acc + 0.1 * flux;
            output.set_sample(0, 0, self.flux_acc);
            output.set_sample(0, 1.min(output.frames() - 1), flux);
        }
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Key detector: crude zero-crossing-rate pitch estimate (source).
pub struct KeyDetectNode {
    deck: usize,
    smoothed_zcr: f32,
    cost: CostModel,
}

impl KeyDetectNode {
    /// The key detector of `deck`.
    pub fn new(deck: usize, profile: WorkProfile, seed: u32) -> Self {
        KeyDetectNode {
            deck,
            smoothed_zcr: 0.0,
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for KeyDetectNode {
    fn process(&mut self, _inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        output.clear();
        if let Some(src) = ctx.external_audio.get(self.deck) {
            let mut zc = 0u32;
            for i in 1..src.frames() {
                if (src.sample(0, i - 1) <= 0.0) != (src.sample(0, i) <= 0.0) {
                    zc += 1;
                }
            }
            let zcr = zc as f32 / src.frames().max(1) as f32;
            self.smoothed_zcr = 0.95 * self.smoothed_zcr + 0.05 * zcr;
            output.set_sample(0, 0, self.smoothed_zcr);
        }
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Spectrum tap: 8 Goertzel bands of the master signal.
pub struct SpectrumTapNode {
    bands_hz: [f32; 8],
    cost: CostModel,
}

impl SpectrumTapNode {
    /// The master spectrum analyzer.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        SpectrumTapNode {
            bands_hz: [
                60.0, 150.0, 400.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 15_000.0,
            ],
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for SpectrumTapNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        output.clear();
        if let Some(src) = inputs.first() {
            for (k, &f) in self.bands_hz.iter().enumerate() {
                let p = goertzel_power(src.samples(), f, djstar_dsp::SAMPLE_RATE);
                if k < output.frames() {
                    output.set_sample(0, k, p);
                }
            }
        }
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Headroom calculator: remaining dB before the mixer output clips.
pub struct HeadroomCalcNode {
    cost: CostModel,
}

impl HeadroomCalcNode {
    /// The headroom bookkeeping node.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        HeadroomCalcNode {
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for HeadroomCalcNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        output.clear();
        if let Some(src) = inputs.first() {
            let headroom_db = djstar_dsp::db::gain_to_db(1.0 / src.peak().max(1e-6));
            output.set_sample(0, 0, headroom_db);
        }
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Auto-gain: computes (but does not apply) a compressor gain suggestion.
pub struct AutoGainNode {
    comp: Compressor,
    scratch: AudioBuf,
    cost: CostModel,
}

impl AutoGainNode {
    /// The auto-gain bookkeeping node.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        AutoGainNode {
            comp: Compressor::new(0.3, 3.0, 20.0, djstar_dsp::SAMPLE_RATE),
            scratch: AudioBuf::zeroed(2, djstar_dsp::BUFFER_FRAMES),
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for AutoGainNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        output.clear();
        if let Some(src) = inputs.first() {
            if self.scratch.channels() != src.channels() || self.scratch.frames() != src.frames() {
                self.scratch = AudioBuf::zeroed(src.channels(), src.frames());
            }
            self.scratch.copy_from(src);
            let gain = self.comp.process(&mut self.scratch);
            output.set_sample(0, 0, gain);
        }
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Master tempo tracker (depends on the clock).
pub struct TempoMasterNode {
    smoothed: f32,
    last_beat: f32,
    cost: CostModel,
}

impl TempoMasterNode {
    /// The master-tempo bookkeeping node.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        TempoMasterNode {
            smoothed: 0.0,
            last_beat: 0.0,
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for TempoMasterNode {
    fn process(&mut self, _inputs: &[&AudioBuf], output: &mut AudioBuf, ctx: &CycleCtx<'_>) {
        let beat = ctrl(ctx, controls::BEAT_CLOCK, 0.0);
        let delta = (beat - self.last_beat).max(0.0);
        self.last_beat = beat;
        // beats/cycle → BPM at the 344.53 Hz cycle rate.
        let bpm = delta * 60.0 * djstar_dsp::SAMPLE_RATE as f32 / djstar_dsp::BUFFER_FRAMES as f32;
        self.smoothed = if self.smoothed == 0.0 {
            bpm
        } else {
            0.98 * self.smoothed + 0.02 * bpm
        };
        output.clear();
        output.set_sample(0, 0, self.smoothed);
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Latency monitor: watches the output stage (trivial accounting).
pub struct LatencyMonNode {
    cycles: u64,
    cost: CostModel,
}

impl LatencyMonNode {
    /// The latency-monitor bookkeeping node.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        LatencyMonNode {
            cycles: 0,
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for LatencyMonNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        self.cycles += 1;
        output.clear();
        output.set_sample(0, 0, self.cycles as f32);
        if let Some(src) = inputs.first() {
            output.set_sample(0, 1.min(output.frames() - 1), src.peak());
        }
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

/// Stats collector: aggregates the three output paths (the graph's sink).
pub struct StatsCollectorNode {
    cost: CostModel,
}

impl StatsCollectorNode {
    /// The stats-aggregation sink node.
    pub fn new(profile: WorkProfile, seed: u32) -> Self {
        StatsCollectorNode {
            cost: CostModel::new(NodeClass::Bookkeeping, profile, seed),
        }
    }
}

impl Processor for StatsCollectorNode {
    fn process(&mut self, inputs: &[&AudioBuf], output: &mut AudioBuf, _ctx: &CycleCtx<'_>) {
        output.clear();
        for (k, src) in inputs.iter().enumerate() {
            if k < output.frames() {
                output.set_sample(0, k, src.rms());
            }
        }
        self.cost.apply(output);
    }

    fn output_channels(&self) -> usize {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn light() -> WorkProfile {
        WorkProfile::light()
    }

    fn ctx_with<'a>(audio: &'a [AudioBuf], ctrls: &'a [f32]) -> CycleCtx<'a> {
        CycleCtx {
            epoch: 1,
            external_audio: audio,
            controls: ctrls,
            counters: None,
        }
    }

    #[test]
    fn sp_filter_reads_external_deck() {
        let audio = vec![AudioBuf::from_fn(2, 128, |_, i| {
            ((i as f32) * 0.2).sin() * 0.5
        })];
        let mut node = SpFilterNode::new(0, 0, light(), 1);
        let mut out = AudioBuf::zeroed(2, 128);
        node.process(&[], &mut out, &ctx_with(&audio, &[]));
        assert!(out.is_finite());
        assert!(out.rms() > 0.0);
    }

    #[test]
    fn sp_filter_missing_deck_is_silent() {
        let mut node = SpFilterNode::new(2, 1, light(), 1);
        let mut out = AudioBuf::zeroed(2, 128);
        node.process(&[], &mut out, &ctx_with(&[], &[]));
        assert!(out.peak() < 1e-10);
    }

    #[test]
    fn disabled_effect_is_passthrough_shape() {
        let fx = djstar_dsp::effects::EffectKind::Overdrive.build(44_100);
        let mut node = EffectNode::new(fx, false, light(), 2);
        let input = AudioBuf::from_fn(2, 128, |_, i| (i as f32 * 0.1).sin() * 0.4);
        let mut out = AudioBuf::zeroed(2, 128);
        node.process(&[&input], &mut out, &ctx_with(&[], &[]));
        // Single input: no normalization, no effect; only the 1e-20 residue.
        for (a, b) in out.samples().iter().zip(input.samples()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn channel_node_applies_fader_control() {
        let mut node = ChannelNode::new(0, 0.0, [0.0; 3], light(), 3);
        let input = AudioBuf::from_fn(2, 128, |_, _| 0.5);
        let mut out = AudioBuf::zeroed(2, 128);
        let mut ctrls = vec![0.5, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        ctrls[controls::deck_gain(0)] = 0.0;
        node.process(&[&input], &mut out, &ctx_with(&[], &ctrls));
        assert!(out.peak() < 1e-10, "fader at zero must silence");
    }

    #[test]
    fn mixer_crossfader_kills_side_a_at_full_b() {
        let mut node = MixerNode::new(light(), 4);
        let a = AudioBuf::from_fn(2, 128, |_, _| 1.0);
        let silent = AudioBuf::zeroed(2, 128);
        let mut out = AudioBuf::zeroed(2, 128);
        let mut ctrls = vec![0.0; controls::COUNT];
        ctrls[controls::CROSSFADER] = 1.0; // full B
        node.process(
            &[&a, &silent, &silent, &silent, &silent],
            &mut out,
            &ctx_with(&[], &ctrls),
        );
        assert!(out.peak() < 1e-6, "A must be silent at crossfader=1");
        ctrls[controls::CROSSFADER] = 0.0; // full A
        node.process(
            &[&a, &silent, &silent, &silent, &silent],
            &mut out,
            &ctx_with(&[], &ctrls),
        );
        assert!(out.peak() > 0.9);
    }

    #[test]
    fn audio_out_never_exceeds_unity() {
        let mut node = AudioOutNode::new(light(), 5);
        let hot = AudioBuf::from_fn(2, 128, |_, _| 4.0);
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..10 {
            node.process(&[&hot], &mut out, &ctx_with(&[], &[]));
            assert!(out.peak() <= 1.0 + 1e-6);
        }
    }

    #[test]
    fn clock_tick_fires_on_integer_crossings() {
        let mut node = ClockTickNode::new(light(), 6);
        let mut out = AudioBuf::zeroed(1, 128);
        let mut ctrls = vec![0.0; controls::COUNT];
        // The cost model folds a ~1e-20 residue into sample 0, so compare
        // with a tolerance rather than exactly.
        ctrls[controls::BEAT_CLOCK] = 0.5;
        node.process(&[], &mut out, &ctx_with(&[], &ctrls));
        assert!(out.sample(0, 0).abs() < 1e-10);
        ctrls[controls::BEAT_CLOCK] = 1.1;
        node.process(&[], &mut out, &ctx_with(&[], &ctrls));
        assert!((out.sample(0, 0) - 1.0).abs() < 1e-6);
        ctrls[controls::BEAT_CLOCK] = 1.4;
        node.process(&[], &mut out, &ctx_with(&[], &ctrls));
        assert!(out.sample(0, 0).abs() < 1e-10);
    }

    #[test]
    fn sampler_plays_on_every_fourth_beat() {
        let mut node = SamplerNode::new(light(), 7);
        let mut trigger = AudioBuf::zeroed(1, 128);
        trigger.set_sample(0, 0, 1.0);
        let silent_clock = AudioBuf::zeroed(1, 128);
        let mut out = AudioBuf::zeroed(2, 128);
        // Beat 1: plays.
        node.process(&[&trigger], &mut out, &ctx_with(&[], &[]));
        assert!(out.peak() > 0.1);
        // Drain the one-shot.
        for _ in 0..40 {
            node.process(&[&silent_clock], &mut out, &ctx_with(&[], &[]));
        }
        // Beat 2: must NOT play.
        node.process(&[&trigger], &mut out, &ctx_with(&[], &[]));
        assert!(out.peak() < 1e-6);
    }

    #[test]
    fn cue_buffer_averages_enabled_channels() {
        let mut node = CueBufferNode::new([true, true, false, false], light(), 8);
        let one = AudioBuf::from_fn(2, 16, |_, _| 1.0);
        let three = AudioBuf::from_fn(2, 16, |_, _| 3.0);
        let ignored = AudioBuf::from_fn(2, 16, |_, _| 100.0);
        let mut out = AudioBuf::zeroed(2, 16);
        node.process(
            &[&one, &three, &ignored, &ignored],
            &mut out,
            &ctx_with(&[], &[]),
        );
        assert!((out.sample(0, 0) - 2.0).abs() < 1e-5);
    }

    #[test]
    fn spectrum_tap_reports_band_energy() {
        let mut node = SpectrumTapNode::new(light(), 9);
        let tone = AudioBuf::from_fn(2, 128, |_, i| {
            (core::f32::consts::TAU * 1000.0 * i as f32 / 44_100.0).sin()
        });
        let mut out = AudioBuf::zeroed(1, 128);
        node.process(&[&tone], &mut out, &ctx_with(&[], &[]));
        // Band 3 is 1 kHz; with only 128 samples the low bins suffer
        // leakage, so compare against the far-away 15 kHz band.
        assert!(
            out.sample(0, 3) > out.sample(0, 7) * 3.0,
            "1k {} vs 15k {}",
            out.sample(0, 3),
            out.sample(0, 7)
        );
    }

    #[test]
    fn stats_collector_reports_input_rms() {
        let mut node = StatsCollectorNode::new(light(), 10);
        let a = AudioBuf::from_fn(2, 16, |_, _| 0.5);
        let b = AudioBuf::zeroed(2, 16);
        let mut out = AudioBuf::zeroed(1, 16);
        node.process(&[&a, &b], &mut out, &ctx_with(&[], &[]));
        assert!((out.sample(0, 0) - 0.5).abs() < 1e-4);
        assert!(out.sample(0, 1).abs() < 1e-6);
    }

    #[test]
    fn cost_model_burns_more_for_loud_audio() {
        // Deterministic check via the exposed iteration count (a timing
        // comparison would be flaky on loaded CI boxes).
        let profile = WorkProfile::paper_scale();
        let cost = CostModel::new(NodeClass::Effect, profile, 0);
        let loud = AudioBuf::from_fn(2, 128, |_, _| 0.9);
        let medium = AudioBuf::from_fn(2, 128, |_, i| 0.25 * ((i as f32) * 0.3).sin());
        let quiet = AudioBuf::zeroed(2, 128);
        let (il, im, iq) = (
            cost.iters_for(&loud),
            cost.iters_for(&medium),
            cost.iters_for(&quiet),
        );
        assert!(
            il > im && im > iq,
            "iters loud {il}, medium {im}, quiet {iq}"
        );
        // dd = 0.9: the spread between silence and saturation is 0.55..1.45
        // of the base budget.
        let base = profile.fx_iters as f32;
        assert!((iq as f32 / base - 0.55).abs() < 0.01);
        assert!((il as f32 / base - 1.45).abs() < 0.01);
    }
}
