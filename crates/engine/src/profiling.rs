//! Scoped-timer hotspot profiling.
//!
//! §III-B of the paper used the Visual Studio profiler to find that 88 % of
//! DJ Star's run-time is the APC, split into preprocessing (33 %), graph
//! execution (38 %) and timecode decoding (16 %). This module is the
//! equivalent measurement harness for our engine: the APC driver brackets
//! each phase with [`HotspotProfiler::record`], and
//! [`HotspotProfiler::report`] produces the share table the
//! `hotspot_analysis` binary prints.

use djstar_dsp::kprof::{self, Family};
use djstar_stats::Json;
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Region name for a DSP kernel family, nested under the APC phase that
/// executes it: time stretching runs in the preprocessing phase, every
/// other family runs inside graph execution.
pub fn kernel_region(family: Family) -> &'static str {
    match family {
        Family::Biquad => "apc/graph/biquad",
        Family::Eq => "apc/graph/eq",
        Family::Mix => "apc/graph/mix",
        Family::Fft => "apc/graph/fft",
        Family::Stretch => "apc/preprocessing/stretch",
        Family::Dynamics => "apc/graph/dynamics",
    }
}

/// Drain the DSP crate's per-family kernel counters (see
/// `djstar_dsp::kprof`) into `profiler` under [`kernel_region`] names.
/// Families with no recorded time produce no row.
pub fn record_kernel_totals(profiler: &mut HotspotProfiler) {
    for (family, ns) in Family::ALL.into_iter().zip(kprof::take_totals()) {
        if ns > 0 {
            profiler.record(kernel_region(family), ns);
        }
    }
}

/// Aggregates wall-clock time per named region.
#[derive(Debug, Default, Clone)]
pub struct HotspotProfiler {
    totals: BTreeMap<&'static str, u64>,
}

/// One row of a hotspot report.
#[derive(Debug, Clone, PartialEq)]
pub struct HotspotRow {
    /// Region name.
    pub region: &'static str,
    /// Accumulated nanoseconds.
    pub total_ns: u64,
    /// Share of the report's grand total in `[0, 1]`.
    pub share: f64,
}

impl HotspotProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `ns` nanoseconds to `region`.
    pub fn record(&mut self, region: &'static str, ns: u64) {
        *self.totals.entry(region).or_insert(0) += ns;
    }

    /// Time `f` and record it under `region`; returns `f`'s result.
    pub fn time<R>(&mut self, region: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.record(region, t0.elapsed().as_nanos() as u64);
        r
    }

    /// Total recorded time.
    pub fn grand_total(&self) -> Duration {
        Duration::from_nanos(self.totals.values().sum())
    }

    /// Nanoseconds recorded for one region (0 if absent).
    pub fn total_of(&self, region: &str) -> u64 {
        self.totals.get(region).copied().unwrap_or(0)
    }

    /// Share of one region relative to the grand total.
    pub fn share_of(&self, region: &str) -> f64 {
        let total: u64 = self.totals.values().sum();
        if total == 0 {
            0.0
        } else {
            self.total_of(region) as f64 / total as f64
        }
    }

    /// All rows, largest share first.
    pub fn report(&self) -> Vec<HotspotRow> {
        let total: u64 = self.totals.values().sum::<u64>().max(1);
        let mut rows: Vec<HotspotRow> = self
            .totals
            .iter()
            .map(|(&region, &ns)| HotspotRow {
                region,
                total_ns: ns,
                share: ns as f64 / total as f64,
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.total_ns));
        rows
    }

    /// Reset all counters.
    pub fn clear(&mut self) {
        self.totals.clear();
    }

    /// Render the report through the same JSON writer the telemetry
    /// exporters use: a `regions` array of `{region, total_ns, share}`
    /// rows (largest first) plus the grand total.
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .report()
            .into_iter()
            .map(|r| {
                Json::object([
                    ("region", Json::from(r.region)),
                    ("total_ns", Json::from(r.total_ns)),
                    ("share", Json::from(r.share)),
                ])
            })
            .collect();
        Json::object([
            (
                "grand_total_ns",
                Json::from(self.grand_total().as_nanos() as u64),
            ),
            ("regions", Json::Array(rows)),
        ])
    }

    /// Render the report as a markdown table, largest share first.
    /// `annotate` supplies the right-hand commentary column per region
    /// (return `""` to leave a row blank).
    pub fn render_table(&self, annotate: impl Fn(&str) -> &'static str) -> String {
        use std::fmt::Write;
        let mut out = String::from("| region | total ms | share | paper |\n|---|---|---|---|\n");
        for row in self.report() {
            let _ = writeln!(
                out,
                "| {} | {:.1} | {:.1} % | {} |",
                row.region,
                row.total_ns as f64 / 1e6,
                row.share * 100.0,
                annotate(row.region)
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut p = HotspotProfiler::new();
        p.record("a", 100);
        p.record("a", 50);
        p.record("b", 50);
        assert_eq!(p.total_of("a"), 150);
        assert_eq!(p.total_of("b"), 50);
        assert!((p.share_of("a") - 0.75).abs() < 1e-12);
        assert_eq!(p.grand_total(), Duration::from_nanos(200));
    }

    #[test]
    fn report_sorted_descending() {
        let mut p = HotspotProfiler::new();
        p.record("small", 10);
        p.record("big", 1000);
        p.record("mid", 100);
        let rows = p.report();
        assert_eq!(rows[0].region, "big");
        assert_eq!(rows[2].region, "small");
        let share_sum: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn time_measures_closures() {
        let mut p = HotspotProfiler::new();
        let v = p.time("work", || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(p.total_of("work") >= 1_500_000, "{}", p.total_of("work"));
    }

    #[test]
    fn empty_profiler_is_benign() {
        let p = HotspotProfiler::new();
        assert_eq!(p.share_of("x"), 0.0);
        assert!(p.report().is_empty());
    }

    #[test]
    fn json_export_matches_report() {
        let mut p = HotspotProfiler::new();
        p.record("big", 300);
        p.record("small", 100);
        let j = p.to_json();
        assert_eq!(j.get("grand_total_ns").and_then(Json::as_u64), Some(400));
        let rows = j.get("regions").and_then(Json::items).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("region").and_then(Json::as_str), Some("big"));
        assert_eq!(rows[0].get("total_ns").and_then(Json::as_u64), Some(300));
        assert!((rows[0].get("share").and_then(Json::as_f64).unwrap() - 0.75).abs() < 1e-12);
        // The writer round-trips through the parser.
        let back = Json::parse(&j.render()).unwrap();
        assert_eq!(back.get("grand_total_ns").and_then(Json::as_u64), Some(400));
    }

    #[test]
    fn table_renders_markdown_rows() {
        let mut p = HotspotProfiler::new();
        p.record("x", 2_000_000);
        let t = p.render_table(|r| if r == "x" { "the hot one" } else { "" });
        assert!(t.starts_with("| region | total ms | share | paper |"));
        assert!(t.contains("| x | 2.0 | 100.0 % | the hot one |"), "{t}");
    }

    #[test]
    fn kernel_regions_nest_under_their_phase() {
        for family in Family::ALL {
            let region = kernel_region(family);
            let phase = if family == Family::Stretch {
                "apc/preprocessing/"
            } else {
                "apc/graph/"
            };
            assert!(region.starts_with(phase), "{region}");
            assert!(region.ends_with(family.label()), "{region}");
        }
    }

    #[test]
    fn clear_resets() {
        let mut p = HotspotProfiler::new();
        p.record("a", 5);
        p.clear();
        assert_eq!(p.total_of("a"), 0);
    }
}
