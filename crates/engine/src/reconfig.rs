//! Live graph reconfiguration: shape edits, off-thread staging, and the
//! glitch-free commit protocol.
//!
//! DJ Star's topology is not fixed at startup: the performer loads and
//! ejects decks and inserts or removes effect slots mid-set. Rebuilding
//! the executor for every such edit would tear down the worker pool and
//! miss deadlines, so reconfiguration is split into two halves:
//!
//! 1. **Stage** ([`stage_topology`], or
//!    [`AudioEngine::stage_edits`](crate::apc::AudioEngine::stage_edits)):
//!    build the new [`GraphShape`]'s task graph, allocate its buffers and
//!    (for the PLAN strategy) compile a schedule blueprint. This is the
//!    expensive part and runs on any thread — the audio thread never
//!    blocks on it.
//! 2. **Commit** ([`AudioEngine::commit`](crate::apc::AudioEngine::commit)):
//!    hand the staged generation to the running executor between two
//!    cycles. The executor's `adopt_generation` is a pointer-sized swap
//!    plus a name-keyed carry-over of processor state and output buffers,
//!    so surviving nodes (a playing deck, a ringing delay line) keep
//!    their state and the workers never restart.
//!
//! The only edit that cannot ride this path is
//! [`GraphEdit::ResizeThreads`]: worker counts are baked into each
//! executor's spawn-time state, so a resize rebuilds the executor (and
//! resets graph-node state). `AudioEngine::reconfigure` documents and
//! implements that split.

use crate::graphbuild::{build_shaped_graph, GraphShape, NodeMap};
use crate::modes::Unschedulable;
use djstar_core::exec::{BlueprintError, ScheduleBlueprint, StagedGeneration, Strategy, SwapError};
use djstar_workload::scenario::Scenario;
use std::fmt;

/// One live edit to the running graph topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphEdit {
    /// Load deck `d`: its 13-node section joins the graph.
    LoadDeck(usize),
    /// Eject deck `d`: its section leaves the graph.
    UnloadDeck(usize),
    /// Append an FX slot to deck `d`'s chain.
    InsertFxSlot(usize),
    /// Remove the last FX slot of deck `d`'s chain.
    RemoveFxSlot(usize),
    /// Change the executor's worker count. Not a shape edit: this one
    /// rebuilds the executor (documented teardown; see the module docs).
    ResizeThreads(usize),
    /// Attach deck `d` to its network stream: a `NetSrc` receiver joins
    /// the graph and feeds the deck's SP filterbank.
    ConnectRemoteDeck(usize),
    /// Detach deck `d` from the network (back to local audio).
    DisconnectRemoteDeck(usize),
    /// Retarget the jitter-buffer playout depth of remote deck `d` — the
    /// degradation governor's latency axis. The commit carries the
    /// receiver's state over by name; the engine then retunes the carried
    /// buffer, which converges one bounded step per cycle.
    SetNetDepth(usize, u32),
}

/// Why an edit cannot be applied to a shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditError {
    /// Deck index outside `0..4`.
    UnknownDeck(usize),
    /// Loading a deck that is already loaded.
    DeckAlreadyLoaded(usize),
    /// Editing or unloading a deck that is not loaded.
    DeckNotLoaded(usize),
    /// The FX chain is already at [`GraphShape::MAX_FX_SLOTS`].
    FxChainFull(usize),
    /// The FX chain is already at its single-slot minimum (the first slot
    /// sums the SP bands and cannot be removed).
    FxChainAtMinimum(usize),
    /// Worker count outside `1..=64`.
    BadThreadCount(usize),
    /// Connecting a deck that is already remote.
    DeckAlreadyRemote(usize),
    /// A network edit on a deck that is not remote.
    DeckNotRemote(usize),
    /// A playout depth of zero (the buffer needs at least one cycle).
    BadNetDepth(u32),
    /// `ResizeThreads` is valid but is not a shape edit — it needs the
    /// executor-rebuild path (`AudioEngine::reconfigure`).
    ResizeNeedsRebuild(usize),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownDeck(d) => write!(f, "unknown deck {d}"),
            EditError::DeckAlreadyLoaded(d) => write!(f, "deck {d} is already loaded"),
            EditError::DeckNotLoaded(d) => write!(f, "deck {d} is not loaded"),
            EditError::FxChainFull(d) => write!(
                f,
                "deck {d}'s FX chain is full ({} slots)",
                GraphShape::MAX_FX_SLOTS
            ),
            EditError::FxChainAtMinimum(d) => {
                write!(f, "deck {d}'s FX chain is at its 1-slot minimum")
            }
            EditError::BadThreadCount(n) => write!(f, "worker count {n} outside 1..=64"),
            EditError::DeckAlreadyRemote(d) => write!(f, "deck {d} is already remote"),
            EditError::DeckNotRemote(d) => write!(f, "deck {d} is not remote"),
            EditError::BadNetDepth(n) => write!(f, "playout depth {n} must be at least 1"),
            EditError::ResizeNeedsRebuild(n) => {
                write!(f, "resize to {n} workers requires an executor rebuild")
            }
        }
    }
}

impl std::error::Error for EditError {}

/// Why a reconfiguration failed. On error the running generation, shape
/// and node map are untouched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// An edit did not apply to the current shape.
    Edit(EditError),
    /// The executor refused the staged generation.
    Swap(SwapError),
    /// The PLAN blueprint for the target shape failed to compile. Staging
    /// surfaces this as a typed error (and the engine counts it in
    /// telemetry) instead of silently committing a planless generation
    /// that would fall back to a round-robin schedule.
    Blueprint(BlueprintError),
    /// The schedulability admission check proved the target shape cannot
    /// meet the margined deadline; nothing was staged.
    Unschedulable(Unschedulable),
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::Edit(e) => write!(f, "edit rejected: {e}"),
            ReconfigError::Swap(e) => write!(f, "swap rejected: {e}"),
            ReconfigError::Blueprint(e) => write!(f, "blueprint compilation failed: {e}"),
            ReconfigError::Unschedulable(u) => write!(f, "admission rejected: {u}"),
        }
    }
}

impl std::error::Error for ReconfigError {}

impl From<EditError> for ReconfigError {
    fn from(e: EditError) -> Self {
        ReconfigError::Edit(e)
    }
}

impl From<SwapError> for ReconfigError {
    fn from(e: SwapError) -> Self {
        ReconfigError::Swap(e)
    }
}

impl From<BlueprintError> for ReconfigError {
    fn from(e: BlueprintError) -> Self {
        ReconfigError::Blueprint(e)
    }
}

impl From<Unschedulable> for ReconfigError {
    fn from(u: Unschedulable) -> Self {
        ReconfigError::Unschedulable(u)
    }
}

/// Apply one topology edit to `shape`. [`GraphEdit::ResizeThreads`] is
/// rejected with [`EditError::ResizeNeedsRebuild`] (after validating the
/// count) — it is not expressible as a shape change.
pub fn apply_edit(shape: &mut GraphShape, edit: GraphEdit) -> Result<(), EditError> {
    let deck_ok = |d: usize| {
        if d < 4 {
            Ok(d)
        } else {
            Err(EditError::UnknownDeck(d))
        }
    };
    match edit {
        GraphEdit::LoadDeck(d) => {
            let d = deck_ok(d)?;
            if shape.deck_loaded[d] {
                return Err(EditError::DeckAlreadyLoaded(d));
            }
            shape.deck_loaded[d] = true;
        }
        GraphEdit::UnloadDeck(d) => {
            let d = deck_ok(d)?;
            if !shape.deck_loaded[d] {
                return Err(EditError::DeckNotLoaded(d));
            }
            shape.deck_loaded[d] = false;
        }
        GraphEdit::InsertFxSlot(d) => {
            let d = deck_ok(d)?;
            if !shape.deck_loaded[d] {
                return Err(EditError::DeckNotLoaded(d));
            }
            if shape.fx_slots[d] >= GraphShape::MAX_FX_SLOTS {
                return Err(EditError::FxChainFull(d));
            }
            shape.fx_slots[d] += 1;
        }
        GraphEdit::RemoveFxSlot(d) => {
            let d = deck_ok(d)?;
            if !shape.deck_loaded[d] {
                return Err(EditError::DeckNotLoaded(d));
            }
            if shape.fx_slots[d] <= 1 {
                return Err(EditError::FxChainAtMinimum(d));
            }
            shape.fx_slots[d] -= 1;
        }
        GraphEdit::ResizeThreads(n) => {
            if !(1..=64).contains(&n) {
                return Err(EditError::BadThreadCount(n));
            }
            return Err(EditError::ResizeNeedsRebuild(n));
        }
        GraphEdit::ConnectRemoteDeck(d) => {
            let d = deck_ok(d)?;
            if !shape.deck_loaded[d] {
                return Err(EditError::DeckNotLoaded(d));
            }
            if shape.remote_decks[d] {
                return Err(EditError::DeckAlreadyRemote(d));
            }
            shape.remote_decks[d] = true;
        }
        GraphEdit::DisconnectRemoteDeck(d) => {
            let d = deck_ok(d)?;
            if !shape.remote_decks[d] {
                return Err(EditError::DeckNotRemote(d));
            }
            shape.remote_decks[d] = false;
            shape.net_depth[d] = 0;
        }
        GraphEdit::SetNetDepth(d, depth) => {
            let d = deck_ok(d)?;
            if !shape.remote_decks[d] {
                return Err(EditError::DeckNotRemote(d));
            }
            if depth == 0 {
                return Err(EditError::BadNetDepth(depth));
            }
            shape.net_depth[d] = depth;
        }
    }
    Ok(())
}

/// A fully prepared topology generation: the staged core graph plus the
/// engine-level landmarks that must swap with it. Built off the audio
/// thread; committed by
/// [`AudioEngine::commit`](crate::apc::AudioEngine::commit).
pub struct StagedTopology {
    pub(crate) shape: GraphShape,
    pub(crate) map: NodeMap,
    pub(crate) staged: StagedGeneration,
}

impl StagedTopology {
    /// The shape this generation was built for.
    pub fn shape(&self) -> &GraphShape {
        &self.shape
    }

    /// Node count of the staged graph.
    pub fn node_count(&self) -> usize {
        self.staged.len()
    }

    /// Whether a PLAN blueprint was staged alongside the graph.
    pub fn has_plan(&self) -> bool {
        self.staged.has_plan()
    }

    /// The staged PLAN blueprint, when one was compiled. Differential
    /// tests use this to compare a cached generation against a freshly
    /// staged one slot by slot.
    pub fn blueprint(&self) -> Option<&ScheduleBlueprint> {
        self.staged.plan()
    }
}

/// Build a complete generation for `shape`: the shaped task graph, its
/// buffers, and — when `strategy` is PLAN — a schedule blueprint compiled
/// for `threads` workers (uniform node durations; callers with measured
/// durations can stage their own blueprint via the core API). This is the
/// expensive half of a reconfiguration and runs on any thread.
///
/// A blueprint that fails to compile is a typed
/// [`BlueprintError`] — never a silent fall-back to an unplanned
/// generation, which the PLAN executor would quietly round-robin.
pub fn stage_topology(
    scenario: &Scenario,
    shape: &GraphShape,
    strategy: Strategy,
    threads: usize,
    frames: usize,
) -> Result<StagedTopology, BlueprintError> {
    let (graph, map) = build_shaped_graph(scenario, shape);
    let staged = if strategy == Strategy::Planned {
        let topo = graph.topology();
        let sim = djstar_sim::SimGraph::from_topology(topo);
        let durations = djstar_sim::DurationModel::Constant(vec![1; topo.len()]);
        let schedule = djstar_sim::list_schedule(&sim, &durations, 0, threads as u32);
        let bp = djstar_sim::compile_blueprint(&sim, &schedule)?;
        StagedGeneration::with_plan(graph, frames, bp)
    } else {
        StagedGeneration::new(graph, frames)
    };
    Ok(StagedTopology {
        shape: *shape,
        map,
        staged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn staged_topology_is_send() {
        // Staging must be movable across threads: the whole point is to
        // build generations off the audio thread.
        fn assert_send<T: Send>() {}
        assert_send::<StagedTopology>();
    }

    #[test]
    fn edits_apply_and_validate() {
        let mut shape = GraphShape::paper_default();
        apply_edit(&mut shape, GraphEdit::UnloadDeck(3)).unwrap();
        assert!(!shape.deck_loaded[3]);
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::UnloadDeck(3)),
            Err(EditError::DeckNotLoaded(3))
        );
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::InsertFxSlot(3)),
            Err(EditError::DeckNotLoaded(3))
        );
        apply_edit(&mut shape, GraphEdit::LoadDeck(3)).unwrap();
        assert!(shape.deck_loaded[3]);
        for _ in 4..GraphShape::MAX_FX_SLOTS {
            apply_edit(&mut shape, GraphEdit::InsertFxSlot(0)).unwrap();
        }
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::InsertFxSlot(0)),
            Err(EditError::FxChainFull(0))
        );
        for _ in 1..GraphShape::MAX_FX_SLOTS {
            apply_edit(&mut shape, GraphEdit::RemoveFxSlot(0)).unwrap();
        }
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::RemoveFxSlot(0)),
            Err(EditError::FxChainAtMinimum(0))
        );
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::LoadDeck(7)),
            Err(EditError::UnknownDeck(7))
        );
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::ResizeThreads(0)),
            Err(EditError::BadThreadCount(0))
        );
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::ResizeThreads(4)),
            Err(EditError::ResizeNeedsRebuild(4))
        );
    }

    #[test]
    fn net_edits_apply_and_validate() {
        let mut shape = GraphShape::paper_default();
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::SetNetDepth(0, 4)),
            Err(EditError::DeckNotRemote(0))
        );
        apply_edit(&mut shape, GraphEdit::ConnectRemoteDeck(0)).unwrap();
        assert!(shape.remote_decks[0]);
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::ConnectRemoteDeck(0)),
            Err(EditError::DeckAlreadyRemote(0))
        );
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::SetNetDepth(0, 0)),
            Err(EditError::BadNetDepth(0))
        );
        apply_edit(&mut shape, GraphEdit::SetNetDepth(0, 6)).unwrap();
        assert_eq!(shape.net_depth[0], 6);
        apply_edit(&mut shape, GraphEdit::DisconnectRemoteDeck(0)).unwrap();
        assert!(!shape.remote_decks[0]);
        assert_eq!(shape.net_depth[0], 0);
        // An unloaded deck cannot stream.
        apply_edit(&mut shape, GraphEdit::UnloadDeck(2)).unwrap();
        assert_eq!(
            apply_edit(&mut shape, GraphEdit::ConnectRemoteDeck(2)),
            Err(EditError::DeckNotLoaded(2))
        );
    }

    #[test]
    fn stage_compiles_a_plan_only_for_planned() {
        use djstar_workload::scenario::Scenario;
        let scenario = Scenario::light_test();
        let shape = GraphShape::paper_default();
        let busy = stage_topology(&scenario, &shape, Strategy::Busy, 3, 16).unwrap();
        assert!(!busy.has_plan());
        assert!(busy.blueprint().is_none());
        assert_eq!(busy.node_count(), 67);
        let plan = stage_topology(&scenario, &shape, Strategy::Planned, 3, 16).unwrap();
        assert!(plan.has_plan());
        assert_eq!(plan.blueprint().map(|bp| bp.len()), Some(67));
    }
}
