//! Simulated sound card: the source of the real-time constraint.
//!
//! §III-A: "Audio streams are output at 44.1 kHz … If this timing condition
//! cannot be met and handing over the audio packet occurs too late, the
//! sound hardware is forced to either replay the last audio packet or to
//! output silence." With the standard 128-sample buffer the card requests a
//! packet every 2.9 ms.
//!
//! [`SoundCardSim`] accepts one buffer per cycle together with the time the
//! engine took to produce it, tracks deadline misses (= audible glitches),
//! and performs the hardware-side sanity checks (finite samples within
//! full-scale).

use djstar_dsp::buffer::AudioBuf;
use djstar_stats::DeadlineTracker;

/// What the card did with a submitted buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitResult {
    /// Delivered on time.
    Ok,
    /// Delivered late: the card already replayed the previous packet
    /// (audible glitch).
    Underrun,
    /// The samples were malformed (NaN/inf or beyond full scale); the card
    /// muted the packet. Indicates an engine bug, counted separately.
    Rejected,
}

/// The simulated audio interface.
#[derive(Debug)]
pub struct SoundCardSim {
    frames: usize,
    tracker: DeadlineTracker,
    rejected: u64,
    /// Peak level of everything ever submitted (for output verification).
    max_peak: f32,
}

impl SoundCardSim {
    /// A card requesting `frames`-sample packets at `sample_rate`.
    pub fn new(frames: usize, sample_rate: u32) -> Self {
        SoundCardSim {
            frames,
            tracker: DeadlineTracker::for_buffer(frames as u32, sample_rate),
            rejected: 0,
            max_peak: 0.0,
        }
    }

    /// The card of the paper's setup: 128 frames at 44.1 kHz.
    pub fn paper_default() -> Self {
        Self::new(djstar_dsp::BUFFER_FRAMES, djstar_dsp::SAMPLE_RATE)
    }

    /// Deadline per packet in nanoseconds (≈ 2.9 ms for the default).
    pub fn deadline_ns(&self) -> u64 {
        self.tracker.deadline_ns()
    }

    /// Submit one packet that took `elapsed_ns` to produce.
    pub fn submit(&mut self, buf: &AudioBuf, elapsed_ns: u64) -> SubmitResult {
        if buf.frames() != self.frames || !buf.is_finite() || buf.peak() > 1.0 + 1e-4 {
            self.rejected += 1;
            // A malformed packet is also a timing event for the tracker.
            self.tracker.record(elapsed_ns);
            return SubmitResult::Rejected;
        }
        self.max_peak = self.max_peak.max(buf.peak());
        if self.tracker.record(elapsed_ns) {
            SubmitResult::Ok
        } else {
            SubmitResult::Underrun
        }
    }

    /// Number of packets delivered late (glitches).
    pub fn underruns(&self) -> u64 {
        self.tracker.misses()
    }

    /// Number of malformed packets.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total packets submitted.
    pub fn packets(&self) -> u64 {
        self.tracker.cycles()
    }

    /// The deadline bookkeeping.
    pub fn tracker(&self) -> &DeadlineTracker {
        &self.tracker
    }

    /// Loudest sample ever accepted.
    pub fn max_peak(&self) -> f32 {
        self.max_peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_deadline_is_2_9_ms() {
        let c = SoundCardSim::paper_default();
        assert!((c.deadline_ns() as f64 / 1e6 - 2.9).abs() < 0.01);
    }

    #[test]
    fn on_time_packets_accepted() {
        let mut c = SoundCardSim::paper_default();
        let buf = AudioBuf::stereo_default();
        assert_eq!(c.submit(&buf, 1_000_000), SubmitResult::Ok);
        assert_eq!(c.underruns(), 0);
        assert_eq!(c.packets(), 1);
    }

    #[test]
    fn late_packets_are_underruns() {
        let mut c = SoundCardSim::paper_default();
        let buf = AudioBuf::stereo_default();
        assert_eq!(c.submit(&buf, 5_000_000), SubmitResult::Underrun);
        assert_eq!(c.underruns(), 1);
    }

    #[test]
    fn malformed_packets_rejected() {
        let mut c = SoundCardSim::paper_default();
        let mut bad = AudioBuf::stereo_default();
        bad.set_sample(0, 0, f32::NAN);
        assert_eq!(c.submit(&bad, 1000), SubmitResult::Rejected);
        let mut loud = AudioBuf::stereo_default();
        loud.set_sample(0, 0, 2.0);
        assert_eq!(c.submit(&loud, 1000), SubmitResult::Rejected);
        let wrong_size = AudioBuf::zeroed(2, 64);
        assert_eq!(c.submit(&wrong_size, 1000), SubmitResult::Rejected);
        assert_eq!(c.rejected(), 3);
    }

    #[test]
    fn tracks_peak() {
        let mut c = SoundCardSim::paper_default();
        let mut buf = AudioBuf::stereo_default();
        buf.set_sample(0, 5, 0.7);
        c.submit(&buf, 1000);
        assert!((c.max_peak() - 0.7).abs() < 1e-6);
    }
}
