//! Beat matching: tempo sync and phase alignment between decks.
//!
//! §II: DJs "mix multiple digital tracks … to a continuous stream of
//! music"; the GP phase computes per-deck beat phases precisely so the
//! software can assist beatmatching. This module implements the assistant:
//! given a master deck, [`SyncController`] computes the tempo factor a
//! slave deck needs to match BPM, plus a transient phase-correction nudge
//! that pulls the beats into alignment — the "SYNC" button of every DJ
//! application.

use crate::deck::TrackPlayer;

/// Output of one sync computation for a slave deck.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyncAdvice {
    /// Tempo factor the slave should run at so its effective BPM equals the
    /// master's.
    pub tempo: f32,
    /// Momentary tempo multiplier (≈1.0) applied on top to close the phase
    /// gap over the next beats; 1.0 once aligned.
    pub phase_correction: f32,
    /// Current phase error in beats, in `(-0.5, 0.5]`.
    pub phase_error: f32,
}

/// Computes sync advice and tracks convergence.
#[derive(Debug, Clone)]
pub struct SyncController {
    /// How aggressively the phase gap closes (fraction per beat, 0–1).
    aggressiveness: f32,
    /// |phase error| below which the decks count as locked (beats).
    lock_threshold: f32,
}

impl SyncController {
    /// A controller with the given phase-closing aggressiveness (clamped
    /// into `[0.01, 1.0]`).
    pub fn new(aggressiveness: f32) -> Self {
        SyncController {
            aggressiveness: aggressiveness.clamp(0.01, 1.0),
            lock_threshold: 0.04,
        }
    }

    /// DJ Star's default feel: close ~15 % of the gap per beat.
    pub fn standard() -> Self {
        Self::new(0.15)
    }

    /// Compute the advice for `slave` to match `master`.
    ///
    /// `master_bpm`/`slave_bpm` are the *track* BPMs; the players' current
    /// tempo factors and beat phases are read from the decks.
    pub fn advise(
        &self,
        master: &TrackPlayer,
        master_bpm: f32,
        slave: &TrackPlayer,
        slave_bpm: f32,
    ) -> SyncAdvice {
        // Tempo match: slave_bpm * tempo == master_bpm * master.tempo().
        let target_effective = master_bpm * master.tempo();
        let tempo = if slave_bpm > 1.0 {
            (target_effective / slave_bpm).clamp(0.25, 4.0)
        } else {
            1.0
        };
        let phase_error = slave.phase_offset_to(master);
        // Close `aggressiveness` of the gap per beat: a positive error
        // (slave ahead) means slowing down momentarily.
        let phase_correction = if phase_error.abs() <= self.lock_threshold {
            1.0
        } else {
            (1.0 - self.aggressiveness * phase_error).clamp(0.7, 1.3)
        };
        SyncAdvice {
            tempo,
            phase_correction,
            phase_error,
        }
    }

    /// True when the advice indicates beat lock.
    pub fn is_locked(&self, advice: &SyncAdvice) -> bool {
        advice.phase_error.abs() <= self.lock_threshold
    }
}

impl Default for SyncController {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use djstar_dsp::buffer::AudioBuf;
    use djstar_workload::track::{synth_track, TrackStyle};

    fn deck(bpm: f32, seed: u64) -> TrackPlayer {
        TrackPlayer::new(synth_track(seed, bpm, 4.0, TrackStyle::House))
    }

    #[test]
    fn tempo_advice_matches_bpm() {
        let mut master = deck(128.0, 1);
        let slave = deck(120.0, 2);
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..30 {
            master.pull(1.0, &mut out);
        }
        let sync = SyncController::standard();
        let advice = sync.advise(&master, 128.0, &slave, 120.0);
        // 120 * tempo ≈ 128 * master_tempo(≈1.0)
        let effective = 120.0 * advice.tempo;
        assert!(
            (effective - 128.0 * master.tempo()).abs() < 0.5,
            "effective {effective}"
        );
    }

    #[test]
    fn closed_loop_sync_converges_to_beat_lock() {
        let mut master = deck(126.0, 3);
        let mut slave = deck(132.0, 4);
        let sync = SyncController::standard();
        let mut out = AudioBuf::zeroed(2, 128);
        // Deliberately desynchronize.
        for _ in 0..57 {
            slave.pull(1.0, &mut out);
        }
        let mut locked_streak = 0;
        for _ in 0..3000 {
            master.pull(1.0, &mut out);
            let advice = sync.advise(&master, 126.0, &slave, 132.0);
            slave.pull(advice.tempo * advice.phase_correction, &mut out);
            if sync.is_locked(&advice) {
                locked_streak += 1;
                if locked_streak > 100 {
                    break;
                }
            } else {
                locked_streak = 0;
            }
        }
        assert!(
            locked_streak > 100,
            "never achieved stable beat lock; final error {}",
            sync.advise(&master, 126.0, &slave, 132.0).phase_error
        );
        // And the tempos matched: effective BPMs within 1 %.
        let m_eff = 126.0 * master.tempo();
        let s_eff = 132.0 * slave.tempo();
        assert!(
            (m_eff / s_eff - 1.0).abs() < 0.02,
            "BPM mismatch: {m_eff} vs {s_eff}"
        );
    }

    #[test]
    fn locked_decks_get_neutral_correction() {
        let master = deck(124.0, 5);
        let slave = deck(124.0, 6);
        // Fresh decks share phase 0 → already locked.
        let sync = SyncController::standard();
        let advice = sync.advise(&master, 124.0, &slave, 124.0);
        assert_eq!(advice.phase_correction, 1.0);
        assert!(sync.is_locked(&advice));
    }

    #[test]
    fn correction_is_bounded() {
        let mut master = deck(140.0, 7);
        let mut slave = deck(80.0, 8);
        let mut out = AudioBuf::zeroed(2, 128);
        for _ in 0..91 {
            slave.pull(1.3, &mut out);
        }
        master.pull(1.0, &mut out);
        let sync = SyncController::new(1.0); // maximum aggressiveness
        let advice = sync.advise(&master, 140.0, &slave, 80.0);
        assert!((0.7..=1.3).contains(&advice.phase_correction));
        assert!((0.25..=4.0).contains(&advice.tempo));
    }
}
