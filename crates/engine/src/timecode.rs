//! Timecode vinyl simulation: control-signal generation and decoding.
//!
//! DJs control DJ Star with real turntables spinning *timecode vinyl*: a
//! record carrying a control tone instead of music. The software decodes
//! the tone to recover platter speed and direction and steers playback
//! accordingly. "16 % [of the APC] is used for the timecode decoder which
//! interprets external control signals" (§III-B).
//!
//! We have no turntable hardware, so [`TimecodeGenerator`] synthesizes the
//! signal a platter at a given speed would produce — a 1 kHz quadrature
//! carrier (right channel 90° behind the left when spinning forward, 90°
//! ahead in reverse; frequency and amplitude scale with speed) — and
//! [`TimecodeDecoder`] recovers speed (zero-crossing rate), direction
//! (quadrature cross product) and position (integration) from buffers of
//! samples, exactly the per-cycle work the real decoder performs.
//!
//! Simplification vs. commercial DVS: real timecode additionally embeds an
//! absolute-position bitstream; we track position by dead reckoning only
//! (documented in DESIGN.md). The per-cycle compute shape — a few passes of
//! signal analysis per deck — is preserved.

use djstar_dsp::buffer::AudioBuf;

/// Carrier frequency at speed 1.0 (Hz).
pub const CARRIER_HZ: f32 = 1_000.0;

/// Synthesizes the control signal of a virtual turntable.
#[derive(Debug, Clone)]
pub struct TimecodeGenerator {
    phase: f32,
    sample_rate: f32,
}

impl TimecodeGenerator {
    /// A generator for the given sample rate.
    pub fn new(sample_rate: u32) -> Self {
        TimecodeGenerator {
            phase: 0.0,
            sample_rate: sample_rate as f32,
        }
    }

    /// Fill `out` (stereo) with the control signal of a platter spinning at
    /// `speed` (1.0 = nominal forward, negative = reverse, 0 = stopped).
    pub fn generate(&mut self, speed: f32, out: &mut AudioBuf) {
        assert_eq!(out.channels(), 2, "timecode is a stereo signal");
        let frames = out.frames();
        let amp = speed.abs().clamp(0.0, 2.0).sqrt().min(1.0);
        let dphi = CARRIER_HZ * speed / self.sample_rate;
        // Right channel lags 90° going forward, leads in reverse (because
        // the phase increment is negative, the same -90° offset flips its
        // temporal meaning — exactly like a physical quadrature pickup).
        let quad_off = -0.25f32;
        for i in 0..frames {
            let l = (core::f32::consts::TAU * self.phase).sin() * amp;
            let r = (core::f32::consts::TAU * (self.phase + quad_off)).sin() * amp;
            out.set_sample(0, i, l);
            out.set_sample(1, i, r);
            self.phase += dphi;
            self.phase -= self.phase.floor();
        }
    }
}

/// Output of one decode step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimecodeReading {
    /// Estimated platter speed (signed; 1.0 = nominal forward).
    pub speed: f32,
    /// Estimated signal amplitude (0 when the needle is lifted).
    pub amplitude: f32,
    /// Dead-reckoned position in carrier cycles since start.
    pub position: f64,
}

/// Decodes platter speed, direction and position from control-signal
/// buffers.
///
/// Analysis runs over a 512-sample sliding window spanning several buffers:
/// at slow platter speeds (carrier below ~350 Hz) a single 128-sample
/// buffer holds less than one carrier period, so buffer-local
/// zero-crossing counting would lose lock — exactly why hardware DVS
/// decoders track phase across callback boundaries.
#[derive(Debug, Clone)]
pub struct TimecodeDecoder {
    sample_rate: f32,
    position: f64,
    last_speed: f32,
    window_l: std::collections::VecDeque<f32>,
    window_r: std::collections::VecDeque<f32>,
}

/// Amplitude below which the signal is treated as silence (needle up).
const SILENCE_FLOOR: f32 = 1e-3;

/// Sliding analysis window (samples): 512 tracks speeds down to ~0.2.
const WINDOW: usize = 512;

impl TimecodeDecoder {
    /// A decoder for the given sample rate.
    pub fn new(sample_rate: u32) -> Self {
        TimecodeDecoder {
            sample_rate: sample_rate as f32,
            position: 0.0,
            last_speed: 0.0,
            window_l: std::collections::VecDeque::with_capacity(WINDOW),
            window_r: std::collections::VecDeque::with_capacity(WINDOW),
        }
    }

    /// Decode one buffer of control signal.
    pub fn decode(&mut self, buf: &AudioBuf) -> TimecodeReading {
        assert_eq!(buf.channels(), 2, "timecode is a stereo signal");
        let frames = buf.frames();
        // Slide the analysis window.
        for i in 0..frames {
            if self.window_l.len() == WINDOW {
                self.window_l.pop_front();
                self.window_r.pop_front();
            }
            self.window_l.push_back(buf.sample(0, i));
            self.window_r.push_back(buf.sample(1, i));
        }
        let amplitude = buf.peak();
        if amplitude < SILENCE_FLOOR {
            self.last_speed = 0.0;
            return TimecodeReading {
                speed: 0.0,
                amplitude,
                position: self.position,
            };
        }
        // In-place slices of the ring contents — the decode path must not
        // allocate (it runs inside the real-time APC every cycle).
        let l: &[f32] = self.window_l.make_contiguous();
        let r: &[f32] = self.window_r.make_contiguous();
        // |speed| from the zero-crossing rate of the left channel over the
        // window, refined by linear interpolation of the crossing instants.
        let mut crossings = 0u32;
        let mut first_cross = None;
        let mut last_cross = None;
        for i in 1..l.len() {
            let (a, b) = (l[i - 1], l[i]);
            if a <= 0.0 && b > 0.0 {
                let frac = if (b - a).abs() > 1e-12 {
                    -a / (b - a)
                } else {
                    0.0
                };
                let t = (i - 1) as f32 + frac;
                if first_cross.is_none() {
                    first_cross = Some(t);
                }
                last_cross = Some(t);
                crossings += 1;
            }
        }
        let freq = match (first_cross, last_cross) {
            (Some(f0), Some(f1)) if crossings >= 2 && f1 > f0 => {
                (crossings - 1) as f32 / (f1 - f0) * self.sample_rate
            }
            _ => {
                // Under half a carrier period even in the window: the
                // platter is nearly stopped; decay the previous estimate.
                CARRIER_HZ * self.last_speed.abs() * 0.9
            }
        };
        // Direction from the quadrature cross product
        // L[i]·R[i+1] − L[i+1]·R[i]: positive when R lags L (forward).
        let mut cross = 0.0f32;
        for i in 0..l.len() - 1 {
            cross += l[i] * r[i + 1] - l[i + 1] * r[i];
        }
        let dir = if cross >= 0.0 { 1.0 } else { -1.0 };
        let speed = dir * freq / CARRIER_HZ;
        self.last_speed = speed;
        // Dead-reckon the position in carrier cycles over this buffer.
        self.position += (freq * dir / self.sample_rate) as f64 * frames as f64;
        TimecodeReading {
            speed,
            amplitude,
            position: self.position,
        }
    }

    /// Current dead-reckoned position (carrier cycles).
    pub fn position(&self) -> f64 {
        self.position
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_steady(speed: f32, buffers: usize) -> TimecodeReading {
        let mut gen = TimecodeGenerator::new(44_100);
        let mut dec = TimecodeDecoder::new(44_100);
        let mut buf = AudioBuf::zeroed(2, 128);
        let mut last = TimecodeReading {
            speed: 0.0,
            amplitude: 0.0,
            position: 0.0,
        };
        for _ in 0..buffers {
            gen.generate(speed, &mut buf);
            last = dec.decode(&buf);
        }
        last
    }

    #[test]
    fn nominal_forward_speed_decoded() {
        let r = decode_steady(1.0, 20);
        assert!((r.speed - 1.0).abs() < 0.05, "speed {}", r.speed);
        assert!(r.amplitude > 0.5);
    }

    #[test]
    fn reverse_direction_decoded() {
        let r = decode_steady(-1.0, 20);
        assert!((r.speed + 1.0).abs() < 0.05, "speed {}", r.speed);
    }

    #[test]
    fn pitched_up_and_down_speeds() {
        for target in [0.5f32, 0.92, 1.08, 1.5] {
            let r = decode_steady(target, 30);
            assert!(
                (r.speed - target).abs() < 0.08 * target.max(1.0),
                "target {target}, decoded {}",
                r.speed
            );
        }
    }

    #[test]
    fn silence_reads_as_stopped() {
        let mut dec = TimecodeDecoder::new(44_100);
        let buf = AudioBuf::zeroed(2, 128);
        let r = dec.decode(&buf);
        assert_eq!(r.speed, 0.0);
        assert_eq!(r.amplitude, 0.0);
    }

    #[test]
    fn position_advances_forward_and_backward() {
        let fwd = decode_steady(1.0, 40);
        assert!(fwd.position > 0.0);
        let rev = decode_steady(-1.0, 40);
        assert!(rev.position < 0.0);
        // ~40 buffers * 128 samples at 1 kHz carrier / 44100 ≈ 116 cycles.
        assert!(
            (fwd.position - 116.0).abs() < 10.0,
            "position {}",
            fwd.position
        );
    }

    #[test]
    fn speed_changes_are_tracked() {
        let mut gen = TimecodeGenerator::new(44_100);
        let mut dec = TimecodeDecoder::new(44_100);
        let mut buf = AudioBuf::zeroed(2, 128);
        for _ in 0..10 {
            gen.generate(1.0, &mut buf);
            dec.decode(&buf);
        }
        // DJ pushes the platter faster.
        let mut last = 0.0;
        for _ in 0..10 {
            gen.generate(1.3, &mut buf);
            last = dec.decode(&buf).speed;
        }
        assert!((last - 1.3).abs() < 0.1, "speed {last}");
    }

    #[test]
    fn generator_output_is_quadrature() {
        let mut gen = TimecodeGenerator::new(44_100);
        let mut buf = AudioBuf::zeroed(2, 4096);
        gen.generate(1.0, &mut buf);
        // L and R should be ~uncorrelated at lag 0 (90° apart) and strongly
        // correlated at the quarter-period lag (~11 samples).
        let corr0: f32 = (0..4096).map(|i| buf.sample(0, i) * buf.sample(1, i)).sum();
        let lag = (44_100.0f32 / CARRIER_HZ / 4.0).round() as usize;
        let corr_lag: f32 = (0..4096 - lag)
            .map(|i| buf.sample(0, i) * buf.sample(1, i + lag))
            .sum();
        assert!(
            corr0.abs() < corr_lag.abs() * 0.2,
            "corr0 {corr0}, corr_lag {corr_lag}"
        );
    }
}
