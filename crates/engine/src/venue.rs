//! Venue server: many independent APC engines on one shared worker pool.
//!
//! A venue hosts N DJ sessions — each a full [`AudioEngine`] with its own
//! decks, timecode, control surface and task graph — against **one**
//! persistent [`VenuePool`]. Every sound-card period the server batches
//! the sessions' graph cycles onto the pool:
//!
//! 1. [`AudioEngine::venue_prepare`] for every session (driver-side TP/GP
//!    phases, then stage the graph cycle on the pool without waking
//!    anyone),
//! 2. one [`VenuePool::dispatch`] publishing the whole batch to the
//!    workers,
//! 3. [`VenuePool::run_driver_parts`] so the driver contributes lane 0,
//! 4. [`AudioEngine::venue_finish`] per session (collect the graph
//!    result — or run it inline for sequential sessions — then VC).
//!
//! **Admission control** keeps the venue schedulable: a candidate session
//! is probed on a throwaway sequential engine, its per-cycle cost is
//! bounded with the sim oracle ([`djstar_sim::session_bound_ns`] — list
//! schedule of its graph on the lanes it requests, plus the measured
//! floor of its non-graph phases), and the session is admitted only if
//! the summed bounds of all sessions fit the deadline with the configured
//! safety margin ([`djstar_sim::admissible`]). Rejections are counted and
//! reported; the E18 harness cross-checks every rejection against the
//! same oracle.
//!
//! **Per-session accounting**: each session carries its own cycle/miss
//! counters (verdict: that session's TP+GP+Graph+VC against the venue
//! deadline), its own degradation governor (armed through the engine),
//! and a session id stamped into every telemetry ring and flight window
//! it records — so a `MissDossier` built from a venue capture names the
//! offending session.

use crate::apc::DegradeOutcome;
use crate::apc::{ApcTiming, AudioEngine, AuxWork, VenueCyclePrep};
use djstar_core::exec::{Strategy, VenuePool};
use djstar_workload::scenario::Scenario;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cycles run on the throwaway probe engine when bounding a candidate.
const PROBE_CYCLES: usize = 12;

/// Everything the venue needs to know about a candidate session.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Workload (decks, tracks, net) the session will run.
    pub scenario: Scenario,
    /// Dispatch policy for the session's graph on the shared pool.
    pub strategy: Strategy,
    /// Pool lanes the session wants (1..=pool lanes).
    pub threads: usize,
    /// Non-graph phase weights.
    pub aux: AuxWork,
}

/// Why a session was turned away, with the numbers that decided it.
#[derive(Debug, Clone, Copy)]
pub struct AdmissionRejection {
    /// The candidate's probed per-cycle bound (ns).
    pub bound_ns: u64,
    /// Summed bounds of the sessions already admitted (ns).
    pub load_ns: u64,
    /// The venue's per-cycle budget: deadline × (1 − margin), in ns.
    pub budget_ns: u64,
}

/// Per-session counters surfaced to telemetry export and reports.
#[derive(Debug, Clone, Copy)]
pub struct SessionCounters {
    /// Venue session id (1-based; 0 means "solo engine").
    pub id: u32,
    /// Cycles this session has run in the venue.
    pub cycles: u64,
    /// Cycles whose TP+GP+Graph+VC exceeded the venue deadline.
    pub misses: u64,
    /// Is the session currently running in shed (degraded) mode?
    pub degraded: bool,
    /// The admission-time per-cycle bound (ns).
    pub bound_ns: u64,
}

struct VenueSession {
    id: u32,
    engine: AudioEngine,
    bound_ns: u64,
    cycles: u64,
    misses: u64,
    last: ApcTiming,
}

/// A multi-session host: one worker pool, N engines, per-session
/// deadlines, admission control.
pub struct VenueServer {
    pool: Arc<VenuePool>,
    sessions: Vec<VenueSession>,
    /// Scratch for in-flight cycle preps, kept allocated between cycles
    /// so the steady-state batch loop performs zero allocations.
    preps: Vec<Option<VenueCyclePrep>>,
    deadline_ns: u64,
    margin: f64,
    rejections: u64,
    next_id: u32,
}

impl VenueServer {
    /// A venue with `threads` pool lanes (driver + threads−1 workers), a
    /// per-cycle deadline and an admission safety margin in `[0, 1)`.
    pub fn new(threads: usize, deadline: Duration, margin: f64) -> Self {
        VenueServer {
            pool: Arc::new(VenuePool::new(threads)),
            sessions: Vec::new(),
            preps: Vec::new(),
            deadline_ns: deadline.as_nanos() as u64,
            margin,
            rejections: 0,
            next_id: 1,
        }
    }

    /// The shared pool (e.g. to build extra engines on it directly).
    pub fn pool(&self) -> &Arc<VenuePool> {
        &self.pool
    }

    /// The venue deadline in nanoseconds.
    pub fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// The admission safety margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// The per-cycle budget admission tests against (ns).
    pub fn budget_ns(&self) -> u64 {
        djstar_sim::cycle_budget_ns(self.deadline_ns, self.margin)
    }

    /// Summed admission bounds of the current session set (ns).
    pub fn load_ns(&self) -> u64 {
        self.sessions
            .iter()
            .fold(0u64, |a, s| a.saturating_add(s.bound_ns))
    }

    /// Sessions turned away so far.
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    /// Number of admitted sessions.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Ids of the admitted sessions, in admission order.
    pub fn session_ids(&self) -> Vec<u32> {
        self.sessions.iter().map(|s| s.id).collect()
    }

    /// Probe a candidate on a throwaway sequential engine and bound its
    /// per-cycle cost on `spec.threads` pool lanes with the sim oracle:
    /// list-schedule makespan of its measured graph plus the median of
    /// its measured non-graph phases.
    pub fn probe_session_bound(spec: &SessionSpec) -> u64 {
        let mut probe =
            AudioEngine::with_aux(spec.scenario.clone(), Strategy::Sequential, 1, spec.aux);
        probe.warmup(4);
        let samples = probe.measured_node_durations(PROBE_CYCLES);
        let means: Vec<u64> = samples
            .iter()
            .map(|s| {
                if s.is_empty() {
                    1
                } else {
                    (s.iter().sum::<u64>() / s.len() as u64).max(1)
                }
            })
            .collect();
        let mut aux: Vec<u64> = (0..PROBE_CYCLES)
            .map(|_| {
                let t = probe.run_apc();
                (t.tp + t.gp + t.vc).as_nanos() as u64
            })
            .collect();
        aux.sort_unstable();
        let aux_floor = aux[aux.len() / 2];
        let graph = djstar_sim::SimGraph::from_topology(probe.executor_mut().topology());
        let durations = djstar_sim::DurationModel::Constant(means);
        djstar_sim::session_bound_ns(&graph, &durations, spec.threads as u32, aux_floor)
    }

    /// Admit `spec` if the venue stays schedulable with it, building its
    /// engine on the shared pool and tagging it with a fresh session id.
    /// Otherwise count and return the rejection.
    pub fn admit(&mut self, spec: SessionSpec) -> Result<u32, AdmissionRejection> {
        let bound = Self::probe_session_bound(&spec);
        self.admit_bounded(spec, bound)
    }

    /// [`admit`](Self::admit) with a caller-supplied bound (skips the
    /// probe — for harnesses that already measured the workload).
    pub fn admit_bounded(
        &mut self,
        spec: SessionSpec,
        bound_ns: u64,
    ) -> Result<u32, AdmissionRejection> {
        assert!(
            spec.threads >= 1 && spec.threads <= self.pool.threads(),
            "session wants {} lanes but the pool has {}",
            spec.threads,
            self.pool.threads()
        );
        let mut bounds: Vec<u64> = self.sessions.iter().map(|s| s.bound_ns).collect();
        bounds.push(bound_ns);
        if !djstar_sim::admissible(&bounds, self.deadline_ns, self.margin) {
            self.rejections += 1;
            return Err(AdmissionRejection {
                bound_ns,
                load_ns: self.load_ns(),
                budget_ns: self.budget_ns(),
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let mut engine = AudioEngine::on_pool(
            spec.scenario,
            spec.strategy,
            spec.threads,
            spec.aux,
            &self.pool,
        );
        engine.set_session(id);
        self.sessions.push(VenueSession {
            id,
            engine,
            bound_ns,
            cycles: 0,
            misses: 0,
            last: ApcTiming::default(),
        });
        self.preps.push(None);
        Ok(id)
    }

    /// Tear a session down (its engine drops, unregistering from the
    /// pool). Returns false if `id` is unknown.
    pub fn remove(&mut self, id: u32) -> bool {
        match self.sessions.iter().position(|s| s.id == id) {
            Some(i) => {
                self.sessions.remove(i);
                self.preps.pop();
                true
            }
            None => false,
        }
    }

    fn find(&self, id: u32) -> Option<&VenueSession> {
        self.sessions.iter().find(|s| s.id == id)
    }

    /// Borrow a session's engine (e.g. to install faults or telemetry).
    pub fn engine_mut(&mut self, id: u32) -> Option<&mut AudioEngine> {
        self.sessions
            .iter_mut()
            .find(|s| s.id == id)
            .map(|s| &mut s.engine)
    }

    /// A session's admission-time bound (ns).
    pub fn bound_ns(&self, id: u32) -> Option<u64> {
        self.find(id).map(|s| s.bound_ns)
    }

    /// A session's deadline misses so far.
    pub fn misses(&self, id: u32) -> Option<u64> {
        self.find(id).map(|s| s.misses)
    }

    /// A session's cycles run so far.
    pub fn cycles(&self, id: u32) -> Option<u64> {
        self.find(id).map(|s| s.cycles)
    }

    /// A session's most recent cycle timing.
    pub fn last_timing(&self, id: u32) -> Option<ApcTiming> {
        self.find(id).map(|s| s.last)
    }

    /// Counter snapshot for every admitted session, in admission order.
    pub fn session_counters(&self) -> Vec<SessionCounters> {
        self.sessions
            .iter()
            .map(|s| SessionCounters {
                id: s.id,
                cycles: s.cycles,
                misses: s.misses,
                degraded: s.engine.is_degraded(),
                bound_ns: s.bound_ns,
            })
            .collect()
    }

    /// Run one batched cycle across every session and return the batch
    /// wall time. Per session: cycle/miss counters update against the
    /// venue deadline and, if its degradation governor is armed, the
    /// verdict feeds it (shed/restore commits ride the engine's
    /// glitch-free swap path). Steady-state calls perform no heap
    /// allocation.
    pub fn run_cycle(&mut self) -> Duration {
        let t0 = Instant::now();
        if self.sessions.is_empty() {
            return t0.elapsed();
        }
        for (i, s) in self.sessions.iter_mut().enumerate() {
            self.preps[i] = Some(s.engine.venue_prepare());
        }
        self.pool.dispatch();
        self.pool.run_driver_parts();
        for (i, s) in self.sessions.iter_mut().enumerate() {
            let prep = self.preps[i].take().expect("prep staged above");
            let t = s.engine.venue_finish(prep);
            s.cycles += 1;
            s.last = t;
            let missed = t.total().as_nanos() as u64 > self.deadline_ns;
            if missed {
                s.misses += 1;
            }
            let _: Option<DegradeOutcome> = s.engine.observe_deadline(missed);
        }
        t0.elapsed()
    }

    /// Run `n` batched cycles (warm-up, steady-state measurement).
    pub fn run_cycles(&mut self, n: usize) {
        for _ in 0..n {
            self.run_cycle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use djstar_workload::scenario::Scenario;

    fn spec(strategy: Strategy, threads: usize) -> SessionSpec {
        SessionSpec {
            scenario: Scenario::light_test(),
            strategy,
            threads,
            aux: AuxWork::light(),
        }
    }

    #[test]
    fn venue_runs_mixed_strategies_bitexact_with_solo() {
        let mut venue = VenueServer::new(3, Duration::from_secs(1), 0.0);
        let a = venue
            .admit_bounded(spec(Strategy::Busy, 3), 1)
            .expect("admit a");
        let b = venue
            .admit_bounded(spec(Strategy::Steal, 2), 1)
            .expect("admit b");
        let c = venue
            .admit_bounded(spec(Strategy::Sequential, 1), 1)
            .expect("admit c");
        venue.run_cycles(20);

        let mut solo = AudioEngine::with_aux(
            Scenario::light_test(),
            Strategy::Sequential,
            1,
            AuxWork::light(),
        );
        solo.warmup(20);
        let want = solo.output();
        for id in [a, b, c] {
            assert_eq!(venue.cycles(id), Some(20));
            let got = venue.engine_mut(id).unwrap().output();
            assert_eq!(got.channel(0), want.channel(0), "session {id} diverged");
            assert_eq!(got.channel(1), want.channel(1), "session {id} diverged");
        }
    }

    #[test]
    fn admission_rejects_when_bounds_overflow_the_budget() {
        let mut venue = VenueServer::new(2, Duration::from_micros(100), 0.1);
        // Budget is 90 µs; two 40 µs sessions fit, a third does not.
        venue
            .admit_bounded(spec(Strategy::Busy, 2), 40_000)
            .expect("first fits");
        venue
            .admit_bounded(spec(Strategy::Busy, 2), 40_000)
            .expect("second fits");
        let err = venue
            .admit_bounded(spec(Strategy::Busy, 2), 40_000)
            .expect_err("third must be rejected");
        assert_eq!(err.load_ns, 80_000);
        assert_eq!(err.budget_ns, 90_000);
        assert_eq!(venue.rejections(), 1);
        assert_eq!(venue.session_count(), 2);
        // The oracle agrees the rejection was necessary.
        assert!(!djstar_sim::admissible(
            &[40_000, 40_000, 40_000],
            100_000,
            0.1
        ));
    }

    #[test]
    fn probed_admission_fills_then_rejects() {
        let mut venue = VenueServer::new(2, Duration::from_secs(2), 0.0);
        let s = spec(Strategy::Sleep, 2);
        let bound = VenueServer::probe_session_bound(&s);
        assert!(bound > 0);
        let fit = djstar_sim::max_sessions(bound, venue.deadline_ns(), venue.margin());
        assert!(fit >= 1, "a light session must fit a 2 s deadline");
        venue.admit(s).expect("probed admit");
        assert_eq!(venue.session_count(), 1);
    }

    #[test]
    fn remove_frees_budget() {
        let mut venue = VenueServer::new(2, Duration::from_micros(100), 0.0);
        let id = venue
            .admit_bounded(spec(Strategy::Busy, 2), 90_000)
            .expect("fits");
        assert!(venue
            .admit_bounded(spec(Strategy::Busy, 2), 90_000)
            .is_err());
        assert!(venue.remove(id));
        venue
            .admit_bounded(spec(Strategy::Busy, 2), 90_000)
            .expect("fits after removal");
    }
}
