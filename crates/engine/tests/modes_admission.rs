//! Admission–oracle agreement: every accept/reject `stage_edits` makes
//! with schedulability admission armed must agree with the simulator's
//! [`djstar_sim::admissible`] verdict computed independently from the
//! same cost model — over a generated shape family, at a mixed-verdict
//! pivot budget, and on boundary shapes whose list-schedule bound
//! straddles the budget by exactly one nanosecond.
//!
//! A uniform cost model keeps every bound a pure function of the shape,
//! so the battery is fully deterministic across hosts.

use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::modes::{AdmissionControl, NodeCostModel};
use djstar_engine::reconfig::{apply_edit, GraphEdit, ReconfigError};
use djstar_engine::{build_shaped_graph, GraphShape};
use djstar_workload::scenario::Scenario;
use djstar_workload::{shape_walk, SwitchAction};

const THREADS: usize = 4;
const COST_NS: u64 = 1_000;

fn to_edit(action: SwitchAction) -> GraphEdit {
    match action {
        SwitchAction::LoadDeck(d) => GraphEdit::LoadDeck(d),
        SwitchAction::UnloadDeck(d) => GraphEdit::UnloadDeck(d),
        SwitchAction::InsertFxSlot(d) => GraphEdit::InsertFxSlot(d),
        SwitchAction::RemoveFxSlot(d) => GraphEdit::RemoveFxSlot(d),
    }
}

/// Distinct shapes visited by a 40-step walk, plus hand-picked extremes
/// the walk cannot reach (remote deck, saturated FX).
fn shape_family() -> Vec<GraphShape> {
    let mut family = vec![GraphShape::paper_default()];
    let mut cur = GraphShape::paper_default();
    for e in shape_walk(40, 1, 0xADA1).events() {
        apply_edit(&mut cur, to_edit(e.action)).expect("walk edits are valid");
        if !family.contains(&cur) {
            family.push(cur);
        }
    }
    let mut heavy = GraphShape::paper_default();
    heavy.fx_slots = [GraphShape::MAX_FX_SLOTS; 4];
    let mut remote = GraphShape::paper_default();
    remote.remote_decks[2] = true;
    remote.net_depth[2] = 4;
    for extra in [heavy, remote] {
        if !family.contains(&extra) {
            family.push(extra);
        }
    }
    family
}

/// The edit script that morphs `from` into `to`, validated step by step.
fn edits_to(from: &GraphShape, to: &GraphShape) -> Vec<GraphEdit> {
    let mut cur = *from;
    let mut edits = Vec::new();
    let push = |cur: &mut GraphShape, edits: &mut Vec<GraphEdit>, e: GraphEdit| {
        apply_edit(cur, e).expect("shape diffs only produce valid edits");
        edits.push(e);
    };
    for d in 0..4 {
        if cur.deck_loaded[d] && cur.remote_decks[d] && (!to.deck_loaded[d] || !to.remote_decks[d])
        {
            push(&mut cur, &mut edits, GraphEdit::DisconnectRemoteDeck(d));
        }
        match (cur.deck_loaded[d], to.deck_loaded[d]) {
            (true, false) => {
                push(&mut cur, &mut edits, GraphEdit::UnloadDeck(d));
                continue;
            }
            (false, true) => push(&mut cur, &mut edits, GraphEdit::LoadDeck(d)),
            _ => {}
        }
        if !to.deck_loaded[d] {
            continue;
        }
        while cur.fx_slots[d] < to.fx_slots[d] {
            push(&mut cur, &mut edits, GraphEdit::InsertFxSlot(d));
        }
        while cur.fx_slots[d] > to.fx_slots[d] {
            push(&mut cur, &mut edits, GraphEdit::RemoveFxSlot(d));
        }
        if !cur.remote_decks[d] && to.remote_decks[d] {
            push(&mut cur, &mut edits, GraphEdit::ConnectRemoteDeck(d));
        }
        if to.remote_decks[d] && to.net_depth[d] > 0 && cur.net_depth[d] != to.net_depth[d] {
            push(
                &mut cur,
                &mut edits,
                GraphEdit::SetNetDepth(d, to.net_depth[d]),
            );
        }
    }
    edits
}

/// Oracle bound: the same sim primitives, invoked without going through
/// [`AdmissionControl`] (the PR 9 venue-oracle pattern).
fn oracle_bound_ns(scenario: &Scenario, shape: &GraphShape, costs: &NodeCostModel) -> u64 {
    let (graph, _) = build_shaped_graph(scenario, shape);
    let topo = graph.topology();
    let sim = djstar_sim::SimGraph::from_topology(topo);
    let durations = djstar_sim::DurationModel::Constant(costs.durations_for(topo));
    djstar_sim::session_bound_ns(&sim, &durations, THREADS as u32, 0)
}

/// Engine verdict for one `(deadline, margin, target)` trial: arm
/// admission, stage the diff script, drop the staged generation (accept)
/// without committing. Returns the full staging result so callers can
/// inspect the typed rejection.
fn engine_verdict(
    engine: &mut AudioEngine,
    costs: &NodeCostModel,
    deadline_ns: u64,
    margin: f64,
    target: &GraphShape,
) -> Result<(), ReconfigError> {
    engine.enable_admission(AdmissionControl::new(
        deadline_ns,
        margin,
        THREADS,
        costs.clone(),
    ));
    let edits = edits_to(engine.shape(), target);
    let verdict = engine.stage_edits(&edits).map(drop);
    engine.disable_admission();
    verdict
}

#[test]
fn stage_edits_agrees_with_sim_oracle_over_shape_family() {
    let scenario = Scenario::light_test();
    let costs = NodeCostModel::uniform(COST_NS);
    let mut engine = AudioEngine::with_aux(scenario.clone(), Strategy::Busy, 2, AuxWork::light());
    let family = shape_family();
    assert!(family.len() >= 8, "walk produced too few distinct shapes");

    let bounds: Vec<u64> = family
        .iter()
        .map(|s| oracle_bound_ns(&scenario, s, &costs))
        .collect();
    // Pivot budget at the median bound, zero margin: roughly half the
    // family must be accepted and half rejected, so agreement cannot be
    // proven vacuously by an always-accept or always-reject controller.
    let mut sorted = bounds.clone();
    sorted.sort_unstable();
    let pivot = sorted[sorted.len() / 2];

    let (mut accepts, mut rejects) = (0usize, 0usize);
    let start_shape = *engine.shape();
    for (shape, &bound) in family.iter().zip(&bounds) {
        let oracle = djstar_sim::admissible(&[bound], pivot, 0.0);
        match engine_verdict(&mut engine, &costs, pivot, 0.0, shape) {
            Ok(()) => {
                assert!(
                    oracle,
                    "engine accepted a shape the oracle rejects (bound {bound})"
                );
                accepts += 1;
            }
            Err(ReconfigError::Unschedulable(u)) => {
                assert!(
                    !oracle,
                    "engine rejected a shape the oracle admits (bound {bound})"
                );
                assert_eq!(u.bound_ns, bound, "rejection must carry the oracle's bound");
                assert_eq!(
                    u.budget_ns, pivot,
                    "zero-margin budget is the deadline itself"
                );
                rejects += 1;
            }
            Err(e) => panic!("admission produced a non-admission error: {e}"),
        }
        assert_eq!(
            engine.shape(),
            &start_shape,
            "a dropped or rejected staging must never move the live shape"
        );
    }
    assert!(
        accepts >= 1 && rejects >= 1,
        "pivot sweep was vacuous: {accepts} accepts, {rejects} rejects"
    );
}

#[test]
fn boundary_budgets_flip_the_verdict_by_one_nanosecond() {
    let scenario = Scenario::light_test();
    let costs = NodeCostModel::uniform(COST_NS);
    let mut engine =
        AudioEngine::with_aux(scenario.clone(), Strategy::Sequential, 1, AuxWork::light());
    for shape in shape_family().into_iter().take(4) {
        let bound = oracle_bound_ns(&scenario, &shape, &costs);
        // Budget exactly at the bound: schedulable by definition.
        assert!(djstar_sim::admissible(&[bound], bound, 0.0));
        assert!(
            engine_verdict(&mut engine, &costs, bound, 0.0, &shape).is_ok(),
            "bound {bound}: engine must accept a budget equal to the bound"
        );
        // One nanosecond under: provably unschedulable, and the typed
        // rejection must say by exactly how much.
        assert!(!djstar_sim::admissible(&[bound], bound - 1, 0.0));
        match engine_verdict(&mut engine, &costs, bound - 1, 0.0, &shape) {
            Err(ReconfigError::Unschedulable(u)) => {
                assert_eq!((u.bound_ns, u.budget_ns), (bound, bound - 1));
                assert_eq!(u.node_count, shape.node_count());
            }
            other => panic!(
                "budget {}: expected Unschedulable, got {other:?}",
                bound - 1
            ),
        }
    }
}

#[test]
fn margin_shrinks_the_budget_like_the_oracle_says() {
    // With a 10% margin the budget is 90% of the deadline; a bound that
    // fits the deadline but not the margined budget must be rejected by
    // both the engine and the oracle.
    let scenario = Scenario::light_test();
    let costs = NodeCostModel::uniform(COST_NS);
    let mut engine =
        AudioEngine::with_aux(scenario.clone(), Strategy::Sequential, 1, AuxWork::light());
    let shape = GraphShape::paper_default();
    let bound = oracle_bound_ns(&scenario, &shape, &costs);
    // Deadline chosen so bound <= deadline but bound > 0.9 * deadline.
    let deadline = bound + bound / 20;
    assert!(djstar_sim::admissible(&[bound], deadline, 0.0));
    assert!(!djstar_sim::admissible(&[bound], deadline, 0.1));
    assert!(engine_verdict(&mut engine, &costs, deadline, 0.0, &shape).is_ok());
    match engine_verdict(&mut engine, &costs, deadline, 0.1, &shape) {
        Err(ReconfigError::Unschedulable(u)) => {
            assert_eq!(u.budget_ns, djstar_sim::cycle_budget_ns(deadline, 0.1));
        }
        other => panic!("margined trial should reject, got {other:?}"),
    }
}
