//! Proof that a mode storm served from a warm blueprint cache allocates
//! nothing on the audio thread.
//!
//! A counting `#[global_allocator]` wraps the system allocator. The
//! measured window per switch is exactly what runs on (or blocks) the
//! audio path: the warm `stage_edits` hit (a take-once `swap_remove`
//! from the cache), the cycle-boundary commit (name-keyed carry-over
//! resolves through the index built at staging time), and the following
//! audio cycles. The neighborhood precompile — the background stager's
//! job, never the audio thread's — runs between windows and may
//! allocate freely.
//!
//! Own integration binary for the same reason as `net_alloc.rs`: a
//! global allocator is process-wide and sibling tests would pollute the
//! measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::reconfig::GraphEdit;
use djstar_workload::scenario::Scenario;

const SWITCHES: usize = 10;
const CYCLES_PER_SWITCH: usize = 4;

/// One warm storm pass: per switch, precompile the neighborhood
/// (uncounted, between windows), then measure the hit + commit + cycles
/// window. Returns total allocations observed inside the windows.
fn warm_storm(engine: &mut AudioEngine) -> u64 {
    let mut hot = 0u64;
    for i in 0..SWITCHES {
        // Background-stager stand-in: refill the one-edit neighborhood of
        // the current shape so the next switch is a guaranteed warm hit.
        engine.precompile_neighborhood();
        let edit = if i % 2 == 0 {
            GraphEdit::InsertFxSlot(2)
        } else {
            GraphEdit::RemoveFxSlot(2)
        };
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        let staged = engine.stage_edits(&[edit]).expect("warm stage");
        engine.commit(staged).expect("commit");
        for _ in 0..CYCLES_PER_SWITCH {
            engine.run_apc();
        }
        hot += ALLOCATIONS.load(Ordering::SeqCst) - before;
    }
    hot
}

#[test]
fn warm_cache_storm_does_not_allocate_on_the_audio_thread() {
    let mut engine =
        AudioEngine::with_aux(Scenario::light_test(), Strategy::Busy, 2, AuxWork::light());
    engine.warmup(20);
    // Pre-grow the engine's commit ledger past what two measured passes
    // will push (33 commits doubles its capacity to 64), so a `Vec`
    // growth never lands inside a window.
    for i in 0..33 {
        let edit = if i % 2 == 0 {
            GraphEdit::InsertFxSlot(3)
        } else {
            GraphEdit::RemoveFxSlot(3)
        };
        let staged = engine.stage_edits(&[edit]).expect("cold stage");
        engine.commit(staged).expect("cold commit");
        engine.run_apc();
    }
    engine.enable_mode_cache(16);
    // Measure one storm; a genuine hot-path allocation repeats every
    // pass, so re-measuring once filters the rare one-shot lazy
    // initialization std performs without weakening the claim.
    let mut hot = warm_storm(&mut engine);
    if hot > 0 {
        hot = warm_storm(&mut engine);
    }
    assert_eq!(
        hot, 0,
        "warm storm allocated {hot} times inside the audio windows"
    );
    // The zero-alloc claim is about the *hit* path — prove the storm
    // really was served from cache, not from fresh compiles.
    let stats = engine.mode_cache().expect("cache armed").stats();
    assert!(
        stats.hits >= SWITCHES as u64,
        "storm was not served from cache: {stats:?}"
    );
    assert_eq!(stats.misses, 0, "a warm storm must never miss: {stats:?}");
}
