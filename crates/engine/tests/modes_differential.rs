//! Differential battery for the mode-aware blueprint cache (the test
//! counterpart of E19): replaying one seeded shape walk, an engine that
//! serves every switch from a warm [`BlueprintCache`] must stay
//! bit-identical to an engine compiling every blueprint fresh — across
//! all six strategies and 1/2/4 worker threads — and a cache that only
//! ever misses must be indistinguishable from having no cache at all.
//!
//! The two engines run in lockstep: each switch is staged on both, the
//! staged shapes (and, for PLAN, the compiled blueprints) are compared
//! before either commits, and every cycle's master output is folded
//! into per-engine FNV checksums that must agree at the end.

use djstar_core::exec::Strategy;
use djstar_dsp::AudioBuf;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::reconfig::GraphEdit;
use djstar_engine::NodeCostModel;
use djstar_workload::scenario::Scenario;
use djstar_workload::{shape_walk, SwitchAction};

const SWITCHES: usize = 12;
const PERIOD: usize = 6;
const SEED: u64 = 0x00D1_FF19;

fn edit_for(action: SwitchAction) -> GraphEdit {
    match action {
        SwitchAction::LoadDeck(d) => GraphEdit::LoadDeck(d),
        SwitchAction::UnloadDeck(d) => GraphEdit::UnloadDeck(d),
        SwitchAction::InsertFxSlot(d) => GraphEdit::InsertFxSlot(d),
        SwitchAction::RemoveFxSlot(d) => GraphEdit::RemoveFxSlot(d),
    }
}

fn fold_checksum(mut acc: u64, buf: &AudioBuf) -> u64 {
    for &s in buf.samples() {
        acc = (acc ^ s.to_bits() as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

fn engine(strategy: Strategy, threads: usize) -> AudioEngine {
    AudioEngine::with_aux(Scenario::light_test(), strategy, threads, AuxWork::light())
}

/// Replay the walk on a cached and a fresh engine in lockstep and return
/// `(cached_checksum, fresh_checksum, hits, misses)`. `precompile`
/// selects the warm protocol (neighborhood precompiled before the storm
/// and after every commit) versus the always-miss protocol.
fn lockstep(strategy: Strategy, threads: usize, precompile: bool) -> (u64, u64, u64, u64) {
    let script = shape_walk(SWITCHES, PERIOD, SEED);
    let mut cached = engine(strategy, threads);
    let mut fresh = engine(strategy, threads);
    cached.warmup(10);
    fresh.warmup(10);
    cached.enable_mode_cache(32);
    if precompile {
        cached.precompile_neighborhood();
    }
    let total = script.last_cycle() + PERIOD;
    let mut acc_c = 0xcbf2_9ce4_8422_2325u64;
    let mut acc_f = acc_c;
    let mut next = 0usize;
    for cycle in 0..total {
        while next < script.len() && script.events()[next].at_cycle == cycle {
            let edit = edit_for(script.events()[next].action);
            let staged_c = cached.stage_edits(&[edit]).expect("cached stage");
            let staged_f = fresh.stage_edits(&[edit]).expect("fresh stage");
            assert_eq!(
                staged_c.shape(),
                staged_f.shape(),
                "{strategy:?}/{threads}: staged shapes diverged at cycle {cycle}"
            );
            if strategy == Strategy::Planned {
                assert_eq!(
                    staged_c.blueprint(),
                    staged_f.blueprint(),
                    "{strategy:?}/{threads}: cached blueprint differs from a \
                     fresh compile at cycle {cycle}"
                );
            }
            cached.commit(staged_c).expect("cached commit");
            fresh.commit(staged_f).expect("fresh commit");
            if precompile {
                cached.precompile_neighborhood();
            }
            next += 1;
        }
        cached.run_apc();
        fresh.run_apc();
        acc_c = fold_checksum(acc_c, &cached.output());
        acc_f = fold_checksum(acc_f, &fresh.output());
    }
    let stats = cached.mode_cache().expect("cache enabled").stats();
    (acc_c, acc_f, stats.hits, stats.misses)
}

#[test]
fn warm_cache_is_bit_exact_across_strategies_and_threads() {
    for strategy in Strategy::ALL {
        let threads: &[usize] = if strategy == Strategy::Sequential {
            &[1]
        } else {
            &[1, 2, 4]
        };
        for &t in threads {
            let (acc_c, acc_f, hits, misses) = lockstep(strategy, t, true);
            assert_eq!(
                acc_c, acc_f,
                "{strategy:?}/{t}: warm-cache audio diverged from fresh compiles"
            );
            // Every switch moves one edit from the precompiled
            // neighborhood, so the warm protocol never misses.
            assert_eq!(
                (hits, misses),
                (SWITCHES as u64, 0),
                "{strategy:?}/{t}: warm protocol should hit on every switch"
            );
        }
    }
}

#[test]
fn long_walk_keeps_latent_shape_fields_straight() {
    // A 100-switch walk revisits canonically-equal shapes that disagree
    // on latent don't-care fields (the FX count of an unloaded deck).
    // The per-switch shape assertions inside `lockstep` catch any hit
    // that resurrects a donor's latent fields — the bug class that only
    // appears once the walk unloads a deck, reshapes elsewhere, and
    // reloads it (first seen around switch 46 of this seed).
    let script = shape_walk(100, 3, SEED);
    let mut cached = engine(Strategy::Busy, 2);
    let mut fresh = engine(Strategy::Busy, 2);
    cached.warmup(10);
    fresh.warmup(10);
    cached.enable_mode_cache(32);
    cached.precompile_neighborhood();
    let mut acc_c = 0xcbf2_9ce4_8422_2325u64;
    let mut acc_f = acc_c;
    let mut next = 0usize;
    for cycle in 0..script.last_cycle() + 3 {
        while next < script.len() && script.events()[next].at_cycle == cycle {
            let edit = edit_for(script.events()[next].action);
            let staged_c = cached.stage_edits(&[edit]).expect("cached stage");
            let staged_f = fresh.stage_edits(&[edit]).expect("fresh stage");
            assert_eq!(
                staged_c.shape(),
                staged_f.shape(),
                "latent shape fields diverged at switch {next}"
            );
            cached.commit(staged_c).expect("cached commit");
            fresh.commit(staged_f).expect("fresh commit");
            cached.precompile_neighborhood();
            next += 1;
        }
        cached.run_apc();
        fresh.run_apc();
        acc_c = fold_checksum(acc_c, &cached.output());
        acc_f = fold_checksum(acc_f, &fresh.output());
    }
    assert_eq!(acc_c, acc_f, "long-walk audio diverged");
    assert_eq!(cached.mode_cache().unwrap().stats().misses, 0);
}

#[test]
fn cold_cache_misses_are_identical_to_no_cache() {
    // Cache armed but never precompiled: every take is a miss and the
    // engine falls through to a fresh compile — the audio (and the
    // staged shapes checked inside `lockstep`) must be unchanged.
    let (acc_c, acc_f, hits, misses) = lockstep(Strategy::Busy, 2, false);
    assert_eq!(acc_c, acc_f, "miss path diverged from the uncached engine");
    assert_eq!(hits, 0, "nothing was precompiled, so nothing may hit");
    assert_eq!(misses, SWITCHES as u64, "every switch should miss");
}

#[test]
fn recalibration_invalidates_midwalk_without_audible_effect() {
    // Swap the admission cost model halfway through the walk: the cache
    // epoch bumps, precompiled generations for the old calibration are
    // voided, and the audio must still match the fresh engine exactly.
    let script = shape_walk(SWITCHES, PERIOD, SEED);
    let mut cached = engine(Strategy::Steal, 2);
    let mut fresh = engine(Strategy::Steal, 2);
    cached.warmup(10);
    fresh.warmup(10);
    cached.enable_mode_cache(32);
    cached.precompile_neighborhood();
    let total = script.last_cycle() + PERIOD;
    let mut acc_c = 0xcbf2_9ce4_8422_2325u64;
    let mut acc_f = acc_c;
    let mut next = 0usize;
    let mut epoch_before = 0;
    let mut epoch_after = 0;
    for cycle in 0..total {
        while next < script.len() && script.events()[next].at_cycle == cycle {
            if next == SWITCHES / 2 {
                epoch_before = cached.mode_cache().unwrap().epoch();
                cached.recalibrate_admission(NodeCostModel::uniform(1_000));
                epoch_after = cached.mode_cache().unwrap().epoch();
                assert!(cached.mode_cache().unwrap().is_empty());
            }
            let edit = edit_for(script.events()[next].action);
            let staged_c = cached.stage_edits(&[edit]).expect("cached stage");
            let staged_f = fresh.stage_edits(&[edit]).expect("fresh stage");
            assert_eq!(staged_c.shape(), staged_f.shape());
            cached.commit(staged_c).expect("cached commit");
            fresh.commit(staged_f).expect("fresh commit");
            cached.precompile_neighborhood();
            next += 1;
        }
        cached.run_apc();
        fresh.run_apc();
        acc_c = fold_checksum(acc_c, &cached.output());
        acc_f = fold_checksum(acc_f, &fresh.output());
    }
    assert!(
        epoch_after > epoch_before,
        "recalibration must bump the epoch"
    );
    assert_eq!(acc_c, acc_f, "post-invalidation audio diverged");
    let stats = cached.mode_cache().unwrap().stats();
    assert!(stats.invalidations >= 1);
    assert!(
        stats.hits + stats.misses == SWITCHES as u64,
        "every switch takes exactly one cache lookup"
    );
}
