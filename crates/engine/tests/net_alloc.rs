//! Proof that the networked hot path allocates nothing.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after
//! warm-up, executor cycles on a networked graph — remote deck sources
//! draining their jitter buffers plus the broadcast sink fanning out to
//! listeners — must not allocate: the trace is stateless arithmetic,
//! the ring slots are preallocated, and concealment writes in place.
//!
//! This lives in its own integration test binary because a global
//! allocator is process-wide and the default harness is multi-threaded;
//! a sibling test's allocations would pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_workload::scenario::Scenario;
use djstar_workload::NetSpec;

#[test]
fn networked_cycles_do_not_allocate() {
    // Two remote decks, listeners on the sink, all fault classes firing:
    // the worst case the fault plan can throw at the buffers.
    let mut net = NetSpec::bursty(0xA110C);
    net.adapt = true; // watermark adaptation shares the hot path
    let mut scenario = Scenario::light_test();
    scenario.net = net;
    for (strategy, threads) in [
        (Strategy::Sequential, 1usize),
        (Strategy::Steal, 3),
        (Strategy::Planned, 3),
    ] {
        let mut engine =
            AudioEngine::with_aux(scenario.clone(), strategy, threads, AuxWork::light());
        engine.warmup(30);
        let exec = engine.executor_mut();
        // Count allocations across a 50-cycle window. A genuine hot-path
        // allocation repeats every window, so re-measuring once filters
        // the rare one-shot lazy initialization std performs without
        // weakening the per-cycle claim.
        let mut measure = || {
            let before = ALLOCATIONS.load(Ordering::SeqCst);
            for _ in 0..50 {
                exec.run_cycle(&[], &[]);
            }
            ALLOCATIONS.load(Ordering::SeqCst) - before
        };
        let mut allocs = measure();
        if allocs > 0 {
            allocs = measure();
        }
        assert_eq!(
            allocs, 0,
            "{strategy:?}/{threads}: networked cycles allocated {allocs} times"
        );
        let stats = engine.net_stats();
        assert!(
            stats.received > 0,
            "{strategy:?}: no packets flowed, the claim is vacuous"
        );
    }
}
