//! Differential determinism on the networked graph: one fixed trace
//! seed must produce bit-identical audio and identical packet
//! accounting across all six strategies and 1/2/4 worker threads. The
//! network model is cycle-synchronous (arrivals are a pure function of
//! `(seed, cycle, stream)`), so nothing about scheduling — work
//! stealing, sleep wakeups, plan order — may leak into the signal.

use djstar_core::exec::Strategy;
use djstar_dsp::AudioBuf;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_workload::scenario::Scenario;
use djstar_workload::NetSpec;

const CYCLES: usize = 120;

fn net_scenario() -> Scenario {
    let mut net = NetSpec::bursty(0xD1FF);
    net.adapt = false;
    net.start_depth = 3;
    let mut s = Scenario::light_test();
    s.net = net;
    s
}

fn fold_checksum(mut acc: u64, buf: &AudioBuf) -> u64 {
    for &s in buf.samples() {
        acc = (acc ^ s.to_bits() as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// Run one engine for [`CYCLES`] cycles and fold every cycle's master
/// output into an FNV checksum (not just the final frame — a transient
/// divergence that later reconverges must still be caught).
fn run(strategy: Strategy, threads: usize) -> (u64, djstar_core::net::NetStats) {
    let mut engine = AudioEngine::with_aux(net_scenario(), strategy, threads, AuxWork::light());
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for _ in 0..CYCLES {
        engine.run_apc();
        acc = fold_checksum(acc, &engine.output());
    }
    (acc, engine.net_stats())
}

#[test]
fn fixed_trace_seed_is_bit_exact_across_strategies_and_threads() {
    let (want_sum, want_stats) = run(Strategy::Sequential, 1);
    assert!(want_stats.received > 0, "trace delivered nothing");
    assert!(
        want_stats.concealed > 0,
        "trace never bit: the determinism claim would be vacuous"
    );
    for strategy in Strategy::ALL {
        let threads: &[usize] = if strategy == Strategy::Sequential {
            &[1]
        } else {
            &[1, 2, 4]
        };
        for &t in threads {
            let (sum, stats) = run(strategy, t);
            assert_eq!(
                sum, want_sum,
                "{strategy:?}/{t} audio diverged from the sequential reference"
            );
            assert_eq!(
                stats, want_stats,
                "{strategy:?}/{t} packet accounting diverged"
            );
        }
    }
}
