//! Property-style tests for the engine substrate: timecode decode accuracy
//! over arbitrary speeds, deck playback invariants, and event-queue laws.
//! Cases come from a seeded [`SmallRng`] so every run is identical (the
//! workspace builds offline, without proptest).

use djstar_dsp::buffer::AudioBuf;
use djstar_dsp::rng::SmallRng;
use djstar_engine::deck::TrackPlayer;
use djstar_engine::events::{ControlEvent, EventQueue};
use djstar_engine::timecode::{TimecodeDecoder, TimecodeGenerator};
use djstar_workload::track::{synth_track, TrackStyle};

fn rand_in(rng: &mut SmallRng, lo: f32, hi: f32) -> f32 {
    lo + rng.f32() * (hi - lo)
}

/// The decoder recovers any steady platter speed in the DVS range
/// within 8 %, including direction.
#[test]
fn timecode_round_trip_over_speed_range() {
    let mut rng = SmallRng::seed_from_u64(0x7C0D);
    for _ in 0..32 {
        let speed_mag = rand_in(&mut rng, 0.3, 2.0);
        let speed = if rng.chance(0.5) {
            speed_mag
        } else {
            -speed_mag
        };
        let mut generator = TimecodeGenerator::new(44_100);
        let mut decoder = TimecodeDecoder::new(44_100);
        let mut buf = AudioBuf::zeroed(2, 128);
        let mut last = 0.0;
        for _ in 0..30 {
            generator.generate(speed, &mut buf);
            last = decoder.decode(&buf).speed;
        }
        assert!(
            (last - speed).abs() < 0.08 * speed_mag.max(1.0),
            "speed {speed}, decoded {last}"
        );
    }
}

/// Deck playback is finite and bounded for any tempo in range, and the
/// source position never moves backwards under forward playback.
#[test]
fn deck_pull_invariants() {
    let mut rng = SmallRng::seed_from_u64(0xDEC4);
    for _ in 0..12 {
        let tempo = rand_in(&mut rng, 0.3, 3.5);
        let seed = 1 + rng.range_u64(0, 49);
        let mut player = TrackPlayer::new(synth_track(seed, 125.0, 3.0, TrackStyle::House));
        let mut out = AudioBuf::stereo_default();
        let mut last_pos = 0.0f64;
        let len = player.track().samples().len() as f64;
        for _ in 0..60 {
            player.pull(tempo, &mut out);
            assert!(out.is_finite());
            assert!(out.peak() <= 1.3, "peak {}", out.peak());
            let pos = player.position();
            // Forward playback: position advances except at the loop wrap.
            assert!(
                pos >= last_pos || pos < len * 0.5,
                "position moved backwards: {last_pos} -> {pos}"
            );
            last_pos = pos;
        }
    }
}

/// Vinyl mode at any speed (including reverse) keeps the position
/// inside the track and the audio finite.
#[test]
fn vinyl_pull_invariants() {
    let mut rng = SmallRng::seed_from_u64(0x1141);
    for _ in 0..12 {
        let speed = rand_in(&mut rng, -3.0, 3.0);
        let seed = 1 + rng.range_u64(0, 29);
        let mut player = TrackPlayer::new(synth_track(seed, 130.0, 2.0, TrackStyle::Breakbeat));
        let len = player.track().samples().len() as f64;
        player.seek(len / 2.0);
        let mut out = AudioBuf::stereo_default();
        for _ in 0..50 {
            player.pull_vinyl(speed, &mut out);
            assert!(out.is_finite());
            let pos = player.position();
            assert!((0.0..=len).contains(&pos), "pos {pos} outside track");
        }
    }
}

/// Coalesced draining never loses the *final* value of any continuous
/// control, never reorders toggles, and never grows the event count.
#[test]
fn event_queue_coalescing_laws() {
    let mut rng = SmallRng::seed_from_u64(0xE0E7);
    for _ in 0..32 {
        let values: Vec<f32> = (0..1 + rng.below(39)).map(|_| rng.f32()).collect();
        let mut q = EventQueue::standard();
        for (i, &v) in values.iter().enumerate() {
            q.push(i as u64, ControlEvent::Crossfader(v));
            if i % 3 == 0 {
                q.push(i as u64, ControlEvent::FxToggle(0, 0, i % 2 == 0));
            }
        }
        let n_before = q.len();
        let drained = q.drain_coalesced();
        assert!(drained.len() <= n_before);
        // The last crossfader value survives.
        let last_xfade = drained
            .iter()
            .rev()
            .find_map(|e| match e.event {
                ControlEvent::Crossfader(v) => Some(v),
                _ => None,
            })
            .expect("crossfader event present");
        assert_eq!(last_xfade, *values.last().unwrap());
        // Toggle count preserved exactly.
        let toggles_expected = values
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .count();
        let toggles = drained
            .iter()
            .filter(|e| matches!(e.event, ControlEvent::FxToggle(..)))
            .count();
        assert_eq!(toggles, toggles_expected);
    }
}

/// Loop regions confine playback for arbitrary loop placements.
#[test]
fn arbitrary_loops_confine_position() {
    let mut rng = SmallRng::seed_from_u64(0x100B);
    let track = synth_track(7, 128.0, 2.0, TrackStyle::House);
    let mut checked = 0;
    while checked < 16 {
        let start_frac = rng.f64() * 0.8;
        let len_frac = 0.01 + rng.f64() * 0.19;
        let mut player = TrackPlayer::new(track.clone());
        let track_len = player.track().samples().len() as f64;
        let start = start_frac * track_len;
        let end = (start + len_frac * track_len).min(track_len);
        if end - start < 4_096.0 {
            continue; // not enough room for the stretcher
        }
        checked += 1;
        assert!(player.set_loop(start, end));
        player.seek(start);
        let mut out = AudioBuf::stereo_default();
        for _ in 0..120 {
            player.pull(1.0, &mut out);
            let pos = player.position();
            assert!(
                pos >= start - 1.0 && pos <= end + 4_096.0,
                "pos {pos} escaped loop [{start}, {end})"
            );
        }
    }
}
