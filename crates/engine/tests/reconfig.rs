//! Live-reconfiguration integration tests: every strategy adopts staged
//! topology generations glitch-free, audio stays bit-identical across
//! strategies under the same edit script, and the event middleware's
//! topology requests round-trip into graph edits.

use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::events::{ControlEvent, EventQueue};
use djstar_engine::reconfig::GraphEdit;
use djstar_engine::GraphShape;
use djstar_workload::scenario::Scenario;

fn light_engine(strategy: Strategy, threads: usize) -> AudioEngine {
    AudioEngine::with_aux(Scenario::light_test(), strategy, threads, AuxWork::light())
}

/// The edit script every test below replays: eject deck D, deepen deck A's
/// FX chain, bring deck D back, trim deck A again.
const SCRIPT: [(usize, &[GraphEdit]); 4] = [
    (10, &[GraphEdit::UnloadDeck(3)]),
    (
        20,
        &[GraphEdit::InsertFxSlot(0), GraphEdit::InsertFxSlot(0)],
    ),
    (30, &[GraphEdit::LoadDeck(3)]),
    (40, &[GraphEdit::RemoveFxSlot(0)]),
];

fn run_script(engine: &mut AudioEngine, cycles: usize) -> Vec<Vec<f32>> {
    let mut outputs = Vec::new();
    let mut script = SCRIPT.iter().peekable();
    for cycle in 0..cycles {
        if let Some(&&(at, edits)) = script.peek() {
            if cycle == at {
                engine.reconfigure(edits).expect("script edit applies");
                script.next();
            }
        }
        engine.run_apc();
        outputs.push(engine.output().samples().to_vec());
    }
    outputs
}

#[test]
fn all_strategies_swap_generations_without_diverging() {
    let mut reference = light_engine(Strategy::Sequential, 1);
    let want = run_script(&mut reference, 50);
    assert_eq!(reference.executor_mut().generation(), 4);
    for strategy in [
        Strategy::Busy,
        Strategy::Sleep,
        Strategy::Steal,
        Strategy::Hybrid,
        Strategy::Planned,
    ] {
        let mut engine = light_engine(strategy, 3);
        let got = run_script(&mut engine, 50);
        for (cycle, (w, g)) in want.iter().zip(&got).enumerate() {
            assert_eq!(
                w, g,
                "{strategy:?} diverged from sequential at cycle {cycle}"
            );
        }
        assert_eq!(engine.executor_mut().generation(), 4);
    }
}

#[test]
fn reconfigure_updates_shape_and_node_map() {
    let mut engine = light_engine(Strategy::Steal, 2);
    engine.warmup(5);
    assert_eq!(engine.shape().node_count(), 67);
    engine.reconfigure(&[GraphEdit::UnloadDeck(2)]).unwrap();
    assert!(!engine.shape().deck_loaded[2]);
    assert_eq!(engine.shape().node_count(), 67 - 13);
    assert!(engine.node_map().deck(2).is_none());
    assert!(engine.node_map().deck(0).is_some());
    engine
        .reconfigure(&[GraphEdit::LoadDeck(2), GraphEdit::InsertFxSlot(2)])
        .unwrap();
    assert_eq!(engine.shape().fx_slots[2], 5);
    assert_eq!(engine.shape().node_count(), 67 + 1);
    assert!(engine.node_map().fx(2, 4).is_some());
    engine.warmup(5);
    assert!(engine.output().is_finite());
}

#[test]
fn staging_runs_off_the_audio_thread() {
    use djstar_engine::reconfig::{apply_edit, stage_topology};
    let mut engine = light_engine(Strategy::Busy, 2);
    engine.warmup(10);
    // Stage on another thread while the "audio thread" keeps cycling:
    // staging needs only copies of the scenario and shape, and the
    // resulting StagedTopology is Send, so a real host builds it on a
    // worker and hands it back for the cycle-boundary commit.
    let scenario = engine.scenario().clone();
    let shape = *engine.shape();
    let strategy = engine.strategy();
    let threads = engine.threads();
    let stager = std::thread::spawn(move || {
        let mut shape = shape;
        apply_edit(&mut shape, GraphEdit::UnloadDeck(3)).unwrap();
        apply_edit(&mut shape, GraphEdit::InsertFxSlot(1)).unwrap();
        stage_topology(
            &scenario,
            &shape,
            strategy,
            threads,
            djstar_dsp::BUFFER_FRAMES,
        )
    });
    engine.warmup(5); // audio keeps flowing while the stager works
    let staged = stager.join().expect("staging thread").expect("staging");
    assert_eq!(staged.node_count(), 67 - 13 + 1);
    let generation = engine.commit(staged).expect("commit");
    assert_eq!(generation, 1);
    engine.warmup(10);
    assert!(engine.output().is_finite());
    assert_eq!(engine.shape().fx_slots[1], 5);
}

#[test]
fn carried_deck_state_survives_a_swap() {
    // A playing deck's audible output must continue seamlessly across an
    // unrelated topology edit: compare against an engine that never swaps.
    let mut plain = light_engine(Strategy::Sequential, 1);
    let mut swapped = light_engine(Strategy::Sequential, 1);
    plain.warmup(25);
    swapped.warmup(25);
    // Deck D carries no audible responsibility for deck A's channel.
    swapped.reconfigure(&[GraphEdit::UnloadDeck(3)]).unwrap();
    for _ in 0..10 {
        plain.run_apc();
        swapped.run_apc();
        let a = plain.node_map().channel(0).unwrap();
        let b = swapped.node_map().channel(0).unwrap();
        let mut buf_a = djstar_dsp::buffer::AudioBuf::stereo_default();
        let mut buf_b = djstar_dsp::buffer::AudioBuf::stereo_default();
        plain.executor_mut().read_output(a, &mut buf_a);
        swapped.executor_mut().read_output(b, &mut buf_b);
        assert_eq!(
            buf_a.samples(),
            buf_b.samples(),
            "deck A's channel changed because deck D was ejected"
        );
    }
}

#[test]
fn resize_threads_rebuilds_the_executor() {
    let mut engine = light_engine(Strategy::Sleep, 2);
    engine.warmup(5);
    engine.reconfigure(&[GraphEdit::ResizeThreads(4)]).unwrap();
    assert_eq!(engine.threads(), 4);
    // A rebuild starts a fresh executor: generation restarts at zero.
    assert_eq!(engine.executor_mut().generation(), 0);
    engine.warmup(10);
    assert!(engine.output().is_finite());
    // Shape edits in the same script still land.
    engine
        .reconfigure(&[GraphEdit::UnloadDeck(1), GraphEdit::ResizeThreads(2)])
        .unwrap();
    assert_eq!(engine.threads(), 2);
    assert!(!engine.shape().deck_loaded[1]);
    engine.warmup(5);
    assert!(engine.output().is_finite());
}

#[test]
fn invalid_edits_leave_the_engine_untouched() {
    let mut engine = light_engine(Strategy::Busy, 2);
    engine.warmup(5);
    let before_nodes = engine.shape().node_count();
    assert!(engine.reconfigure(&[GraphEdit::LoadDeck(0)]).is_err());
    assert!(engine.reconfigure(&[GraphEdit::LoadDeck(9)]).is_err());
    assert!(engine
        .reconfigure(&[GraphEdit::UnloadDeck(3), GraphEdit::InsertFxSlot(3)])
        .is_err());
    assert_eq!(engine.shape().node_count(), before_nodes);
    assert!(
        engine.shape().deck_loaded[3],
        "failed script partially applied"
    );
    assert_eq!(engine.executor_mut().generation(), 0);
    engine.warmup(5);
    assert!(engine.output().is_finite());
}

#[test]
fn topology_events_become_pending_edits() {
    let mut engine = light_engine(Strategy::Sequential, 1);
    let mut q = EventQueue::standard();
    q.push(0, ControlEvent::DeckLoadState(3, false));
    q.push(0, ControlEvent::FxChain(0, 6));
    // Duplicate requests are already satisfied by the pending queue:
    // valid no-ops that must not double-stage edits.
    q.push(0, ControlEvent::DeckLoadState(3, false));
    q.push(0, ControlEvent::FxChain(0, 6));
    engine.apply_events(&mut q);
    let edits = engine.take_pending_edits();
    assert_eq!(
        edits,
        vec![
            GraphEdit::UnloadDeck(3),
            GraphEdit::InsertFxSlot(0),
            GraphEdit::InsertFxSlot(0),
        ]
    );
    assert_eq!(engine.dropped_events(), 0);
    engine.reconfigure(&edits).unwrap();
    assert!(!engine.shape().deck_loaded[3]);
    assert_eq!(engine.shape().fx_slots[0], 6);
    assert_eq!(engine.take_pending_edits(), vec![]);
}

#[test]
fn out_of_range_events_are_counted_not_swallowed() {
    let mut engine = light_engine(Strategy::Sequential, 1);
    engine.reconfigure(&[GraphEdit::UnloadDeck(2)]).unwrap();
    let mut q = EventQueue::standard();
    q.push(0, ControlEvent::DeckGain(7, 0.5)); // no such deck
    q.push(0, ControlEvent::DeckEq(2, [1.0, 0.0, -1.0])); // deck unloaded
    q.push(0, ControlEvent::FxToggle(0, 4, true)); // slot beyond chain
    q.push(0, ControlEvent::FxChain(2, 3)); // resize of unloaded deck
    q.push(0, ControlEvent::Crossfader(0.25)); // valid, must still apply
    engine.apply_events(&mut q);
    assert_eq!(engine.dropped_events(), 4);
    assert!(engine.take_pending_edits().is_empty());
    engine.warmup(5);
    assert!(engine.output().is_finite());
}

#[test]
fn fx_toggle_state_survives_unrelated_swaps() {
    // Disable deck A's FX via events, swap deck D out, and verify the
    // toggle is still in force (the carried EffectNode kept its flag).
    let mut toggled = light_engine(Strategy::Sequential, 1);
    let mut control = light_engine(Strategy::Sequential, 1);
    let mut q = EventQueue::standard();
    for slot in 0..4 {
        q.push(0, ControlEvent::FxToggle(0, slot, false));
    }
    toggled.apply_events(&mut q);
    toggled.reconfigure(&[GraphEdit::UnloadDeck(3)]).unwrap();
    control.reconfigure(&[GraphEdit::UnloadDeck(3)]).unwrap();
    toggled.warmup(40);
    control.warmup(40);
    assert_ne!(
        toggled.output().samples(),
        control.output().samples(),
        "FX toggle was lost across the generation swap"
    );
}

#[test]
fn shaped_construction_matches_reconfigured_shape() {
    // Building at a shape and reconfiguring into it agree on topology.
    let mut shape = GraphShape::paper_default();
    shape.deck_loaded[2] = false;
    shape.fx_slots[1] = 6;
    let direct = AudioEngine::with_shape(
        Scenario::light_test(),
        shape,
        Strategy::Busy,
        2,
        AuxWork::light(),
    );
    let mut edited = light_engine(Strategy::Busy, 2);
    edited
        .reconfigure(&[
            GraphEdit::UnloadDeck(2),
            GraphEdit::InsertFxSlot(1),
            GraphEdit::InsertFxSlot(1),
        ])
        .unwrap();
    assert_eq!(direct.shape(), edited.shape());
    assert_eq!(direct.shape().node_count(), 67 - 13 + 2);
}
