//! Proof that the venue's multi-session hot path allocates nothing.
//!
//! A counting `#[global_allocator]` wraps the system allocator; after
//! warm-up, full batched venue cycles — every session's TP/GP phases,
//! one pool dispatch, driver lane-0 parts, per-session collection, VC
//! and deadline accounting — must not allocate: cycle preps live in a
//! scratch vector sized at admission, the pool entry table is reused,
//! and the engines' own phases were already allocation-free solo.
//!
//! Own integration binary for the same reason as `net_alloc.rs`: a
//! global allocator is process-wide and sibling tests would pollute the
//! measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use djstar_core::exec::Strategy;
use djstar_engine::apc::AuxWork;
use djstar_engine::venue::{SessionSpec, VenueServer};
use djstar_workload::scenario::Scenario;
use djstar_workload::NetSpec;
use std::time::Duration;

fn spec(strategy: Strategy, threads: usize, networked: bool) -> SessionSpec {
    let mut scenario = Scenario::light_test();
    if networked {
        let mut net = NetSpec::bursty(0xA110C);
        net.adapt = true;
        scenario.net = net;
    }
    SessionSpec {
        scenario,
        strategy,
        threads,
        aux: AuxWork::light(),
    }
}

#[test]
fn steady_state_venue_cycles_do_not_allocate() {
    let mut venue = VenueServer::new(3, Duration::from_secs(1), 0.0);
    // A mixed batch: pooled stealer, pooled busy-waiter, inline
    // sequential, one of them networked — every dispatch flavor the
    // venue hot path has.
    venue
        .admit_bounded(spec(Strategy::Steal, 3, true), 1)
        .expect("admit steal");
    venue
        .admit_bounded(spec(Strategy::Busy, 2, false), 1)
        .expect("admit busy");
    venue
        .admit_bounded(spec(Strategy::Sequential, 1, false), 1)
        .expect("admit sequential");
    venue.run_cycles(30);
    // Count allocations across a 50-cycle window. A genuine hot-path
    // allocation repeats every window, so re-measuring once filters the
    // rare one-shot lazy initialization std performs without weakening
    // the per-cycle claim.
    let mut measure = || {
        let before = ALLOCATIONS.load(Ordering::SeqCst);
        venue.run_cycles(50);
        ALLOCATIONS.load(Ordering::SeqCst) - before
    };
    let mut allocs = measure();
    if allocs > 0 {
        allocs = measure();
    }
    assert_eq!(allocs, 0, "venue cycles allocated {allocs} times");
}
