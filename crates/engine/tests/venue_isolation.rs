//! Session isolation on the shared venue pool: a fault storm plus a
//! lossy network in session A must leave co-hosted session B **bit-exact**
//! with its clean-venue run — same per-cycle audio checksum, same packet
//! accounting, same deadline-miss count. The sessions share every pool
//! lane, so this is the differential proof that venue multiplexing leaks
//! no scheduling, fault or network state across session boundaries.

use djstar_core::exec::Strategy;
use djstar_dsp::AudioBuf;
use djstar_engine::apc::AuxWork;
use djstar_engine::venue::{SessionSpec, VenueServer};
use djstar_workload::faults::FaultSpec;
use djstar_workload::scenario::Scenario;
use djstar_workload::NetSpec;

const CYCLES: usize = 120;
const LANES: usize = 3;

fn victim_spec() -> SessionSpec {
    // B is itself networked (deterministic bursty trace) so the check
    // covers packet accounting, not just DSP state.
    let mut net = NetSpec::bursty(0xB0B);
    net.adapt = false;
    net.start_depth = 3;
    let mut scenario = Scenario::light_test();
    scenario.net = net;
    SessionSpec {
        scenario,
        strategy: Strategy::Steal,
        threads: LANES,
        aux: AuxWork::light(),
    }
}

fn aggressor_spec(lossy: bool) -> SessionSpec {
    let mut scenario = Scenario::light_test();
    if lossy {
        scenario.net = NetSpec::lossy(0xA77A);
    }
    SessionSpec {
        scenario,
        strategy: Strategy::Busy,
        threads: LANES,
        aux: AuxWork::light(),
    }
}

fn fold_checksum(mut acc: u64, buf: &AudioBuf) -> u64 {
    for &s in buf.samples() {
        acc = (acc ^ s.to_bits() as u64).wrapping_mul(0x0000_0100_0000_01B3);
    }
    acc
}

/// Run a two-session venue for [`CYCLES`] cycles and return the victim's
/// (per-cycle audio checksum, packet stats, miss count). `hostile` turns
/// the aggressor's network lossy and arms a fault storm on its executor.
fn run_victim_beside(hostile: bool) -> (u64, djstar_core::net::NetStats, u64) {
    // A deliberately tight-ish deadline would make miss counts depend on
    // host noise; a generous one keeps the differential deterministic
    // while still exercising the per-session accounting path.
    let mut venue = VenueServer::new(LANES, std::time::Duration::from_secs(1), 0.0);
    let a = venue
        .admit_bounded(aggressor_spec(hostile), 1)
        .expect("admit aggressor");
    let b = venue.admit_bounded(victim_spec(), 1).expect("admit victim");
    if hostile {
        let storm = FaultSpec::storm(0xFEED).with_iters(40_000, 20_000, 60_000);
        venue.engine_mut(a).unwrap().set_faults(Some(&storm));
    }
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for _ in 0..CYCLES {
        venue.run_cycle();
        acc = fold_checksum(acc, &venue.engine_mut(b).unwrap().output());
    }
    if hostile {
        // The storm must actually bite or the isolation claim is vacuous:
        // the aggressor's lossy trace has to have concealed packets.
        let a_stats = venue.engine_mut(a).unwrap().net_stats();
        assert!(a_stats.received > 0, "aggressor trace delivered nothing");
        assert!(a_stats.concealed > 0, "aggressor network never dropped");
    }
    let stats = venue.engine_mut(b).unwrap().net_stats();
    let misses = venue.misses(b).expect("victim counters");
    (acc, stats, misses)
}

#[test]
fn fault_storm_and_lossy_net_in_one_session_leave_the_other_bit_exact() {
    let (clean_sum, clean_stats, clean_misses) = run_victim_beside(false);
    assert!(clean_stats.received > 0, "victim trace delivered nothing");
    let (storm_sum, storm_stats, storm_misses) = run_victim_beside(true);
    assert_eq!(
        storm_sum, clean_sum,
        "victim audio diverged beside a faulted session"
    );
    assert_eq!(
        storm_stats, clean_stats,
        "victim packet accounting diverged beside a faulted session"
    );
    assert_eq!(
        storm_misses, clean_misses,
        "victim miss count changed beside a faulted session"
    );
}
