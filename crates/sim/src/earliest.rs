//! Earliest-start scheduling with unbounded processors (§IV).
//!
//! "We defined the earliest start scheduling strategy. This strategy
//! schedules each vertex as soon as all its dependencies are met,
//! disregarding resource constraints (i.e. infinite processors). This
//! approach is similar to a critical path analysis, but in addition it
//! reveals the maximum concurrency in the graph." The paper finds 295 µs
//! makespan needing at most 33 processors, with concurrency dropping to 4
//! after ~25 µs.

use crate::model::{DurationModel, Schedule, ScheduleEntry, SimGraph};

/// Result of the earliest-start analysis.
#[derive(Debug, Clone)]
pub struct EarliestStartResult {
    /// The (processor-assigned) schedule; processors are allocated greedily
    /// so the processor count equals the maximum concurrency.
    pub schedule: Schedule,
    /// Critical-path length = makespan with infinite processors (ns).
    pub makespan_ns: u64,
    /// Maximum number of simultaneously running nodes.
    pub max_concurrency: u32,
    /// The node ids on one critical path, in execution order.
    pub critical_path: Vec<u32>,
}

/// Compute the earliest-start schedule of `graph` under `durations`
/// (simulated cycle `cycle` of the model).
pub fn earliest_start(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
) -> EarliestStartResult {
    let n = graph.len();
    let mut start = vec![0u64; n];
    let mut end = vec![0u64; n];
    // The queue is a topological order: one pass suffices.
    for &node in graph.queue() {
        let s = graph
            .preds(node)
            .iter()
            .map(|&p| end[p as usize])
            .max()
            .unwrap_or(0);
        start[node as usize] = s;
        end[node as usize] = s + durations.duration(node, cycle);
    }
    // Greedy processor assignment: sweep events, reuse freed processors.
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.sort_by_key(|&i| (start[i as usize], end[i as usize]));
    let mut proc_free: Vec<u64> = Vec::new(); // free-at time per processor
    let mut entries = Vec::with_capacity(n);
    for &node in &order {
        let s = start[node as usize];
        let e = end[node as usize];
        let proc = match proc_free.iter().position(|&f| f <= s) {
            Some(p) => p,
            None => {
                proc_free.push(0);
                proc_free.len() - 1
            }
        };
        proc_free[proc] = e;
        entries.push(ScheduleEntry {
            node,
            proc: proc as u32,
            start_ns: s,
            end_ns: e,
        });
    }
    let schedule = Schedule {
        entries,
        procs: proc_free.len() as u32,
    };
    let makespan_ns = schedule.makespan_ns();
    let max_concurrency = schedule.max_concurrency();

    // Critical path: walk back from a node ending at the makespan.
    let mut critical_path = Vec::new();
    if n > 0 {
        let mut cur = (0..n as u32)
            .max_by_key(|&i| end[i as usize])
            .expect("non-empty graph");
        loop {
            critical_path.push(cur);
            // Predecessor whose end equals our start (ties broken arbitrarily).
            let s = start[cur as usize];
            match graph
                .preds(cur)
                .iter()
                .copied()
                .find(|&p| end[p as usize] == s)
            {
                Some(p) if s > 0 || !graph.preds(cur).is_empty() => cur = p,
                _ => break,
            }
            if graph.preds(cur).is_empty() && start[cur as usize] == 0 {
                critical_path.push(cur);
                break;
            }
        }
        critical_path.reverse();
    }

    EarliestStartResult {
        schedule,
        makespan_ns,
        max_concurrency,
        critical_path,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SimGraph {
        SimGraph::synthetic(vec![vec![], vec![0], vec![0], vec![1, 2]])
    }

    #[test]
    fn diamond_earliest_start() {
        let g = diamond();
        let d = DurationModel::Constant(vec![10, 20, 5, 8]);
        let r = earliest_start(&g, &d, 0);
        // Critical path: 0 (10) → 1 (20) → 3 (8) = 38.
        assert_eq!(r.makespan_ns, 38);
        assert_eq!(r.max_concurrency, 2);
        assert!(r.schedule.is_valid(&g));
        assert_eq!(r.critical_path, vec![0, 1, 3]);
    }

    #[test]
    fn chain_has_concurrency_one() {
        let g = SimGraph::synthetic(vec![vec![], vec![0], vec![1], vec![2]]);
        let d = DurationModel::Constant(vec![5; 4]);
        let r = earliest_start(&g, &d, 0);
        assert_eq!(r.makespan_ns, 20);
        assert_eq!(r.max_concurrency, 1);
        assert_eq!(r.schedule.procs, 1);
        assert_eq!(r.critical_path, vec![0, 1, 2, 3]);
    }

    #[test]
    fn wide_fan_uses_many_processors() {
        // 16 independent sources feeding one sink.
        let mut preds: Vec<Vec<u32>> = (0..16).map(|_| vec![]).collect();
        preds.push((0..16).collect());
        let g = SimGraph::synthetic(preds);
        let d = DurationModel::Constant(vec![10; 17]);
        let r = earliest_start(&g, &d, 0);
        assert_eq!(r.max_concurrency, 16);
        assert_eq!(r.schedule.procs, 16);
        assert_eq!(r.makespan_ns, 20);
    }

    #[test]
    fn makespan_equals_longest_weighted_path() {
        let g = SimGraph::synthetic(vec![vec![], vec![], vec![0], vec![1], vec![2, 3]]);
        let d = DurationModel::Constant(vec![1, 100, 1, 1, 1]);
        let r = earliest_start(&g, &d, 0);
        assert_eq!(r.makespan_ns, 102); // 1 → 3 → 4
        assert_eq!(r.critical_path, vec![1, 3, 4]);
    }

    #[test]
    fn concurrency_profile_is_monotone_decreasing_after_peak_for_fan_in() {
        // Sources of very different lengths feeding a chain: concurrency
        // starts at the number of sources and declines.
        let mut preds: Vec<Vec<u32>> = (0..8).map(|_| vec![]).collect();
        preds.push((0..8).collect());
        let g = SimGraph::synthetic(preds);
        let d = DurationModel::Constant(vec![10, 20, 30, 40, 50, 60, 70, 80, 5]);
        let r = earliest_start(&g, &d, 0);
        let profile = r.schedule.concurrency_profile();
        assert_eq!(profile[0].1, 8);
        let peak = profile.iter().map(|p| p.1).max().unwrap();
        assert_eq!(peak, 8);
    }
}
