//! Simulated fault mirror: E14's lower-bound oracle.
//!
//! The fault injections of `djstar_core::faults` are pure functions of
//! `(seed, cycle, node-or-lane)`, so the simulator can replay the exact
//! same schedule in virtual time and answer the question a wall-clock
//! experiment cannot: *which deadline misses were unavoidable?* A cycle
//! whose Graham-style lower bound — the larger of the work area spread
//! over `P` workers and the critical path — already exceeds the deadline
//! would be missed by any scheduler; misses beyond those are
//! scheduler-caused and fair game for the degradation gates.
//!
//! Spikes and pressure attach to nodes (they inflate execution time);
//! stalls attach to workers, so they contribute to the work area but not
//! to any node's path length.

use crate::model::{DurationModel, SimGraph};
use djstar_core::faults::FaultPlan;

/// `node`'s duration in `cycle` with `plan`'s spike + pressure overlay,
/// at `iter_ns` nanoseconds per injected kernel iteration.
pub fn faulted_duration_ns(
    base: &DurationModel,
    plan: &FaultPlan,
    iter_ns: f64,
    node: u32,
    cycle: usize,
) -> u64 {
    let extra = plan.spike_iters_for(cycle as u64, node) as u64
        + plan.pressure_iters_for(cycle as u64) as u64;
    base.duration(node, cycle) + (extra as f64 * iter_ns).round() as u64
}

/// Overlay `plan` onto `base` for `nodes` nodes across `cycles` explicit
/// cycles, producing the [`DurationModel::Empirical`] the strategy
/// simulators consume. A quiet plan reproduces `base` exactly.
pub fn faulted_model(
    base: &DurationModel,
    nodes: usize,
    plan: &FaultPlan,
    iter_ns: f64,
    cycles: usize,
) -> DurationModel {
    DurationModel::Empirical(
        (0..nodes as u32)
            .map(|n| {
                (0..cycles.max(1))
                    .map(|c| faulted_duration_ns(base, plan, iter_ns, n, c))
                    .collect()
            })
            .collect(),
    )
}

/// Total worker-stall nanoseconds `plan` injects in `cycle` (summed over
/// all virtual lanes — lane placement is irrelevant to the area bound).
pub fn stall_ns(plan: &FaultPlan, cycle: u64, iter_ns: f64) -> u64 {
    let iters: u64 = (0..plan.stall_lanes)
        .map(|l| plan.stall_iters_for(cycle, l) as u64)
        .sum();
    (iters as f64 * iter_ns).round() as u64
}

/// Graham-style lower bound on `cycle`'s makespan for any scheduler on
/// `threads` workers under `plan`:
/// `max(⌈(Σ node work + Σ stalls) / threads⌉, critical path)`.
/// Stalls occupy workers, so they count toward the area term only.
pub fn faulted_cycle_bound_ns(
    graph: &SimGraph,
    base: &DurationModel,
    plan: &FaultPlan,
    iter_ns: f64,
    cycle: usize,
    threads: usize,
) -> u64 {
    let mut work = 0u64;
    let mut finish = vec![0u64; graph.len()];
    let mut critical_path = 0u64;
    // The depth-sorted queue is a topological order: every predecessor
    // sits at a strictly smaller depth.
    for &n in graph.queue() {
        let d = faulted_duration_ns(base, plan, iter_ns, n, cycle);
        work += d;
        let start = graph
            .preds(n)
            .iter()
            .map(|&p| finish[p as usize])
            .max()
            .unwrap_or(0);
        finish[n as usize] = start + d;
        critical_path = critical_path.max(finish[n as usize]);
    }
    let area = (work + stall_ns(plan, cycle as u64, iter_ns)).div_ceil(threads.max(1) as u64);
    area.max(critical_path)
}

/// Count the cycles in `0..cycles` whose lower bound alone exceeds
/// `deadline_ns` — misses **no** scheduler could avoid. The E14 report
/// prints this next to each strategy's measured misses so readers can
/// separate "the storm was physically too big" from "the scheduler
/// buckled".
pub fn unavoidable_misses(
    graph: &SimGraph,
    base: &DurationModel,
    plan: &FaultPlan,
    iter_ns: f64,
    deadline_ns: u64,
    threads: usize,
    cycles: usize,
) -> usize {
    (0..cycles)
        .filter(|&c| faulted_cycle_bound_ns(graph, base, plan, iter_ns, c, threads) > deadline_ns)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// diamond: 0 → {1, 2} → 3, 100 ns per node.
    fn diamond() -> (SimGraph, DurationModel) {
        (
            SimGraph::synthetic(vec![vec![], vec![0], vec![0], vec![1, 2]]),
            DurationModel::Constant(vec![100; 4]),
        )
    }

    fn storm() -> FaultPlan {
        FaultPlan {
            seed: 0xE14,
            spike_rate: 0.2,
            spike_iters: 50,
            stall_lanes: 3,
            stall_rate: 0.5,
            stall_iters: 40,
            pressure_period: 10,
            pressure_len: 4,
            pressure_iters: 30,
        }
    }

    #[test]
    fn quiet_plan_reproduces_the_base_model() {
        let (g, base) = diamond();
        let quiet = FaultPlan::quiet(1);
        let m = faulted_model(&base, g.len(), &quiet, 2.0, 8);
        for c in 0..8 {
            for n in 0..4 {
                assert_eq!(m.duration(n, c), base.duration(n, c));
            }
        }
        // Bound without faults: area = ceil(400/2) = 200, cp = 300.
        assert_eq!(faulted_cycle_bound_ns(&g, &base, &quiet, 2.0, 0, 2), 300);
        assert_eq!(faulted_cycle_bound_ns(&g, &base, &quiet, 2.0, 0, 1), 400);
        assert_eq!(stall_ns(&quiet, 0, 2.0), 0);
    }

    #[test]
    fn overlay_is_deterministic_and_matches_the_plan_draws() {
        let (g, base) = diamond();
        let plan = storm();
        let a = faulted_model(&base, g.len(), &plan, 3.0, 32);
        let b = faulted_model(&base, g.len(), &plan, 3.0, 32);
        for c in 0..32 {
            for n in 0..4 {
                assert_eq!(a.duration(n, c), b.duration(n, c));
                let want = base.duration(n, c)
                    + 3 * (plan.spike_iters_for(c as u64, n) as u64
                        + plan.pressure_iters_for(c as u64) as u64);
                assert_eq!(a.duration(n, c), want);
            }
        }
    }

    #[test]
    fn pressure_cycles_raise_the_bound_above_quiet_cycles() {
        let (g, base) = diamond();
        let plan = FaultPlan {
            spike_rate: 0.0,
            stall_lanes: 0,
            ..storm()
        };
        // Pressure high in cycles 0..4 of each 10-cycle period.
        let high = faulted_cycle_bound_ns(&g, &base, &plan, 2.0, 0, 2);
        let low = faulted_cycle_bound_ns(&g, &base, &plan, 2.0, 5, 2);
        assert!(
            high > low,
            "pressure must inflate the bound: {high} vs {low}"
        );
        assert_eq!(low, 300); // quiet half matches the fault-free bound
    }

    #[test]
    fn stalls_count_toward_area_but_not_critical_path() {
        let (g, base) = diamond();
        let plan = FaultPlan {
            spike_rate: 0.0,
            pressure_period: 0,
            stall_rate: 1.0,
            ..storm()
        };
        // Every lane stalls every cycle: 3 lanes x 40 iters x 2 ns = 240 ns.
        assert_eq!(stall_ns(&plan, 0, 2.0), 240);
        // With many threads the area term vanishes and the bound falls
        // back to the un-stalled critical path.
        assert_eq!(faulted_cycle_bound_ns(&g, &base, &plan, 2.0, 0, 64), 300);
        // Single-threaded, the stall rides on top of the serial work.
        assert_eq!(faulted_cycle_bound_ns(&g, &base, &plan, 2.0, 0, 1), 640);
    }

    #[test]
    fn unavoidable_misses_follow_the_pressure_wave() {
        let (g, base) = diamond();
        let plan = FaultPlan {
            spike_rate: 0.0,
            stall_lanes: 0,
            pressure_period: 10,
            pressure_len: 4,
            pressure_iters: 1000,
            ..storm()
        };
        // Pressure adds 2000 ns per node; quiet bound is 300 ns. A 500 ns
        // deadline is missed exactly in the 4 high cycles of each period.
        let misses = unavoidable_misses(&g, &base, &plan, 2.0, 500, 2, 30);
        assert_eq!(misses, 12);
        // An infinite deadline is never missed.
        assert_eq!(
            unavoidable_misses(&g, &base, &plan, 2.0, u64::MAX, 2, 30),
            0
        );
    }
}
