//! ASCII Gantt rendering of schedules and real traces (Fig. 11).
//!
//! The paper's Fig. 11 shows, per thread, the sequence of executed nodes as
//! labeled bars, with gray boxes for busy-waiting and white gaps for
//! sleeping. The renderers here produce the same picture in text: `=` bars
//! carrying node ids, `.` for waiting, and spaces for idle time.

use crate::model::Schedule;
use djstar_core::trace::{ScheduleTrace, TraceKind};

/// Render a simulated [`Schedule`] as one text row per processor.
pub fn render_schedule(s: &Schedule, width: usize) -> String {
    let makespan = s.makespan_ns().max(1);
    let mut out = String::new();
    for proc in 0..s.procs {
        let mut row = vec![b' '; width];
        for e in s.proc_timeline(proc) {
            paint(&mut row, width, makespan, e.start_ns, e.end_ns, b'=');
            label(&mut row, width, makespan, e.start_ns, e.node);
        }
        out.push_str(&format!("T{proc} |{}|\n", String::from_utf8_lossy(&row)));
    }
    out.push_str(&format!(
        "    0 {:>width$} ns\n",
        makespan,
        width = width.saturating_sub(2)
    ));
    out
}

/// Render a measured [`ScheduleTrace`] (Fig. 11 proper): `=` executing,
/// `.` busy-waiting or sleeping, `s` a successful steal sweep, `^` waking
/// a parked peer, space idle.
pub fn render_trace(t: &ScheduleTrace, width: usize) -> String {
    let makespan = t.events.iter().map(|e| e.end_ns).max().unwrap_or(0).max(1);
    let mut out = String::new();
    for worker in 0..t.workers {
        let mut row = vec![b' '; width];
        for e in t.worker_timeline(worker) {
            let ch = match e.kind {
                TraceKind::Exec => b'=',
                TraceKind::BusyWait | TraceKind::Sleep | TraceKind::Idle => b'.',
                TraceKind::Steal => b's',
                TraceKind::Unpark => b'^',
            };
            paint(&mut row, width, makespan, e.start_ns, e.end_ns, ch);
            if e.kind == TraceKind::Exec {
                label(&mut row, width, makespan, e.start_ns, e.node);
            }
        }
        out.push_str(&format!("T{worker} |{}|\n", String::from_utf8_lossy(&row)));
    }
    out.push_str(&format!(
        "    0 {:>width$} ns\n",
        makespan,
        width = width.saturating_sub(2)
    ));
    out
}

/// Fill `[start, end)` (scaled) with `ch`, at least one column per event.
fn paint(row: &mut [u8], width: usize, makespan: u64, start: u64, end: u64, ch: u8) {
    let a = scale(start, makespan, width);
    let b = scale(end, makespan, width).max(a + 1).min(width);
    for slot in row.iter_mut().take(b).skip(a) {
        *slot = ch;
    }
}

/// Write the node id at the start of its bar (digits only, best effort).
fn label(row: &mut [u8], width: usize, makespan: u64, start: u64, node: u32) {
    let text = node.to_string();
    let a = scale(start, makespan, width);
    for (k, byte) in text.bytes().enumerate() {
        let i = a + k;
        if i < width && (row[i] == b'=' || row[i] == b' ') {
            row[i] = byte;
        } else {
            break;
        }
    }
}

#[inline]
fn scale(t: u64, makespan: u64, width: usize) -> usize {
    ((t as u128 * width as u128 / makespan as u128) as usize).min(width.saturating_sub(1))
}

/// Comma-separated values export of a schedule (node, proc, start, end).
pub fn schedule_csv(s: &Schedule) -> String {
    let mut out = String::from("node,proc,start_ns,end_ns\n");
    for e in &s.entries {
        out.push_str(&format!(
            "{},{},{},{}\n",
            e.node, e.proc, e.start_ns, e.end_ns
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Schedule, ScheduleEntry};
    use djstar_core::trace::TraceEvent;

    fn two_proc_schedule() -> Schedule {
        Schedule {
            procs: 2,
            entries: vec![
                ScheduleEntry {
                    node: 0,
                    proc: 0,
                    start_ns: 0,
                    end_ns: 500,
                },
                ScheduleEntry {
                    node: 1,
                    proc: 1,
                    start_ns: 0,
                    end_ns: 300,
                },
                ScheduleEntry {
                    node: 2,
                    proc: 1,
                    start_ns: 500,
                    end_ns: 1_000,
                },
            ],
        }
    }

    #[test]
    fn schedule_render_has_one_row_per_proc() {
        let s = render_schedule(&two_proc_schedule(), 40);
        let rows: Vec<&str> = s.lines().collect();
        assert_eq!(rows.len(), 3); // 2 procs + axis
        assert!(rows[0].starts_with("T0 |"));
        assert!(rows[1].starts_with("T1 |"));
        assert!(rows[0].contains('0'));
        assert!(rows[1].contains('2'));
    }

    #[test]
    fn trace_render_shows_wait_marks() {
        let t = ScheduleTrace {
            workers: 1,
            events: vec![
                TraceEvent {
                    node: 5,
                    worker: 0,
                    start_ns: 0,
                    end_ns: 400,
                    kind: TraceKind::BusyWait,
                },
                TraceEvent {
                    node: 5,
                    worker: 0,
                    start_ns: 400,
                    end_ns: 1_000,
                    kind: TraceKind::Exec,
                },
            ],
        };
        let s = render_trace(&t, 50);
        assert!(s.contains('.'), "{s}");
        assert!(s.contains('='), "{s}");
        assert!(s.contains('5'), "{s}");
    }

    #[test]
    fn csv_lists_all_entries() {
        let csv = schedule_csv(&two_proc_schedule());
        assert_eq!(csv.lines().count(), 4);
        assert!(csv.contains("2,1,500,1000"));
    }

    #[test]
    fn tiny_events_are_still_visible() {
        let s = Schedule {
            procs: 1,
            entries: vec![
                ScheduleEntry {
                    node: 0,
                    proc: 0,
                    start_ns: 0,
                    end_ns: 1,
                },
                ScheduleEntry {
                    node: 1,
                    proc: 0,
                    start_ns: 1,
                    end_ns: 1_000_000,
                },
            ],
        };
        let text = render_schedule(&s, 60);
        assert!(text.contains('0'));
    }
}
