//! Virtual-time schedule simulation — the role RESCON plays in the paper.
//!
//! §IV: "In order to find an optimal schedule and to assess the parallel
//! potential for the task graph, we performed a graph simulation using the
//! simulation tool RESCON. … we defined the earliest start scheduling
//! strategy … similar to a critical path analysis, but in addition it
//! reveals the maximum concurrency in the graph." And §VI/Fig. 12: "we
//! implemented our BUSY strategy in the RESCON simulation tool and compared
//! the simulation result with our measurement."
//!
//! RESCON is closed educational software, so this crate reimplements the
//! algorithms the paper describes, plus strategy-faithful simulators for
//! all three parallelizations:
//!
//! * [`earliest`] — earliest-start schedule with unbounded processors:
//!   critical path, makespan, concurrency-over-time profile (Fig. 4's
//!   analysis: 33-wide start, dropping to 4, tailing to 1).
//! * [`list`] — resource-constrained list scheduling on `P` processors
//!   (the paper's "optimal schedule" on four cores: 324 µs vs 295 µs).
//! * [`strategy`] — virtual-time replicas of the BUSY, SLEEP and WS
//!   executors including scheduling overheads, used to regenerate
//!   Table I / Figs. 8–12 on hosts without enough physical cores.
//! * [`gantt`] — ASCII Gantt rendering of schedules and real traces
//!   (Fig. 11).
//!
//! On this reproduction's single-vCPU evaluation host the strategy
//! simulators are the primary source of the parallel numbers; the real
//! executors in `djstar-core` supply correctness and the single-thread
//! column, and `djstar-engine::apc::AudioEngine::measured_node_durations`
//! supplies the per-node, per-cycle duration samples that drive the
//! simulation (preserving the loud/quiet correlation that makes the
//! execution-time histograms bimodal).

pub mod earliest;
pub mod faults;
pub mod gantt;
pub mod list;
pub mod metrics;
pub mod model;
pub mod netsim;
pub mod planned;
pub mod strategy;
pub mod venue;

pub use earliest::{earliest_start, EarliestStartResult};
pub use faults::{faulted_cycle_bound_ns, faulted_model, unavoidable_misses};
pub use list::list_schedule;
pub use metrics::{ScheduleMetrics, WaitBreakdown};
pub use model::{DurationModel, Schedule, ScheduleEntry, SimGraph};
pub use netsim::{dropout_by_depth, dropouts_at_depth, lost_packets, min_adequate_depth};
pub use planned::{compile_blueprint, simulate_plan, simulate_plan_makespans};
pub use strategy::{
    simulate_hybrid, simulate_strategy, simulate_ws_config, OverheadModel, SimStrategy, WsConfig,
};
pub use venue::{admissible, cycle_budget_ns, max_sessions, session_bound_ns};
