//! Resource-constrained list scheduling (§IV's 4-core "optimal" schedule).
//!
//! "Since only four cores are required most of the time, we simulated the
//! graph with a resource constraint of four cores to find an optimal
//! schedule. Our simulation results show that the task graph can be
//! computed in 324 µs using only four cores. This is only 8 % slower than
//! the schedule without resource constraints."
//!
//! The scheduler is an event-driven list scheduler: whenever a processor is
//! free and nodes are ready, the highest-priority ready node starts.
//! Priority is the DJ Star queue position by default (depth order), with an
//! optional critical-path priority for the ablation study in DESIGN.md §5.

use crate::model::{DurationModel, Schedule, ScheduleEntry, SimGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Ready-node priority rule.
///
/// Unlike the executor-side [`djstar_core::graph::Priority`] orders, these
/// rank *ready* nodes only, so they need no topological validity and can use
/// duration-aware keys freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Priority {
    /// DJ Star queue order (depth, then insertion order).
    QueueOrder,
    /// Longest remaining path first (classic critical-path list scheduling).
    CriticalPath,
    /// "Longer Is Shorter" path shaping: longest *total* path through the
    /// node first (entry path + remaining path, in time). Among equal
    /// remaining paths this prefers the node whose chain started earliest,
    /// serializing long end-to-end chains.
    LongerIsShorter,
    /// Global fixed-priority: a single static rank per node — ascending
    /// depth, then longest remaining path — assigned once before the run,
    /// mirroring global fixed-priority DAG scheduling analyses.
    GlobalFixed,
}

impl Priority {
    /// Every priority rule, in sweep order.
    pub const ALL: [Priority; 4] = [
        Priority::QueueOrder,
        Priority::CriticalPath,
        Priority::LongerIsShorter,
        Priority::GlobalFixed,
    ];

    /// Short label for reports and benchmarks.
    pub fn label(self) -> &'static str {
        match self {
            Priority::QueueOrder => "queue-order",
            Priority::CriticalPath => "critical-path",
            Priority::LongerIsShorter => "longer-is-shorter",
            Priority::GlobalFixed => "global-fixed",
        }
    }
}

/// Schedule `graph` on `procs` processors under `durations` (cycle
/// `cycle`), using queue-order priority.
pub fn list_schedule(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
    procs: u32,
) -> Schedule {
    list_schedule_with(graph, durations, cycle, procs, Priority::QueueOrder)
}

/// Schedule with an explicit priority rule.
pub fn list_schedule_with(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
    procs: u32,
    priority: Priority,
) -> Schedule {
    assert!(procs > 0, "need at least one processor");
    let n = graph.len();
    // Longest remaining time path from each node down to a sink, including
    // the node itself (backward pass over the topological queue).
    let remaining_path = || {
        let mut remaining = vec![0u64; n];
        for &node in graph.queue().iter().rev() {
            let tail = graph
                .succs(node)
                .iter()
                .map(|&s| remaining[s as usize])
                .max()
                .unwrap_or(0);
            remaining[node as usize] = tail + durations.duration(node, cycle);
        }
        remaining
    };
    // Priority key per node: smaller = more urgent.
    let key: Vec<u64> = match priority {
        Priority::QueueOrder => {
            let mut k = vec![0u64; n];
            for (pos, &node) in graph.queue().iter().enumerate() {
                k[node as usize] = pos as u64;
            }
            k
        }
        Priority::CriticalPath => {
            // Remaining path length, inverted into a "smaller is better" key.
            let remaining = remaining_path();
            let max = remaining.iter().copied().max().unwrap_or(0);
            remaining.iter().map(|&r| max - r).collect()
        }
        Priority::LongerIsShorter => {
            // Longest total path *through* the node: entry path (forward
            // pass) + remaining path, with the node's own duration counted
            // once. Inverted into a "smaller is better" key.
            let remaining = remaining_path();
            let mut entry = vec![0u64; n];
            for &node in graph.queue() {
                let head = graph
                    .preds(node)
                    .iter()
                    .map(|&p| entry[p as usize])
                    .max()
                    .unwrap_or(0);
                entry[node as usize] = head + durations.duration(node, cycle);
            }
            let total: Vec<u64> = (0..n)
                .map(|i| entry[i] + remaining[i] - durations.duration(i as u32, cycle))
                .collect();
            let max = total.iter().copied().max().unwrap_or(0);
            total.iter().map(|&t| max - t).collect()
        }
        Priority::GlobalFixed => {
            // One static rank per node, assigned before the run: ascending
            // depth, then longest remaining path, then node id. The rank
            // itself is the key.
            let remaining = remaining_path();
            let mut depth = vec![0u32; n];
            for &node in graph.queue() {
                for &p in graph.preds(node) {
                    depth[node as usize] = depth[node as usize].max(depth[p as usize] + 1);
                }
            }
            let mut order: Vec<u32> = (0..n as u32).collect();
            order.sort_by_key(|&i| (depth[i as usize], Reverse(remaining[i as usize]), i));
            let mut k = vec![0u64; n];
            for (rank, &node) in order.iter().enumerate() {
                k[node as usize] = rank as u64;
            }
            k
        }
    };

    let mut pending: Vec<usize> = graph.preds_counts();
    // Ready heap: (key, node), min-first via Reverse.
    let mut ready: BinaryHeap<Reverse<(u64, u32)>> = graph
        .sources()
        .iter()
        .map(|&s| Reverse((key[s as usize], s)))
        .collect();
    // Running heap: (end_time, proc, node), min-first.
    let mut running: BinaryHeap<Reverse<(u64, u32, u32)>> = BinaryHeap::new();
    let mut free_procs: Vec<u32> = (0..procs).rev().collect();
    let mut now = 0u64;
    let mut entries = Vec::with_capacity(n);

    loop {
        // Start every ready node we have a processor for.
        while !ready.is_empty() && !free_procs.is_empty() {
            let Reverse((_, node)) = ready.pop().expect("nonempty");
            let proc = free_procs.pop().expect("nonempty");
            let end = now + durations.duration(node, cycle);
            entries.push(ScheduleEntry {
                node,
                proc,
                start_ns: now,
                end_ns: end,
            });
            running.push(Reverse((end, proc, node)));
        }
        // Advance to the next completion.
        let Some(Reverse((end, proc, node))) = running.pop() else {
            break;
        };
        now = end;
        free_procs.push(proc);
        for &s in graph.succs(node) {
            pending[s as usize] -= 1;
            if pending[s as usize] == 0 {
                ready.push(Reverse((key[s as usize], s)));
            }
        }
        // Drain simultaneous completions so their successors are all ready
        // before the next start round.
        while let Some(&Reverse((e2, _, _))) = running.peek() {
            if e2 != now {
                break;
            }
            let Reverse((_, p2, n2)) = running.pop().expect("nonempty");
            free_procs.push(p2);
            for &s in graph.succs(n2) {
                pending[s as usize] -= 1;
                if pending[s as usize] == 0 {
                    ready.push(Reverse((key[s as usize], s)));
                }
            }
        }
    }
    Schedule { entries, procs }
}

impl SimGraph {
    /// Predecessor counts (helper for schedulers).
    pub(crate) fn preds_counts(&self) -> Vec<usize> {
        (0..self.len() as u32)
            .map(|n| self.preds(n).len())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earliest::earliest_start;

    fn diamond() -> SimGraph {
        SimGraph::synthetic(vec![vec![], vec![0], vec![0], vec![1, 2]])
    }

    #[test]
    fn one_proc_equals_serial_sum() {
        let g = diamond();
        let d = DurationModel::Constant(vec![10, 20, 5, 8]);
        let s = list_schedule(&g, &d, 0, 1);
        assert!(s.is_valid(&g));
        assert_eq!(s.makespan_ns(), 43);
        assert_eq!(s.max_concurrency(), 1);
    }

    #[test]
    fn two_procs_reach_critical_path() {
        let g = diamond();
        let d = DurationModel::Constant(vec![10, 20, 5, 8]);
        let s = list_schedule(&g, &d, 0, 2);
        assert!(s.is_valid(&g));
        assert_eq!(s.makespan_ns(), 38); // same as infinite procs
    }

    #[test]
    fn constrained_never_beats_unconstrained() {
        // Random-ish layered graph.
        let mut preds: Vec<Vec<u32>> = Vec::new();
        for i in 0u32..40 {
            let ps: Vec<u32> = (0..i).filter(|p| (p * 7 + i) % 11 == 0).collect();
            preds.push(ps);
        }
        let g = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..40).map(|i| 10 + (i * 13) % 50).collect());
        let inf = earliest_start(&g, &d, 0).makespan_ns;
        let mut last = u64::MAX;
        for procs in [1u32, 2, 3, 4, 8, 16] {
            let s = list_schedule(&g, &d, 0, procs);
            assert!(s.is_valid(&g), "procs={procs}");
            let m = s.makespan_ns();
            assert!(m >= inf, "procs={procs}: {m} < {inf}");
            // More processors never hurt in this scheduler.
            assert!(m <= last, "procs={procs}");
            last = m;
        }
    }

    #[test]
    fn respects_processor_limit() {
        let mut preds: Vec<Vec<u32>> = (0..10).map(|_| vec![]).collect();
        preds.push((0..10).collect());
        let g = SimGraph::synthetic(preds);
        let d = DurationModel::Constant(vec![10; 11]);
        let s = list_schedule(&g, &d, 0, 3);
        assert!(s.is_valid(&g));
        assert!(s.max_concurrency() <= 3);
        // 10 tasks over 3 procs: ceil(10/3)*10 + 10 = 50.
        assert_eq!(s.makespan_ns(), 50);
    }

    #[test]
    fn critical_path_priority_helps_on_skewed_graphs() {
        // One long chain + several short independent nodes: CP priority
        // starts the chain immediately; queue order burns both processors
        // on the shorties first and delays the chain.
        let mut preds: Vec<Vec<u32>> = vec![vec![]; 4]; // 4 shorties
        preds.push(vec![]); // chain head (node 4)
        preds.push(vec![4]);
        preds.push(vec![5]);
        let g = SimGraph::synthetic(preds);
        let mut dur = vec![30u64; 4];
        dur.extend([50, 50, 50]);
        let d = DurationModel::Constant(dur);
        let cp = list_schedule_with(&g, &d, 0, 2, Priority::CriticalPath);
        let qo = list_schedule_with(&g, &d, 0, 2, Priority::QueueOrder);
        assert!(cp.is_valid(&g) && qo.is_valid(&g));
        assert!(cp.makespan_ns() <= qo.makespan_ns());
        assert_eq!(cp.makespan_ns(), 150);
    }

    #[test]
    fn all_priorities_produce_valid_schedules() {
        // Random-ish layered graph: every rule must yield a dependency- and
        // resource-valid schedule no slower than serial and no faster than
        // the unconstrained bound.
        let mut preds: Vec<Vec<u32>> = Vec::new();
        for i in 0u32..50 {
            let ps: Vec<u32> = (0..i).filter(|p| (p * 9 + i * 4) % 13 == 0).collect();
            preds.push(ps);
        }
        let g = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..50).map(|i| 5 + (i * 17) % 60).collect());
        let inf = earliest_start(&g, &d, 0).makespan_ns;
        for pr in Priority::ALL {
            let s = list_schedule_with(&g, &d, 0, 3, pr);
            assert!(s.is_valid(&g), "{}", pr.label());
            assert!(s.max_concurrency() <= 3, "{}", pr.label());
            assert!(s.makespan_ns() >= inf, "{}", pr.label());
        }
    }

    #[test]
    fn longer_is_shorter_serializes_deep_chains() {
        // Same skewed shape as the CP test: LIS must also start the chain
        // immediately (its total-path key dominates the shorties).
        let mut preds: Vec<Vec<u32>> = vec![vec![]; 4];
        preds.push(vec![]);
        preds.push(vec![4]);
        preds.push(vec![5]);
        let g = SimGraph::synthetic(preds);
        let mut dur = vec![30u64; 4];
        dur.extend([50, 50, 50]);
        let d = DurationModel::Constant(dur);
        let lis = list_schedule_with(&g, &d, 0, 2, Priority::LongerIsShorter);
        assert!(lis.is_valid(&g));
        assert_eq!(lis.makespan_ns(), 150);
        // GFP's depth-first rank resumes the chain only after the current
        // column drains — strictly worse here, which is exactly the contrast
        // the ablation sweeps.
        let gfp = list_schedule_with(&g, &d, 0, 2, Priority::GlobalFixed);
        assert!(gfp.is_valid(&g));
        assert!(gfp.makespan_ns() >= lis.makespan_ns());
    }
}
