//! Schedule quality metrics: utilization, wait breakdown, load balance.
//!
//! The paper reads these quantities off Fig. 11 informally ("many active
//! waiting boxes", "the sleeping schedule has a longer total execution
//! time"); this module computes them exactly, for both simulated
//! [`Schedule`]s and measured `ScheduleTrace`s.

use crate::model::Schedule;
use djstar_core::trace::{ScheduleTrace, TraceKind};

/// Aggregate metrics of one schedule/cycle.
#[derive(Debug, Clone, PartialEq)]
pub struct ScheduleMetrics {
    /// Makespan (ns).
    pub makespan_ns: u64,
    /// Sum of all node execution times (ns).
    pub busy_ns: u64,
    /// Mean processor utilization in `[0, 1]`: busy / (makespan × procs).
    pub utilization: f64,
    /// Per-processor busy time (ns), index = processor.
    pub per_proc_busy_ns: Vec<u64>,
    /// Load imbalance: max per-proc busy / mean per-proc busy (1.0 = even).
    pub imbalance: f64,
    /// Nodes executed per processor.
    pub per_proc_nodes: Vec<usize>,
}

impl ScheduleMetrics {
    /// Compute metrics of a simulated schedule.
    pub fn of_schedule(s: &Schedule) -> Self {
        let procs = s.procs.max(1) as usize;
        let mut per_proc_busy_ns = vec![0u64; procs];
        let mut per_proc_nodes = vec![0usize; procs];
        for e in &s.entries {
            let p = e.proc as usize;
            if p < procs {
                per_proc_busy_ns[p] += e.end_ns - e.start_ns;
                per_proc_nodes[p] += 1;
            }
        }
        Self::finish(s.makespan_ns(), per_proc_busy_ns, per_proc_nodes)
    }

    /// Compute metrics of a measured trace (execution events only).
    pub fn of_trace(t: &ScheduleTrace) -> Self {
        let procs = t.workers.max(1) as usize;
        let mut per_proc_busy_ns = vec![0u64; procs];
        let mut per_proc_nodes = vec![0usize; procs];
        for e in &t.events {
            if e.kind == TraceKind::Exec {
                let p = e.worker as usize;
                if p < procs {
                    per_proc_busy_ns[p] += e.duration_ns();
                    per_proc_nodes[p] += 1;
                }
            }
        }
        Self::finish(t.makespan_ns(), per_proc_busy_ns, per_proc_nodes)
    }

    fn finish(makespan_ns: u64, per_proc_busy_ns: Vec<u64>, per_proc_nodes: Vec<usize>) -> Self {
        let procs = per_proc_busy_ns.len();
        let busy_ns: u64 = per_proc_busy_ns.iter().sum();
        let utilization = if makespan_ns == 0 {
            0.0
        } else {
            busy_ns as f64 / (makespan_ns as f64 * procs as f64)
        };
        let mean = busy_ns as f64 / procs as f64;
        let max = per_proc_busy_ns.iter().copied().max().unwrap_or(0) as f64;
        let imbalance = if mean > 0.0 { max / mean } else { 1.0 };
        ScheduleMetrics {
            makespan_ns,
            busy_ns,
            utilization,
            per_proc_busy_ns,
            imbalance,
            per_proc_nodes,
        }
    }
}

/// Wait-time breakdown of a measured trace (the gray boxes and white gaps
/// of Fig. 11, summed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitBreakdown {
    /// Total busy-wait (spin) time across workers (ns).
    pub busy_wait_ns: u64,
    /// Total sleep time across workers (ns).
    pub sleep_ns: u64,
    /// Total WS idle time across workers (ns).
    pub idle_ns: u64,
}

impl WaitBreakdown {
    /// Extract the breakdown from a trace.
    pub fn of_trace(t: &ScheduleTrace) -> Self {
        WaitBreakdown {
            busy_wait_ns: t.total_ns(TraceKind::BusyWait),
            sleep_ns: t.total_ns(TraceKind::Sleep),
            idle_ns: t.total_ns(TraceKind::Idle),
        }
    }

    /// Total non-executing time (ns).
    pub fn total_ns(&self) -> u64 {
        self.busy_wait_ns + self.sleep_ns + self.idle_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ScheduleEntry;
    use djstar_core::trace::TraceEvent;

    fn two_proc() -> Schedule {
        Schedule {
            procs: 2,
            entries: vec![
                ScheduleEntry {
                    node: 0,
                    proc: 0,
                    start_ns: 0,
                    end_ns: 60,
                },
                ScheduleEntry {
                    node: 1,
                    proc: 1,
                    start_ns: 0,
                    end_ns: 20,
                },
                ScheduleEntry {
                    node: 2,
                    proc: 1,
                    start_ns: 20,
                    end_ns: 40,
                },
            ],
        }
    }

    #[test]
    fn schedule_metrics_math() {
        let m = ScheduleMetrics::of_schedule(&two_proc());
        assert_eq!(m.makespan_ns, 60);
        assert_eq!(m.busy_ns, 100);
        assert!((m.utilization - 100.0 / 120.0).abs() < 1e-12);
        assert_eq!(m.per_proc_busy_ns, vec![60, 40]);
        assert_eq!(m.per_proc_nodes, vec![1, 2]);
        assert!((m.imbalance - 60.0 / 50.0).abs() < 1e-12);
    }

    #[test]
    fn trace_metrics_count_exec_only() {
        let t = ScheduleTrace {
            workers: 2,
            events: vec![
                TraceEvent {
                    node: 0,
                    worker: 0,
                    start_ns: 0,
                    end_ns: 50,
                    kind: TraceKind::Exec,
                },
                TraceEvent {
                    node: 1,
                    worker: 1,
                    start_ns: 0,
                    end_ns: 30,
                    kind: TraceKind::BusyWait,
                },
                TraceEvent {
                    node: 1,
                    worker: 1,
                    start_ns: 30,
                    end_ns: 50,
                    kind: TraceKind::Exec,
                },
            ],
        };
        let m = ScheduleMetrics::of_trace(&t);
        assert_eq!(m.busy_ns, 70);
        assert_eq!(m.per_proc_busy_ns, vec![50, 20]);
        let w = WaitBreakdown::of_trace(&t);
        assert_eq!(w.busy_wait_ns, 30);
        assert_eq!(w.sleep_ns, 0);
        assert_eq!(w.total_ns(), 30);
    }

    #[test]
    fn empty_schedule_is_benign() {
        let m = ScheduleMetrics::of_schedule(&Schedule {
            entries: vec![],
            procs: 4,
        });
        assert_eq!(m.utilization, 0.0);
        assert_eq!(m.imbalance, 1.0);
    }

    #[test]
    fn perfect_balance_has_imbalance_one() {
        let s = Schedule {
            procs: 2,
            entries: vec![
                ScheduleEntry {
                    node: 0,
                    proc: 0,
                    start_ns: 0,
                    end_ns: 50,
                },
                ScheduleEntry {
                    node: 1,
                    proc: 1,
                    start_ns: 0,
                    end_ns: 50,
                },
            ],
        };
        let m = ScheduleMetrics::of_schedule(&s);
        assert!((m.imbalance - 1.0).abs() < 1e-12);
        assert!((m.utilization - 1.0).abs() < 1e-12);
    }
}
