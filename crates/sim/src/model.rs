//! The simulation model: graph structure, duration sources and schedules.

use djstar_core::graph::{GraphTopology, NodeId, Section};

/// A self-contained copy of the graph structure used by the simulators
/// (decoupled from `djstar-core` executors so schedules can be simulated
/// for arbitrary synthetic graphs too).
#[derive(Debug, Clone)]
pub struct SimGraph {
    names: Vec<String>,
    sections: Vec<Section>,
    preds: Vec<Vec<u32>>,
    succs: Vec<Vec<u32>>,
    queue: Vec<u32>,
    sources: Vec<u32>,
}

impl SimGraph {
    /// Capture the structure of a validated core topology.
    pub fn from_topology(topo: &GraphTopology) -> Self {
        let n = topo.len();
        SimGraph {
            names: (0..n)
                .map(|i| topo.name(NodeId(i as u32)).to_string())
                .collect(),
            sections: (0..n).map(|i| topo.section(NodeId(i as u32))).collect(),
            preds: (0..n)
                .map(|i| topo.preds(NodeId(i as u32)).to_vec())
                .collect(),
            succs: (0..n)
                .map(|i| topo.succs(NodeId(i as u32)).to_vec())
                .collect(),
            queue: topo.queue().to_vec(),
            sources: topo.sources().to_vec(),
        }
    }

    /// Build a synthetic graph directly (tests, ablations). `preds[i]` are
    /// the predecessors of node `i`; the queue is computed by depth.
    pub fn synthetic(preds: Vec<Vec<u32>>) -> Self {
        let n = preds.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (i, ps) in preds.iter().enumerate() {
            for &p in ps {
                succs[p as usize].push(i as u32);
            }
        }
        // Depth by repeated relaxation (small graphs only).
        let mut depth = vec![0u32; n];
        for _ in 0..n {
            for i in 0..n {
                for &p in &preds[i] {
                    depth[i] = depth[i].max(depth[p as usize] + 1);
                }
            }
        }
        let mut queue: Vec<u32> = (0..n as u32).collect();
        queue.sort_by_key(|&i| depth[i as usize]);
        let sources = queue
            .iter()
            .copied()
            .filter(|&i| preds[i as usize].is_empty())
            .collect();
        SimGraph {
            names: (0..n).map(|i| format!("n{i}")).collect(),
            sections: vec![Section::Master; n],
            preds,
            succs,
            queue,
            sources,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when the graph is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Node name.
    pub fn name(&self, n: u32) -> &str {
        &self.names[n as usize]
    }

    /// Node section.
    pub fn section(&self, n: u32) -> Section {
        self.sections[n as usize]
    }

    /// Predecessors.
    pub fn preds(&self, n: u32) -> &[u32] {
        &self.preds[n as usize]
    }

    /// Successors.
    pub fn succs(&self, n: u32) -> &[u32] {
        &self.succs[n as usize]
    }

    /// The depth-sorted queue.
    pub fn queue(&self) -> &[u32] {
        &self.queue
    }

    /// Source nodes.
    pub fn sources(&self) -> &[u32] {
        &self.sources
    }
}

/// Per-node execution durations driving a simulation.
#[derive(Debug, Clone)]
pub enum DurationModel {
    /// Every node has a fixed duration (ns).
    Constant(Vec<u64>),
    /// Per-node sample vectors (ns); simulated cycle `c` uses sample
    /// `c % len` of every node, preserving the within-cycle correlation of
    /// the loud/quiet sections (all nodes of a loud cycle are slow
    /// together — the property behind the bimodal histograms of Fig. 9).
    Empirical(Vec<Vec<u64>>),
}

impl DurationModel {
    /// Duration of `node` in simulated cycle `cycle`.
    pub fn duration(&self, node: u32, cycle: usize) -> u64 {
        match self {
            DurationModel::Constant(v) => v[node as usize],
            DurationModel::Empirical(samples) => {
                let s = &samples[node as usize];
                if s.is_empty() {
                    0
                } else {
                    s[cycle % s.len()]
                }
            }
        }
    }

    /// Mean duration of `node` (ns).
    pub fn mean(&self, node: u32) -> f64 {
        match self {
            DurationModel::Constant(v) => v[node as usize] as f64,
            DurationModel::Empirical(samples) => {
                let s = &samples[node as usize];
                if s.is_empty() {
                    0.0
                } else {
                    s.iter().sum::<u64>() as f64 / s.len() as f64
                }
            }
        }
    }

    /// Collapse to the per-node means (what the paper's §IV simulation
    /// uses: "we measured the average vertex computation time").
    pub fn means(&self, nodes: usize) -> DurationModel {
        DurationModel::Constant(
            (0..nodes as u32)
                .map(|n| self.mean(n).round() as u64)
                .collect(),
        )
    }

    /// Number of distinct cycles available (1 for constant models).
    pub fn cycles(&self) -> usize {
        match self {
            DurationModel::Constant(_) => 1,
            DurationModel::Empirical(samples) => {
                samples.iter().map(|s| s.len()).max().unwrap_or(1).max(1)
            }
        }
    }
}

/// One node's placement in a simulated schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleEntry {
    /// Node id.
    pub node: u32,
    /// Processor / thread index.
    pub proc: u32,
    /// Start time (ns).
    pub start_ns: u64,
    /// End time (ns).
    pub end_ns: u64,
}

/// A complete simulated schedule of one cycle.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// All placements.
    pub entries: Vec<ScheduleEntry>,
    /// Number of processors used.
    pub procs: u32,
}

impl Schedule {
    /// Makespan: latest end time (ns).
    pub fn makespan_ns(&self) -> u64 {
        self.entries.iter().map(|e| e.end_ns).max().unwrap_or(0)
    }

    /// Entries of one processor, sorted by start.
    pub fn proc_timeline(&self, proc: u32) -> Vec<ScheduleEntry> {
        let mut v: Vec<ScheduleEntry> = self
            .entries
            .iter()
            .copied()
            .filter(|e| e.proc == proc)
            .collect();
        v.sort_by_key(|e| e.start_ns);
        v
    }

    /// Validates the schedule against `graph`: every node exactly once, no
    /// overlap on a processor, no node before its predecessors.
    pub fn is_valid(&self, graph: &SimGraph) -> bool {
        if self.entries.len() != graph.len() {
            return false;
        }
        let mut end_of = vec![None; graph.len()];
        for e in &self.entries {
            let Some(slot) = end_of.get_mut(e.node as usize) else {
                return false;
            };
            if slot.is_some() || e.end_ns < e.start_ns {
                return false;
            }
            *slot = Some(e.end_ns);
        }
        for e in &self.entries {
            for &p in graph.preds(e.node) {
                match end_of[p as usize] {
                    Some(pend) if pend <= e.start_ns => {}
                    _ => return false,
                }
            }
        }
        for proc in 0..self.procs {
            let tl = self.proc_timeline(proc);
            for w in tl.windows(2) {
                if w[1].start_ns < w[0].end_ns {
                    return false;
                }
            }
        }
        true
    }

    /// Concurrency profile: `(time, running)` points sampled at every
    /// start/end event, suitable for the Fig. 4 analysis.
    pub fn concurrency_profile(&self) -> Vec<(u64, u32)> {
        let mut events: Vec<(u64, i32)> = Vec::with_capacity(self.entries.len() * 2);
        for e in &self.entries {
            events.push((e.start_ns, 1));
            events.push((e.end_ns, -1));
        }
        events.sort();
        let mut profile = Vec::new();
        let mut running = 0i32;
        let mut i = 0;
        while i < events.len() {
            let t = events[i].0;
            while i < events.len() && events[i].0 == t {
                running += events[i].1;
                i += 1;
            }
            profile.push((t, running.max(0) as u32));
        }
        profile
    }

    /// Maximum concurrency reached.
    pub fn max_concurrency(&self) -> u32 {
        self.concurrency_profile()
            .iter()
            .map(|&(_, c)| c)
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// diamond: 0 → {1, 2} → 3
    pub(crate) fn diamond() -> SimGraph {
        SimGraph::synthetic(vec![vec![], vec![0], vec![0], vec![1, 2]])
    }

    #[test]
    fn synthetic_structure() {
        let g = diamond();
        assert_eq!(g.len(), 4);
        assert_eq!(g.sources(), &[0]);
        assert_eq!(g.succs(0), &[1, 2]);
        assert_eq!(g.queue(), &[0, 1, 2, 3]);
    }

    #[test]
    fn constant_durations() {
        let m = DurationModel::Constant(vec![10, 20, 30]);
        assert_eq!(m.duration(1, 99), 20);
        assert_eq!(m.mean(2), 30.0);
        assert_eq!(m.cycles(), 1);
    }

    #[test]
    fn empirical_durations_cycle_round_robin() {
        let m = DurationModel::Empirical(vec![vec![10, 20], vec![5, 7]]);
        assert_eq!(m.duration(0, 0), 10);
        assert_eq!(m.duration(0, 1), 20);
        assert_eq!(m.duration(0, 2), 10);
        assert_eq!(m.mean(1), 6.0);
        assert_eq!(m.cycles(), 2);
        let means = m.means(2);
        assert_eq!(means.duration(0, 5), 15);
    }

    #[test]
    fn schedule_validation() {
        let g = diamond();
        let ok = Schedule {
            procs: 2,
            entries: vec![
                ScheduleEntry {
                    node: 0,
                    proc: 0,
                    start_ns: 0,
                    end_ns: 10,
                },
                ScheduleEntry {
                    node: 1,
                    proc: 0,
                    start_ns: 10,
                    end_ns: 20,
                },
                ScheduleEntry {
                    node: 2,
                    proc: 1,
                    start_ns: 10,
                    end_ns: 25,
                },
                ScheduleEntry {
                    node: 3,
                    proc: 0,
                    start_ns: 25,
                    end_ns: 30,
                },
            ],
        };
        assert!(ok.is_valid(&g));
        assert_eq!(ok.makespan_ns(), 30);
        assert_eq!(ok.max_concurrency(), 2);

        let mut bad = ok.clone();
        bad.entries[3].start_ns = 20; // before pred 2 ends
        assert!(!bad.is_valid(&g));

        let mut overlap = ok.clone();
        overlap.entries[1].proc = 1;
        overlap.entries[1].start_ns = 5; // overlaps node 0? different proc - overlaps pred though
        assert!(!overlap.is_valid(&g));
    }

    #[test]
    fn concurrency_profile_counts() {
        let s = Schedule {
            procs: 2,
            entries: vec![
                ScheduleEntry {
                    node: 0,
                    proc: 0,
                    start_ns: 0,
                    end_ns: 10,
                },
                ScheduleEntry {
                    node: 1,
                    proc: 1,
                    start_ns: 5,
                    end_ns: 15,
                },
            ],
        };
        let p = s.concurrency_profile();
        assert_eq!(p, vec![(0, 1), (5, 2), (10, 1), (15, 0)]);
    }
}
