//! Simulated network mirror: E17's dropout lower-bound oracle.
//!
//! `djstar_core::net::NetFaultPlan` draws are pure functions of
//! `(seed, cycle, stream)`, so the simulator can replay a trace
//! clairvoyantly — it knows every packet's fate the moment it is sent —
//! and answer the question a live jitter buffer cannot: *which dropouts
//! were unavoidable, and which did the depth policy cause?*
//!
//! Two bounds matter:
//!
//! * [`lost_packets`] — packets no copy of which ever arrives. No buffer
//!   at any depth recovers them; this is the floor every strategy's
//!   concealment count is gated against.
//! * [`dropouts_at_depth`] — a clairvoyant fixed-depth-`D` receiver plays
//!   seq `s` at cycle `s + D` and drops it iff its first copy arrives
//!   later than that (or never). Any *causal* buffer at the same depth
//!   drops at least these packets, so the per-depth profile
//!   ([`dropout_by_depth`]) bounds the latency/dropout trade the adaptive
//!   policy navigates, and [`min_adequate_depth`] is the rung a perfect
//!   policy would settle on.

use djstar_core::net::NetFaultPlan;

/// Packets of `stream` sent in `0..cycles` that are outright lost — no
/// copy arrives at any depth. The unavoidable-dropout lower bound.
pub fn lost_packets(plan: &NetFaultPlan, stream: u32, cycles: u64) -> usize {
    (0..cycles).filter(|&c| plan.lost(c, stream)).count()
}

/// Earliest arrival cycle of the packet `stream` sends in `cycle`, or
/// `None` when it is lost. The duplicate copy never beats the original,
/// so this is simply send time plus the drawn delay.
pub fn earliest_arrival(plan: &NetFaultPlan, cycle: u64, stream: u32) -> Option<u64> {
    plan.delay_of(cycle, stream).map(|d| cycle + d as u64)
}

/// Dropouts of a clairvoyant fixed-depth-`depth` receiver over
/// `0..cycles`: seq `s` must play at cycle `s + depth`, so it drops iff
/// its first copy arrives after that (or never). Monotone non-increasing
/// in `depth`, with floor [`lost_packets`].
pub fn dropouts_at_depth(plan: &NetFaultPlan, stream: u32, depth: u32, cycles: u64) -> usize {
    (0..cycles)
        .filter(|&s| match earliest_arrival(plan, s, stream) {
            Some(at) => at > s + depth as u64,
            None => true,
        })
        .count()
}

/// Clairvoyant dropout count per depth `0..=max_depth` (index = depth).
/// The latency axis is implicit: depth *is* the added latency in cycles.
pub fn dropout_by_depth(
    plan: &NetFaultPlan,
    stream: u32,
    max_depth: u32,
    cycles: u64,
) -> Vec<usize> {
    (0..=max_depth)
        .map(|d| dropouts_at_depth(plan, stream, d, cycles))
        .collect()
}

/// The shallowest depth whose clairvoyant dropouts are within
/// `tolerance` of the unavoidable floor — the rung a perfect adaptive
/// policy would settle on. Falls back to the plan's full delay horizon
/// when no shallower rung suffices.
pub fn min_adequate_depth(plan: &NetFaultPlan, stream: u32, cycles: u64, tolerance: usize) -> u32 {
    let floor = lost_packets(plan, stream, cycles);
    let horizon = plan.max_delay();
    (0..=horizon)
        .find(|&d| dropouts_at_depth(plan, stream, d, cycles) <= floor + tolerance)
        .unwrap_or(horizon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy() -> NetFaultPlan {
        NetFaultPlan {
            base_delay: 1,
            jitter: 3,
            loss_rate: 0.05,
            dup_rate: 0.02,
            reorder_rate: 0.05,
            reorder_extra: 4,
            ..NetFaultPlan::quiet(0xE17)
        }
    }

    #[test]
    fn quiet_plan_has_no_dropouts_past_its_base_delay() {
        let plan = NetFaultPlan {
            base_delay: 2,
            ..NetFaultPlan::quiet(9)
        };
        assert_eq!(lost_packets(&plan, 0, 500), 0);
        let profile = dropout_by_depth(&plan, 0, 4, 500);
        // Depth below base_delay misses everything; at base_delay the
        // stream is perfect.
        assert_eq!(profile[0], 500);
        assert_eq!(profile[1], 500);
        for d in plan.base_delay..=4 {
            assert_eq!(profile[d as usize], 0, "depth {d}");
        }
        assert_eq!(min_adequate_depth(&plan, 0, 500, 0), plan.base_delay);
    }

    #[test]
    fn dropouts_are_monotone_in_depth_with_the_loss_floor() {
        let plan = lossy();
        let cycles = 2000;
        let floor = lost_packets(&plan, 2, cycles);
        assert!(floor > 0, "5% loss over 2000 cycles must lose packets");
        let profile = dropout_by_depth(&plan, 2, plan.max_delay(), cycles);
        for w in profile.windows(2) {
            assert!(w[0] >= w[1], "profile must be non-increasing: {profile:?}");
        }
        assert_eq!(
            *profile.last().unwrap(),
            floor,
            "full-horizon depth must hit the unavoidable floor"
        );
    }

    #[test]
    fn oracle_is_deterministic_and_per_stream() {
        let plan = lossy();
        assert_eq!(
            dropout_by_depth(&plan, 1, 6, 1000),
            dropout_by_depth(&plan, 1, 6, 1000)
        );
        // Streams draw independently; at 5% loss over 1000 cycles two
        // streams agreeing exactly on every depth would be a seed bug.
        assert_ne!(
            dropout_by_depth(&plan, 1, 6, 1000),
            dropout_by_depth(&plan, 3, 6, 1000)
        );
    }

    #[test]
    fn adequate_depth_tracks_the_jitter_horizon() {
        let calm = NetFaultPlan {
            jitter: 1,
            ..lossy()
        };
        let wild = NetFaultPlan {
            jitter: 8,
            ..lossy()
        };
        let d_calm = min_adequate_depth(&calm, 0, 2000, 0);
        let d_wild = min_adequate_depth(&wild, 0, 2000, 0);
        assert!(
            d_calm < d_wild,
            "wilder jitter needs deeper buffers: {d_calm} vs {d_wild}"
        );
    }
}
