//! Virtual-time replica of the PLAN executor, and the compiler that turns
//! a simulated [`Schedule`] into the executor's [`ScheduleBlueprint`].
//!
//! The list scheduler (`sim::list`) produces the resource-constrained
//! schedule the paper calls "optimal" on four cores; [`compile_blueprint`]
//! freezes its per-processor timelines into a blueprint the real
//! `PlannedExecutor` can replay, and [`simulate_plan`] predicts what that
//! replay costs under an [`OverheadModel`]. PLAN's simulated advantage
//! over BUSY comes from two terms: list-scheduler placement instead of
//! round-robin (fewer convoy waits), and dependency checks only on the
//! compile-time-identified cross-worker waits instead of every
//! predecessor.

use crate::model::{DurationModel, Schedule, ScheduleEntry, SimGraph};
use crate::strategy::OverheadModel;
use djstar_core::{BlueprintError, ScheduleBlueprint};

/// Freeze a simulated schedule into a per-worker blueprint. Each processor
/// lane of `schedule` becomes one worker's static node order; cross-worker
/// dependencies become spin-check waits. Fails if the schedule does not
/// cover the graph exactly once or is not replayable (never the case for
/// `sim::list` output, which is validated by construction).
pub fn compile_blueprint(
    graph: &SimGraph,
    schedule: &Schedule,
) -> Result<ScheduleBlueprint, BlueprintError> {
    let preds: Vec<Vec<u32>> = (0..graph.len() as u32)
        .map(|i| graph.preds(i).to_vec())
        .collect();
    let assignments: Vec<Vec<(u32, u64)>> = (0..schedule.procs)
        .map(|p| {
            schedule
                .proc_timeline(p)
                .iter()
                .map(|e| (e.node, e.start_ns))
                .collect()
        })
        .collect();
    ScheduleBlueprint::from_node_preds(&preds, &assignments)
}

/// Simulate one cycle of the PLAN executor replaying `blueprint`.
///
/// Each virtual worker walks its precompiled slice in order. A node starts
/// once the worker reaches it (dispatch plus one dependency check per
/// *cross-worker* wait — same-worker predecessors cost nothing at runtime)
/// and every wait has finished; a worker that arrives early spins and
/// notices completion within one poll quantum, exactly like BUSY's wait
/// loop. Workers spin at the cycle barrier, so no initial wake latency.
pub fn simulate_plan(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
    blueprint: &ScheduleBlueprint,
    overhead: &OverheadModel,
) -> Schedule {
    let n = graph.len();
    let threads = blueprint.threads();
    assert_eq!(blueprint.len(), n, "blueprint does not cover the graph");
    const UNFINISHED: u64 = u64::MAX;
    let mut end = vec![UNFINISHED; n];
    let mut idx = vec![0usize; threads];
    let mut clock = vec![0u64; threads];
    let mut entries: Vec<ScheduleEntry> = Vec::with_capacity(n);
    let mut done = 0usize;
    while done < n {
        let mut progressed = false;
        for w in 0..threads {
            let slots = blueprint.worker(w);
            while idx[w] < slots.len() {
                let entry = &slots[idx[w]];
                let waits = entry.waits();
                // A wait on a node no other worker has simulated yet blocks
                // this lane until a later sweep (blueprint validation
                // guarantees the sweeps terminate).
                if waits.iter().any(|&p| end[p as usize] == UNFINISHED) {
                    break;
                }
                let avail =
                    clock[w] + overhead.dispatch_ns + overhead.dep_check_ns * waits.len() as u64;
                let deps_ready = waits.iter().map(|&p| end[p as usize]).max().unwrap_or(0);
                let start = if deps_ready > avail {
                    deps_ready + overhead.spin_poll_ns
                } else {
                    avail
                };
                let fin = start + durations.duration(entry.node, cycle);
                end[entry.node as usize] = fin;
                clock[w] = fin;
                entries.push(ScheduleEntry {
                    node: entry.node,
                    proc: w as u32,
                    start_ns: start,
                    end_ns: fin,
                });
                idx[w] += 1;
                done += 1;
                progressed = true;
            }
        }
        assert!(progressed, "plan deadlocked in simulation");
    }
    entries.sort_by_key(|e| (e.start_ns, e.proc));
    Schedule {
        entries,
        procs: threads as u32,
    }
}

/// Makespans of `cycles` consecutive simulated PLAN cycles.
pub fn simulate_plan_makespans(
    graph: &SimGraph,
    durations: &DurationModel,
    blueprint: &ScheduleBlueprint,
    overhead: &OverheadModel,
    cycles: usize,
) -> Vec<u64> {
    (0..cycles)
        .map(|c| simulate_plan(graph, durations, c, blueprint, overhead).makespan_ns())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::list_schedule;
    use crate::strategy::{simulate_strategy, SimStrategy};

    /// `w` parallel chains of length `l` into one sink (DJ-Star-shaped).
    fn chains(w: usize, l: usize) -> SimGraph {
        let mut preds: Vec<Vec<u32>> = Vec::new();
        for c in 0..w {
            for k in 0..l {
                if k == 0 {
                    preds.push(vec![]);
                } else {
                    preds.push(vec![(c * l + k - 1) as u32]);
                }
            }
        }
        let sink_preds: Vec<u32> = (0..w).map(|c| ((c + 1) * l - 1) as u32).collect();
        preds.push(sink_preds);
        SimGraph::synthetic(preds)
    }

    #[test]
    fn compiled_plan_is_valid_and_covers_every_node_once() {
        let g = chains(4, 5);
        let d = DurationModel::Constant((0..g.len() as u64).map(|i| 2_000 + i * 97).collect());
        let bound = list_schedule(&g, &d, 0, 4);
        let bp = compile_blueprint(&g, &bound).unwrap();
        assert_eq!(bp.threads(), 4);
        assert_eq!(bp.len(), g.len());
        let s = simulate_plan(&g, &d, 0, &bp, &OverheadModel::default_host());
        assert!(s.is_valid(&g));
        let mut nodes: Vec<u32> = s.entries.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..g.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn zero_overhead_plan_reproduces_the_list_schedule_exactly() {
        let g = chains(3, 4);
        let d = DurationModel::Constant((0..g.len() as u64).map(|i| 1_000 + i * 211).collect());
        let bound = list_schedule(&g, &d, 0, 3);
        let bp = compile_blueprint(&g, &bound).unwrap();
        let s = simulate_plan(&g, &d, 0, &bp, &OverheadModel::zero());
        assert_eq!(s.makespan_ns(), bound.makespan_ns());
    }

    #[test]
    fn plan_stays_within_five_percent_of_the_list_bound() {
        let g = chains(4, 6);
        let d = DurationModel::Constant(
            (0..g.len() as u64)
                .map(|i| 10_000 + (i * 1_733) % 30_000)
                .collect(),
        );
        let bound = list_schedule(&g, &d, 0, 4);
        let bp = compile_blueprint(&g, &bound).unwrap();
        let plan = simulate_plan(&g, &d, 0, &bp, &OverheadModel::default_host()).makespan_ns();
        assert!(plan >= bound.makespan_ns());
        assert!(
            plan as f64 <= bound.makespan_ns() as f64 * 1.05,
            "plan {plan} > 1.05 x bound {}",
            bound.makespan_ns()
        );
    }

    #[test]
    fn plan_beats_simulated_busy() {
        let g = chains(4, 6);
        let d = DurationModel::Constant(
            (0..g.len() as u64)
                .map(|i| 5_000 + (i * 2_311) % 20_000)
                .collect(),
        );
        let oh = OverheadModel::default_host();
        for threads in [2usize, 4] {
            let busy = simulate_strategy(&g, &d, 0, threads, SimStrategy::Busy, &oh).makespan_ns();
            let bound = list_schedule(&g, &d, 0, threads as u32);
            let bp = compile_blueprint(&g, &bound).unwrap();
            let plan = simulate_plan(&g, &d, 0, &bp, &oh).makespan_ns();
            assert!(plan <= busy, "t={threads}: plan {plan} > busy {busy}");
        }
    }

    #[test]
    fn makespans_track_empirical_cycles() {
        let g = SimGraph::synthetic(vec![vec![], vec![0], vec![0], vec![1, 2]]);
        let d = DurationModel::Empirical(vec![
            vec![1_000, 9_000],
            vec![2_000, 18_000],
            vec![500, 4_500],
            vec![800, 7_200],
        ]);
        let bound = list_schedule(&g, &d, 0, 2);
        let bp = compile_blueprint(&g, &bound).unwrap();
        let ms = simulate_plan_makespans(&g, &d, &bp, &OverheadModel::zero(), 4);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0], ms[2]);
        assert_eq!(ms[1], ms[3]);
        assert!(ms[1] > ms[0]);
    }
}
