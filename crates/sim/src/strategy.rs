//! Virtual-time replicas of the BUSY, SLEEP and WS executors (Fig. 12
//! methodology, extended to all three strategies).
//!
//! The paper validates its BUSY implementation by re-implementing the
//! strategy *inside* the simulator and comparing simulated against measured
//! schedules (§VI, Fig. 12). These simulators do the same: they replicate
//! each strategy's scheduling logic in virtual time — round-robin static
//! assignment with spin-quantized waits (BUSY), the same assignment with a
//! park/wake latency (SLEEP), and an event-driven deque simulation with
//! steal and queue costs (WS) — parameterized by an [`OverheadModel`] whose
//! constants the `overheads` Criterion bench measures on the host.
//!
//! Because the evaluation host of this reproduction has a single vCPU,
//! these simulators (fed with per-node durations measured on the real
//! engine) are what regenerate the paper's parallel results.

use crate::model::{DurationModel, Schedule, ScheduleEntry, SimGraph};
use djstar_core::graph::Section;

/// The three parallel strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimStrategy {
    /// Busy-waiting (§V-A).
    Busy,
    /// Thread-sleeping (§V-B).
    Sleep,
    /// Work-stealing (§V-C).
    Steal,
}

impl SimStrategy {
    /// Paper label.
    pub fn label(self) -> &'static str {
        match self {
            SimStrategy::Busy => "BUSY",
            SimStrategy::Sleep => "SLEEP",
            SimStrategy::Steal => "WS",
        }
    }

    /// All strategies.
    pub const ALL: [SimStrategy; 3] = [SimStrategy::Busy, SimStrategy::Sleep, SimStrategy::Steal];
}

/// Scheduling-overhead constants (ns). Defaults are typical Linux/x86-64
/// values; the `overheads` bench measures host-specific ones.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadModel {
    /// Fixed cost of advancing to / dispatching the next node.
    pub dispatch_ns: u64,
    /// Cost of checking one predecessor's completion flag.
    pub dep_check_ns: u64,
    /// Busy-wait polling granularity: a spinning thread notices a
    /// completed dependency within this quantum.
    pub spin_poll_ns: u64,
    /// Park → unpark → running latency (the cost SLEEP pays per sleep and
    /// WS pays per idle period).
    pub wake_ns: u64,
    /// Registering as a node's waiter before sleeping.
    pub sleep_register_ns: u64,
    /// One deque push or pop.
    pub queue_op_ns: u64,
    /// One steal attempt on a victim deque.
    pub steal_ns: u64,
}

impl OverheadModel {
    /// Typical host constants (Linux, recent x86-64).
    pub fn default_host() -> Self {
        OverheadModel {
            dispatch_ns: 80,
            dep_check_ns: 25,
            spin_poll_ns: 40,
            wake_ns: 9_000,
            sleep_register_ns: 150,
            queue_op_ns: 45,
            steal_ns: 220,
        }
    }

    /// A zero-overhead model (ideal machine; useful to compare against the
    /// list scheduler's bound).
    pub fn zero() -> Self {
        OverheadModel {
            dispatch_ns: 0,
            dep_check_ns: 0,
            spin_poll_ns: 0,
            wake_ns: 0,
            sleep_register_ns: 0,
            queue_op_ns: 0,
            steal_ns: 0,
        }
    }
}

/// Work-stealing design choices (§V-C), exposed for the ablation studies
/// in DESIGN.md §5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WsConfig {
    /// Seed source nodes to the thread of their deck section (the paper's
    /// data-locality choice) instead of plain round-robin.
    pub seed_by_section: bool,
    /// Owners pop newest-first (LIFO, the paper's cache-locality choice)
    /// instead of oldest-first.
    pub lifo_local: bool,
}

impl Default for WsConfig {
    fn default() -> Self {
        WsConfig {
            seed_by_section: true,
            lifo_local: true,
        }
    }
}

/// Simulate one cycle of `strategy` on `threads` virtual cores.
pub fn simulate_strategy(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
    threads: usize,
    strategy: SimStrategy,
    overhead: &OverheadModel,
) -> Schedule {
    assert!(threads >= 1, "need at least one thread");
    match strategy {
        SimStrategy::Busy => simulate_static(graph, durations, cycle, threads, overhead, false),
        SimStrategy::Sleep => simulate_static(graph, durations, cycle, threads, overhead, true),
        SimStrategy::Steal => simulate_ws(
            graph,
            durations,
            cycle,
            threads,
            overhead,
            WsConfig::default(),
        ),
    }
}

/// Simulate the hybrid spin-then-park extension strategy (ablations):
/// static round-robin assignment; a blocked thread spins for up to
/// `spin_budget_ns` of virtual time and parks only for longer waits.
pub fn simulate_hybrid(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
    threads: usize,
    overhead: &OverheadModel,
    spin_budget_ns: u64,
) -> Schedule {
    assert!(threads >= 1, "need at least one thread");
    let n = graph.len();
    let mut end = vec![0u64; n];
    let mut thread_time: Vec<u64> = (0..threads)
        .map(|t| if t != 0 { overhead.wake_ns } else { 0 })
        .collect();
    let mut entries = Vec::with_capacity(n);
    for (k, &node) in graph.queue().iter().enumerate() {
        let t = k % threads;
        let preds = graph.preds(node);
        let avail =
            thread_time[t] + overhead.dispatch_ns + overhead.dep_check_ns * preds.len() as u64;
        let deps_ready = preds.iter().map(|&p| end[p as usize]).max().unwrap_or(0);
        let start = if deps_ready > avail {
            let wait = deps_ready - avail;
            if wait <= spin_budget_ns {
                // Caught while spinning.
                deps_ready + overhead.spin_poll_ns
            } else {
                // Spun through the budget, then parked and was woken.
                deps_ready + overhead.sleep_register_ns + overhead.wake_ns
            }
        } else {
            avail
        };
        let fin = start + durations.duration(node, cycle);
        end[node as usize] = fin;
        // Hybrid must signal successors like SLEEP (a parked waiter may
        // exist behind any dependency).
        thread_time[t] = fin
            + (overhead.dep_check_ns + overhead.sleep_register_ns / 4)
                * graph.succs(node).len() as u64;
        entries.push(ScheduleEntry {
            node,
            proc: t as u32,
            start_ns: start,
            end_ns: fin,
        });
    }
    Schedule {
        entries,
        procs: threads as u32,
    }
}

/// Simulate work-stealing with explicit design choices (ablations).
pub fn simulate_ws_config(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
    threads: usize,
    overhead: &OverheadModel,
    config: WsConfig,
) -> Schedule {
    assert!(threads >= 1, "need at least one thread");
    simulate_ws(graph, durations, cycle, threads, overhead, config)
}

/// Makespans of `cycles` consecutive simulated cycles (the series behind
/// Table I and the histograms).
pub fn simulate_makespans(
    graph: &SimGraph,
    durations: &DurationModel,
    threads: usize,
    strategy: SimStrategy,
    overhead: &OverheadModel,
    cycles: usize,
) -> Vec<u64> {
    (0..cycles)
        .map(|c| simulate_strategy(graph, durations, c, threads, strategy, overhead).makespan_ns())
        .collect()
}

/// BUSY and SLEEP share the static round-robin assignment; they differ only
/// in what a blocked thread costs.
fn simulate_static(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
    threads: usize,
    overhead: &OverheadModel,
    sleeping: bool,
) -> Schedule {
    let n = graph.len();
    let mut end = vec![0u64; n];
    // Non-driver workers must first be woken for the new cycle in the
    // sleeping strategy; busy-waiting workers spin at the barrier and
    // start immediately.
    let mut thread_time: Vec<u64> = (0..threads)
        .map(|t| {
            if sleeping && t != 0 {
                overhead.wake_ns
            } else {
                0
            }
        })
        .collect();
    let mut entries = Vec::with_capacity(n);
    // Queue order is a topological order and each thread's assigned nodes
    // appear in queue order, so a single pass computes every timestamp.
    for (k, &node) in graph.queue().iter().enumerate() {
        let t = k % threads;
        let preds = graph.preds(node);
        let avail =
            thread_time[t] + overhead.dispatch_ns + overhead.dep_check_ns * preds.len() as u64;
        let deps_ready = preds.iter().map(|&p| end[p as usize]).max().unwrap_or(0);
        let start = if deps_ready > avail {
            if sleeping {
                // Register as waiter, park, and pay the wake latency after
                // the last predecessor signals.
                deps_ready + overhead.sleep_register_ns + overhead.wake_ns
            } else {
                // Spinning notices completion within one poll quantum.
                deps_ready + overhead.spin_poll_ns
            }
        } else {
            avail
        };
        let fin = start + durations.duration(node, cycle);
        end[node as usize] = fin;
        // SLEEP signals each successor after finishing (decrement + possible
        // wake call); BUSY has no notification duty — waiters poll.
        thread_time[t] = if sleeping {
            fin + (overhead.dep_check_ns + overhead.sleep_register_ns / 4)
                * graph.succs(node).len() as u64
        } else {
            fin
        };
        entries.push(ScheduleEntry {
            node,
            proc: t as u32,
            start_ns: start,
            end_ns: fin,
        });
    }
    Schedule {
        entries,
        procs: threads as u32,
    }
}

/// Which worker a section's source nodes are seeded to (mirrors
/// `djstar_core::exec::stealing::seed_target`).
fn seed_target(section: Section, threads: usize) -> usize {
    match section.deck_index() {
        Some(d) => d % threads,
        None => 4 % threads,
    }
}

/// A deque entry: the node plus the virtual time it became visible.
#[derive(Debug, Clone, Copy)]
struct WsEntry {
    node: u32,
    avail: u64,
}

/// Event-driven work-stealing simulation.
fn simulate_ws(
    graph: &SimGraph,
    durations: &DurationModel,
    cycle: usize,
    threads: usize,
    overhead: &OverheadModel,
    config: WsConfig,
) -> Schedule {
    let n = graph.len();
    let mut pending: Vec<usize> = (0..n as u32).map(|i| graph.preds(i).len()).collect();
    // Latest finish time among a node's already-simulated predecessors.
    // Threads are simulated in min-clock order, so a predecessor handled
    // *earlier in sequence* can still finish *later in wall-clock* than the
    // one whose decrement releases the node; the entry must not become
    // visible before every predecessor's completion.
    let mut ready_floor: Vec<u64> = vec![0; n];
    let mut deques: Vec<Vec<WsEntry>> = vec![Vec::new(); threads]; // back = newest
                                                                   // The master seeds the source nodes before the workers wake.
    let seed_cost = overhead.queue_op_ns * graph.sources().len() as u64;
    for (k, &src) in graph.sources().iter().enumerate() {
        let target = if config.seed_by_section {
            seed_target(graph.section(src), threads)
        } else {
            k % threads
        };
        deques[target].push(WsEntry {
            node: src,
            avail: 0,
        });
    }
    let mut thread_time: Vec<u64> = (0..threads)
        .map(|t| if t == 0 { seed_cost } else { overhead.wake_ns })
        .collect();
    let mut entries: Vec<ScheduleEntry> = Vec::with_capacity(n);
    let mut done = 0usize;

    while done < n {
        // Act as the thread with the smallest clock.
        let t = (0..threads)
            .min_by_key(|&t| thread_time[t])
            .expect("at least one thread");
        let now = thread_time[t];

        // 1. Local pop: newest visible entry (LIFO) or oldest (ablation).
        let pos = if config.lifo_local {
            deques[t].iter().rposition(|e| e.avail <= now)
        } else {
            deques[t].iter().position(|e| e.avail <= now)
        };
        let local = pos.map(|i| deques[t].remove(i));
        let (node, start) = if let Some(e) = local {
            (e.node, now + overhead.queue_op_ns + overhead.dispatch_ns)
        } else {
            // 2. Steal sweep: oldest visible entry of the first non-empty
            //    victim, paying one steal attempt per scanned victim.
            let mut found = None;
            for (j, off) in (1..threads).enumerate() {
                let v = (t + off) % threads;
                if let Some(i) = deques[v].iter().position(|e| e.avail <= now) {
                    found = Some((deques[v].remove(i), (j + 1) as u64));
                    break;
                }
            }
            match found {
                Some((e, attempts)) => (
                    e.node,
                    now + attempts * overhead.steal_ns + overhead.dispatch_ns,
                ),
                None => {
                    // 3. Nothing visible: advance to the next instant work
                    //    can appear (a future entry or another thread's next
                    //    action), parking if the wait is long. Only threads
                    //    with a *strictly later* clock matter: a thread tied
                    //    at `now` is idle too (our steal sweep just proved
                    //    no deque holds work visible at `now`), and counting
                    //    it would make tied idle threads ping-pong forward
                    //    one nanosecond at a time.
                    let next_entry = deques
                        .iter()
                        .flat_map(|d| d.iter())
                        .map(|e| e.avail)
                        .filter(|&a| a > now)
                        .min();
                    let next_thread = (0..threads)
                        .filter(|&u| u != t)
                        .map(|u| thread_time[u])
                        .filter(|&x| x > now)
                        .min();
                    let target = match (next_entry, next_thread) {
                        (Some(a), Some(b)) => a.min(b),
                        (Some(a), None) => a,
                        (None, Some(b)) => b,
                        (None, None) => {
                            debug_assert!(done == n, "stuck with work outstanding");
                            break;
                        }
                    };
                    // "Sleeping in fact only occurs when there are solely
                    // nodes available with unfinished dependencies": a long
                    // gap means the worker parked and pays the wake latency.
                    let woke = if target.saturating_sub(now) > overhead.wake_ns / 2 {
                        overhead.wake_ns
                    } else {
                        0
                    };
                    thread_time[t] = target.max(now + 1) + woke;
                    continue;
                }
            }
        };

        let fin = start + durations.duration(node, cycle);
        entries.push(ScheduleEntry {
            node,
            proc: t as u32,
            start_ns: start,
            end_ns: fin,
        });
        done += 1;
        let mut clock = fin;
        for &s in graph.succs(node) {
            ready_floor[s as usize] = ready_floor[s as usize].max(fin);
            pending[s as usize] -= 1;
            if pending[s as usize] == 0 {
                clock += overhead.queue_op_ns;
                deques[t].push(WsEntry {
                    node: s,
                    avail: clock.max(ready_floor[s as usize] + overhead.queue_op_ns),
                });
            }
        }
        thread_time[t] = clock;
    }
    Schedule {
        entries,
        procs: threads as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::list_schedule;

    fn diamond() -> SimGraph {
        SimGraph::synthetic(vec![vec![], vec![0], vec![0], vec![1, 2]])
    }

    /// A DJ-Star-shaped synthetic graph: `w` parallel chains of length `l`
    /// from independent sources into one sink.
    fn chains(w: usize, l: usize) -> SimGraph {
        let mut preds: Vec<Vec<u32>> = Vec::new();
        for c in 0..w {
            for k in 0..l {
                if k == 0 {
                    preds.push(vec![]);
                } else {
                    preds.push(vec![(c * l + k - 1) as u32]);
                }
            }
        }
        let sink_preds: Vec<u32> = (0..w).map(|c| ((c + 1) * l - 1) as u32).collect();
        preds.push(sink_preds);
        SimGraph::synthetic(preds)
    }

    #[test]
    fn all_strategies_produce_valid_schedules() {
        let g = chains(4, 5);
        let d = DurationModel::Constant((0..g.len() as u64).map(|i| 500 + i * 37).collect());
        for strat in SimStrategy::ALL {
            for threads in [1, 2, 3, 4] {
                let s =
                    simulate_strategy(&g, &d, 0, threads, strat, &OverheadModel::default_host());
                assert!(s.is_valid(&g), "{strat:?} t={threads}");
                assert!(s.max_concurrency() <= threads as u32);
            }
        }
    }

    #[test]
    fn zero_overhead_busy_matches_round_robin_bound() {
        let g = diamond();
        let d = DurationModel::Constant(vec![10, 20, 5, 8]);
        // 2 threads, queue [0,1,2,3]: t0 gets {0,2}, t1 gets {1,3}.
        // t0: 0 @0-10, 2 @10-15. t1: 1 waits for 0 → 10-30; 3 waits → 30-38.
        let s = simulate_strategy(&g, &d, 0, 2, SimStrategy::Busy, &OverheadModel::zero());
        assert_eq!(s.makespan_ns(), 38);
        assert!(s.is_valid(&g));
    }

    #[test]
    fn sleep_is_never_faster_than_busy_with_same_inputs() {
        let g = chains(4, 6);
        let d = DurationModel::Constant(
            (0..g.len() as u64)
                .map(|i| 1_000 + (i * 311) % 5_000)
                .collect(),
        );
        let oh = OverheadModel::default_host();
        for threads in [2, 3, 4] {
            let busy = simulate_strategy(&g, &d, 0, threads, SimStrategy::Busy, &oh).makespan_ns();
            let sleep =
                simulate_strategy(&g, &d, 0, threads, SimStrategy::Sleep, &oh).makespan_ns();
            assert!(sleep >= busy, "t={threads}: sleep {sleep} < busy {busy}");
        }
    }

    #[test]
    fn strategies_never_beat_the_list_scheduler_bound() {
        let g = chains(4, 5);
        let d = DurationModel::Constant(
            (0..g.len() as u64)
                .map(|i| 2_000 + (i * 173) % 9_000)
                .collect(),
        );
        for threads in [1, 2, 4] {
            let bound = list_schedule(&g, &d, 0, threads as u32).makespan_ns();
            for strat in SimStrategy::ALL {
                let m = simulate_strategy(&g, &d, 0, threads, strat, &OverheadModel::zero())
                    .makespan_ns();
                // Zero-overhead strategies are at best as good as the list
                // scheduler (which is work-conserving with full knowledge).
                assert!(m + 1 >= bound, "{strat:?} t={threads}: {m} < bound {bound}");
            }
        }
    }

    #[test]
    fn more_threads_help_on_balanced_chains() {
        let g = chains(4, 8);
        let d = DurationModel::Constant(vec![10_000; g.len()]);
        let oh = OverheadModel::default_host();
        for strat in SimStrategy::ALL {
            let m1 = simulate_strategy(&g, &d, 0, 1, strat, &oh).makespan_ns();
            let m4 = simulate_strategy(&g, &d, 0, 4, strat, &oh).makespan_ns();
            let speedup = m1 as f64 / m4 as f64;
            assert!(
                speedup > 2.0,
                "{strat:?}: speedup {speedup:.2} (m1={m1}, m4={m4})"
            );
        }
    }

    #[test]
    fn sleep_pays_wake_latency_on_dependencies() {
        let g = diamond();
        let d = DurationModel::Constant(vec![10_000, 10_000, 100, 100]);
        let mut oh = OverheadModel::zero();
        oh.wake_ns = 5_000;
        oh.sleep_register_ns = 100;
        let busy = simulate_strategy(&g, &d, 0, 2, SimStrategy::Busy, &oh).makespan_ns();
        let sleep = simulate_strategy(&g, &d, 0, 2, SimStrategy::Sleep, &oh).makespan_ns();
        // SLEEP pays the initial worker wake plus per-dependency wakes.
        assert!(sleep > busy + 5_000, "busy {busy}, sleep {sleep}");
    }

    #[test]
    fn ws_executes_every_node_exactly_once() {
        let g = chains(3, 4);
        let d = DurationModel::Constant(vec![1_000; g.len()]);
        let s = simulate_strategy(
            &g,
            &d,
            0,
            4,
            SimStrategy::Steal,
            &OverheadModel::default_host(),
        );
        assert!(s.is_valid(&g));
        let mut nodes: Vec<u32> = s.entries.iter().map(|e| e.node).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, (0..g.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn ws_single_thread_runs_serially() {
        let g = diamond();
        let d = DurationModel::Constant(vec![10, 20, 5, 8]);
        let s = simulate_strategy(&g, &d, 0, 1, SimStrategy::Steal, &OverheadModel::zero());
        assert!(s.is_valid(&g));
        assert_eq!(s.max_concurrency(), 1);
        assert_eq!(s.makespan_ns(), 43);
    }

    #[test]
    fn hybrid_brackets_busy_and_sleep() {
        let g = chains(4, 6);
        let d = DurationModel::Constant(
            (0..g.len() as u64)
                .map(|i| 1_000 + (i * 509) % 8_000)
                .collect(),
        );
        let oh = OverheadModel::default_host();
        let busy = simulate_strategy(&g, &d, 0, 4, SimStrategy::Busy, &oh).makespan_ns();
        let sleep = simulate_strategy(&g, &d, 0, 4, SimStrategy::Sleep, &oh).makespan_ns();
        // Infinite budget ≈ BUSY except for the notify duty and the initial
        // worker wake; zero budget ≈ SLEEP.
        let inf = simulate_hybrid(&g, &d, 0, 4, &oh, u64::MAX).makespan_ns();
        let zero = simulate_hybrid(&g, &d, 0, 4, &oh, 0).makespan_ns();
        assert!(inf >= busy, "inf-budget hybrid {inf} < busy {busy}");
        assert!(
            zero >= sleep.min(inf),
            "zero-budget hybrid {zero} implausible"
        );
        assert!(inf <= sleep, "inf-budget hybrid {inf} > sleep {sleep}");
        // A mid budget lands between the extremes.
        let mid = simulate_hybrid(&g, &d, 0, 4, &oh, 5_000).makespan_ns();
        assert!(
            mid >= inf && mid <= zero.max(sleep),
            "mid {mid}, inf {inf}, zero {zero}"
        );
        // And all are valid schedules.
        assert!(simulate_hybrid(&g, &d, 0, 4, &oh, 5_000).is_valid(&g));
    }

    #[test]
    fn makespans_vary_with_empirical_durations() {
        let g = diamond();
        let d =
            DurationModel::Empirical(vec![vec![10, 100], vec![20, 200], vec![5, 50], vec![8, 80]]);
        let ms = simulate_makespans(&g, &d, 2, SimStrategy::Busy, &OverheadModel::zero(), 4);
        assert_eq!(ms.len(), 4);
        assert_eq!(ms[0], ms[2]);
        assert_eq!(ms[1], ms[3]);
        assert!(ms[1] > ms[0]);
    }
}
