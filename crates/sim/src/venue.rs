//! Schedulability bounds for a multi-session venue host.
//!
//! A venue server batches N independent APC graphs onto one shared worker
//! pool per sound-card period. Within a batch every pool worker walks the
//! session table in the same order, so the sessions' graph executions run
//! back-to-back on the shared lanes and the batch completes within the
//! *sum* of the per-session completion bounds — a Graham-style list bound
//! per session, summed across sessions. That gives a simple, sound
//! admission test:
//!
//! ```text
//! Σ session_bound_ns(s) ≤ deadline_ns × (1 − margin)
//! ```
//!
//! where each session's bound is its list-schedule makespan on the lane
//! count it was admitted with ([`list_schedule`]) plus the measured floor
//! of its non-graph phases (TP + GP + VC, which run on the driver and also
//! serialize across sessions). The bound is an over-approximation — real
//! batches overlap sessions across lanes and finish earlier — so a
//! schedulable-by-the-bound set is schedulable in practice, and the E18
//! harness gates on the converse: every rejection must be confirmed
//! unschedulable by this same oracle.

use crate::list::list_schedule;
use crate::model::{DurationModel, SimGraph};

/// Upper bound (ns) on one session's per-cycle cost on `threads` pool
/// lanes: the list-schedule makespan of its graph under `durations` plus
/// `aux_floor_ns`, the measured driver-side cost of its non-graph phases.
pub fn session_bound_ns(
    graph: &SimGraph,
    durations: &DurationModel,
    threads: u32,
    aux_floor_ns: u64,
) -> u64 {
    list_schedule(graph, durations, 0, threads).makespan_ns() + aux_floor_ns
}

/// The per-cycle budget (ns) a deadline leaves after the safety margin.
/// `margin` is a fraction in `[0, 1)`: 0.2 keeps 20 % headroom.
pub fn cycle_budget_ns(deadline_ns: u64, margin: f64) -> u64 {
    (deadline_ns as f64 * (1.0 - margin.clamp(0.0, 1.0))).max(0.0) as u64
}

/// Is a session set with these per-session bounds schedulable within
/// `deadline_ns` at safety `margin`?
pub fn admissible(bounds_ns: &[u64], deadline_ns: u64, margin: f64) -> bool {
    let total: u64 = bounds_ns.iter().fold(0u64, |a, &b| a.saturating_add(b));
    total <= cycle_budget_ns(deadline_ns, margin)
}

/// How many identical sessions of cost `bound_ns` fit the budget (0 when
/// even one does not).
pub fn max_sessions(bound_ns: u64, deadline_ns: u64, margin: f64) -> usize {
    if bound_ns == 0 {
        return usize::MAX;
    }
    (cycle_budget_ns(deadline_ns, margin) / bound_ns) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> SimGraph {
        SimGraph::synthetic(vec![vec![], vec![0], vec![0], vec![1, 2]])
    }

    #[test]
    fn bound_is_list_makespan_plus_floor() {
        let g = diamond();
        let d = DurationModel::Constant(vec![10, 20, 5, 8]);
        // 2 procs reach the critical path (38); +floor.
        assert_eq!(session_bound_ns(&g, &d, 2, 100), 138);
        // 1 proc serializes (43); +floor.
        assert_eq!(session_bound_ns(&g, &d, 1, 100), 143);
    }

    #[test]
    fn admission_is_a_sum_against_the_margined_deadline() {
        assert!(admissible(&[300, 300, 300], 1000, 0.1)); // 900 ≤ 900
        assert!(!admissible(&[300, 300, 301], 1000, 0.1)); // 901 > 900
        assert!(admissible(&[], 1000, 0.99));
        // Saturating sum: huge bounds never wrap into admissibility.
        assert!(!admissible(&[u64::MAX, 1], 1_000_000, 0.0));
        assert!(!admissible(&[u64::MAX, u64::MAX], 1_000_000, 0.0));
    }

    #[test]
    fn max_sessions_matches_admissible() {
        let n = max_sessions(300, 1000, 0.1);
        assert_eq!(n, 3);
        assert!(admissible(&vec![300; n], 1000, 0.1));
        assert!(!admissible(&vec![300; n + 1], 1000, 0.1));
    }
}
