//! Property-based tests for the schedule simulators on random DAGs:
//! validity, classic makespan orderings, and monotonicity.

use djstar_sim::earliest::earliest_start;
use djstar_sim::list::list_schedule;
use djstar_sim::model::{DurationModel, SimGraph};
use djstar_sim::strategy::{simulate_strategy, OverheadModel, SimStrategy};
use proptest::prelude::*;

fn dag_strategy(max_nodes: usize) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(prop::collection::vec(any::<bool>(), 0..max_nodes), 1..max_nodes)
        .prop_map(|masks| {
            masks
                .iter()
                .enumerate()
                .map(|(i, mask)| {
                    mask.iter()
                        .enumerate()
                        .filter(|&(j, &b)| j < i && b)
                        .map(|(j, _)| j as u32)
                        .collect()
                })
                .collect()
        })
}

fn durations_for(n: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..100_000, n..=n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn earliest_start_is_the_lower_bound(
        preds in dag_strategy(20),
        procs in 1u32..8,
    ) {
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..n as u64).map(|i| 10 + (i * 37) % 500).collect());
        let inf = earliest_start(&graph, &d, 0);
        prop_assert!(inf.schedule.is_valid(&graph));
        let s = list_schedule(&graph, &d, 0, procs);
        prop_assert!(s.is_valid(&graph));
        prop_assert!(s.makespan_ns() >= inf.makespan_ns);
        // One processor = serial sum.
        let serial = list_schedule(&graph, &d, 0, 1).makespan_ns();
        let sum: u64 = (0..n as u32).map(|i| d.duration(i, 0)).sum();
        prop_assert_eq!(serial, sum);
        prop_assert!(s.makespan_ns() <= serial);
    }

    #[test]
    fn graham_bound_holds_for_list_scheduling(preds in dag_strategy(16), procs in 1u32..6) {
        // List scheduling is within (2 - 1/m) of optimal; optimal >= max(
        // critical path, total/m). Check the implied bound against our
        // earliest-start and work totals.
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..n as u64).map(|i| 5 + (i * 97) % 300).collect());
        let cp = earliest_start(&graph, &d, 0).makespan_ns;
        let total: u64 = (0..n as u32).map(|i| d.duration(i, 0)).sum();
        let lower = cp.max(total.div_ceil(procs as u64));
        let s = list_schedule(&graph, &d, 0, procs).makespan_ns();
        prop_assert!(
            s as f64 <= lower as f64 * (2.0 - 1.0 / procs as f64) + 1.0,
            "makespan {s}, lower bound {lower}, procs {procs}"
        );
    }

    #[test]
    fn strategy_schedules_always_valid(
        preds in dag_strategy(16),
        threads in 1usize..6,
        strat_sel in 0usize..3,
    ) {
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..n as u64).map(|i| 100 + (i * 613) % 20_000).collect());
        let strat = SimStrategy::ALL[strat_sel];
        for oh in [OverheadModel::zero(), OverheadModel::default_host()] {
            let s = simulate_strategy(&graph, &d, 0, threads, strat, &oh);
            prop_assert!(s.is_valid(&graph), "{strat:?} t={threads}");
            prop_assert!(s.max_concurrency() <= threads as u32);
        }
    }

    #[test]
    fn zero_overhead_strategies_bounded_by_serial_and_critical_path(
        preds in dag_strategy(14),
        threads in 1usize..5,
    ) {
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..n as u64).map(|i| 50 + (i * 211) % 5_000).collect());
        let cp = earliest_start(&graph, &d, 0).makespan_ns;
        let serial: u64 = (0..n as u32).map(|i| d.duration(i, 0)).sum();
        for strat in SimStrategy::ALL {
            let m = simulate_strategy(&graph, &d, 0, threads, strat, &OverheadModel::zero())
                .makespan_ns();
            prop_assert!(m >= cp, "{strat:?} beat the critical path: {m} < {cp}");
            prop_assert!(m <= serial, "{strat:?} worse than serial: {m} > {serial}");
        }
    }

    #[test]
    fn overheads_never_reduce_makespan(
        preds in dag_strategy(12),
        threads in 1usize..5,
        strat_sel in 0usize..3,
        durations in durations_for(11),
    ) {
        // durations vector sized for the max node count; truncate.
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let mut dv = durations;
        dv.resize(n, 1_000);
        let d = DurationModel::Constant(dv);
        let strat = SimStrategy::ALL[strat_sel];
        let fast = simulate_strategy(&graph, &d, 0, threads, strat, &OverheadModel::zero())
            .makespan_ns();
        let slow = simulate_strategy(&graph, &d, 0, threads, strat, &OverheadModel::default_host())
            .makespan_ns();
        prop_assert!(slow >= fast);
    }
}
