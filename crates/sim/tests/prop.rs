//! Property-style tests for the schedule simulators on random DAGs:
//! validity, classic makespan orderings, and monotonicity. DAGs come from a
//! seeded [`SmallRng`] so every run is identical (the workspace builds
//! offline, without proptest).

use djstar_dsp::rng::SmallRng;
use djstar_sim::earliest::earliest_start;
use djstar_sim::list::list_schedule;
use djstar_sim::model::{DurationModel, SimGraph};
use djstar_sim::strategy::{simulate_strategy, OverheadModel, SimStrategy};

fn random_dag(rng: &mut SmallRng, max_nodes: usize) -> Vec<Vec<u32>> {
    let n = 1 + rng.below(max_nodes - 1);
    (0..n)
        .map(|i| (0..i as u32).filter(|_| rng.chance(0.4)).collect())
        .collect()
}

#[test]
fn earliest_start_is_the_lower_bound() {
    let mut rng = SmallRng::seed_from_u64(0xEA51);
    for _ in 0..32 {
        let preds = random_dag(&mut rng, 20);
        let procs = 1 + rng.below(7) as u32;
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..n as u64).map(|i| 10 + (i * 37) % 500).collect());
        let inf = earliest_start(&graph, &d, 0);
        assert!(inf.schedule.is_valid(&graph));
        let s = list_schedule(&graph, &d, 0, procs);
        assert!(s.is_valid(&graph));
        assert!(s.makespan_ns() >= inf.makespan_ns);
        // One processor = serial sum.
        let serial = list_schedule(&graph, &d, 0, 1).makespan_ns();
        let sum: u64 = (0..n as u32).map(|i| d.duration(i, 0)).sum();
        assert_eq!(serial, sum);
        assert!(s.makespan_ns() <= serial);
    }
}

#[test]
fn graham_bound_holds_for_list_scheduling() {
    // List scheduling is within (2 - 1/m) of optimal; optimal >= max(
    // critical path, total/m). Check the implied bound against our
    // earliest-start and work totals.
    let mut rng = SmallRng::seed_from_u64(0x6AA4);
    for _ in 0..32 {
        let preds = random_dag(&mut rng, 16);
        let procs = 1 + rng.below(5) as u32;
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..n as u64).map(|i| 5 + (i * 97) % 300).collect());
        let cp = earliest_start(&graph, &d, 0).makespan_ns;
        let total: u64 = (0..n as u32).map(|i| d.duration(i, 0)).sum();
        let lower = cp.max(total.div_ceil(procs as u64));
        let s = list_schedule(&graph, &d, 0, procs).makespan_ns();
        assert!(
            s as f64 <= lower as f64 * (2.0 - 1.0 / procs as f64) + 1.0,
            "makespan {s}, lower bound {lower}, procs {procs}"
        );
    }
}

#[test]
fn strategy_schedules_always_valid() {
    let mut rng = SmallRng::seed_from_u64(0x57A7);
    for _ in 0..32 {
        let preds = random_dag(&mut rng, 16);
        let threads = 1 + rng.below(5);
        let strat = SimStrategy::ALL[rng.below(SimStrategy::ALL.len())];
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..n as u64).map(|i| 100 + (i * 613) % 20_000).collect());
        for oh in [OverheadModel::zero(), OverheadModel::default_host()] {
            let s = simulate_strategy(&graph, &d, 0, threads, strat, &oh);
            assert!(s.is_valid(&graph), "{strat:?} t={threads}");
            assert!(s.max_concurrency() <= threads as u32);
        }
    }
}

#[test]
fn zero_overhead_strategies_bounded_by_serial_and_critical_path() {
    let mut rng = SmallRng::seed_from_u64(0xB0CD);
    for _ in 0..32 {
        let preds = random_dag(&mut rng, 14);
        let threads = 1 + rng.below(4);
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let d = DurationModel::Constant((0..n as u64).map(|i| 50 + (i * 211) % 5_000).collect());
        let cp = earliest_start(&graph, &d, 0).makespan_ns;
        let serial: u64 = (0..n as u32).map(|i| d.duration(i, 0)).sum();
        for strat in SimStrategy::ALL {
            let m = simulate_strategy(&graph, &d, 0, threads, strat, &OverheadModel::zero())
                .makespan_ns();
            assert!(m >= cp, "{strat:?} beat the critical path: {m} < {cp}");
            assert!(m <= serial, "{strat:?} worse than serial: {m} > {serial}");
        }
    }
}

#[test]
fn overheads_never_reduce_makespan() {
    let mut rng = SmallRng::seed_from_u64(0x0BEA);
    for _ in 0..32 {
        let preds = random_dag(&mut rng, 12);
        let threads = 1 + rng.below(4);
        let strat = SimStrategy::ALL[rng.below(SimStrategy::ALL.len())];
        let n = preds.len();
        let graph = SimGraph::synthetic(preds);
        let dv: Vec<u64> = (0..n).map(|_| rng.range_u64(1, 100_000)).collect();
        let d = DurationModel::Constant(dv);
        let fast =
            simulate_strategy(&graph, &d, 0, threads, strat, &OverheadModel::zero()).makespan_ns();
        let slow = simulate_strategy(
            &graph,
            &d,
            0,
            threads,
            strat,
            &OverheadModel::default_host(),
        )
        .makespan_ns();
        assert!(slow >= fast);
    }
}
