//! Chrome Trace Format export for flight-recorder windows.
//!
//! Renders a [`FlightWindow`] as a Chrome Trace Format (CTF) JSON object —
//! the `{"traceEvents": [...]}` dialect `chrome://tracing` and Perfetto's
//! legacy loader accept. Every span becomes a complete duration event
//! (`"ph":"X"`): `tid` is the worker lane, `ts`/`dur` are microsecond
//! floats (CTF's unit), `cat` is the span kind label, and `args` carries
//! the cycle and node so events stay greppable after export. Cycle stamps
//! are emitted under a separate `pid` so the per-cycle envelope renders as
//! its own track.
//!
//! The inverse, [`window_from_ctf`], reconstructs the window from parsed
//! JSON. Nanosecond timestamps below 2^53 survive the microsecond float
//! encoding exactly (`(ts * 1000).round()`), so export → parse → load is
//! lossless and the bench harness uses it as a gate.

use crate::json::Json;
use djstar_core::flight::{CycleStamp, FlightWindow, Span, SpanKind};

/// `pid` used for worker span events.
const PID_SPANS: u64 = 1;
/// `pid` used for per-cycle envelope events.
const PID_CYCLES: u64 = 2;

fn ns_to_us_f(ns: u64) -> f64 {
    ns as f64 / 1000.0
}

fn us_f_to_ns(us: f64) -> u64 {
    (us * 1000.0).round() as u64
}

/// Render `window` as a CTF JSON tree.
pub fn window_to_ctf(window: &FlightWindow) -> Json {
    let mut events: Vec<Json> = Vec::with_capacity(window.spans.len() + window.cycles.len());
    for sp in &window.spans {
        let name = if sp.node == Span::NO_NODE {
            sp.kind.label().to_string()
        } else {
            format!("n{}", sp.node)
        };
        events.push(Json::object([
            ("ph", Json::from("X")),
            ("pid", Json::from(PID_SPANS)),
            ("tid", Json::from(u64::from(sp.worker))),
            ("ts", Json::from(ns_to_us_f(sp.start_ns))),
            ("dur", Json::from(ns_to_us_f(sp.duration_ns()))),
            ("name", Json::from(name)),
            ("cat", Json::from(sp.kind.label())),
            (
                "args",
                Json::object([
                    ("cycle", Json::from(sp.cycle)),
                    (
                        "node",
                        if sp.node == Span::NO_NODE {
                            Json::Null
                        } else {
                            Json::from(u64::from(sp.node))
                        },
                    ),
                ]),
            ),
        ]));
    }
    for st in &window.cycles {
        events.push(Json::object([
            ("ph", Json::from("X")),
            ("pid", Json::from(PID_CYCLES)),
            ("tid", Json::from(0u64)),
            ("ts", Json::from(ns_to_us_f(st.start_ns))),
            ("dur", Json::from(ns_to_us_f(st.duration_ns()))),
            ("name", Json::from(format!("cycle {}", st.cycle))),
            ("cat", Json::from("cycle")),
            ("args", Json::object([("cycle", Json::from(st.cycle))])),
        ]));
    }
    Json::object([
        ("traceEvents", Json::Array(events)),
        ("displayTimeUnit", Json::from("ns")),
        (
            "otherData",
            Json::object([
                ("workers", Json::from(window.workers)),
                ("dropped_spans", Json::from(window.dropped_spans)),
                ("session", Json::from(u64::from(window.session))),
            ]),
        ),
    ])
}

/// Reconstruct a [`FlightWindow`] from a parsed CTF tree produced by
/// [`window_to_ctf`]. Events it did not write (unknown `cat`, non-`X`
/// phases) are rejected so a corrupted export fails loudly.
pub fn window_from_ctf(json: &Json) -> Result<FlightWindow, String> {
    let events = json
        .get("traceEvents")
        .and_then(Json::items)
        .ok_or("missing traceEvents array")?;
    let other = json.get("otherData").ok_or("missing otherData")?;
    let workers = other
        .get("workers")
        .and_then(Json::as_u64)
        .ok_or("missing otherData.workers")? as usize;
    let dropped_spans = other
        .get("dropped_spans")
        .and_then(Json::as_u64)
        .ok_or("missing otherData.dropped_spans")?;
    // Absent in pre-venue exports; default to the single-session id.
    let session = other.get("session").and_then(Json::as_u64).unwrap_or(0) as u32;
    let mut spans = Vec::new();
    let mut cycles = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        let bad = |what: &str| format!("event {i}: {what}");
        if ev.get("ph").and_then(Json::as_str) != Some("X") {
            return Err(bad("phase is not X"));
        }
        let ts = ev
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing ts"))?;
        let dur = ev
            .get("dur")
            .and_then(Json::as_f64)
            .ok_or_else(|| bad("missing dur"))?;
        let start_ns = us_f_to_ns(ts);
        let end_ns = start_ns + us_f_to_ns(dur);
        let cat = ev
            .get("cat")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing cat"))?;
        let args = ev.get("args").ok_or_else(|| bad("missing args"))?;
        let cycle = args
            .get("cycle")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing args.cycle"))?;
        if cat == "cycle" {
            cycles.push(CycleStamp {
                cycle,
                start_ns,
                end_ns,
            });
            continue;
        }
        let kind = SpanKind::from_label(cat).ok_or_else(|| bad("unknown span kind"))?;
        let worker = ev
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| bad("missing tid"))? as u32;
        let node = match args.get("node") {
            Some(Json::Null) | None => Span::NO_NODE,
            Some(v) => v.as_u64().ok_or_else(|| bad("bad args.node"))? as u32,
        };
        spans.push(Span {
            cycle,
            node,
            worker,
            start_ns,
            end_ns,
            kind,
        });
    }
    Ok(FlightWindow {
        workers,
        spans,
        cycles,
        dropped_spans,
        session,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_window() -> FlightWindow {
        FlightWindow {
            workers: 2,
            spans: vec![
                Span {
                    cycle: 3,
                    node: 5,
                    worker: 0,
                    start_ns: 1_000,
                    end_ns: 4_500,
                    kind: SpanKind::Exec,
                },
                Span {
                    cycle: 3,
                    node: Span::NO_NODE,
                    worker: 1,
                    start_ns: 1_234,
                    end_ns: 2_001,
                    kind: SpanKind::Fault,
                },
                Span {
                    cycle: 4,
                    node: 6,
                    worker: 1,
                    start_ns: 5_000,
                    end_ns: 5_003,
                    kind: SpanKind::BusyWait,
                },
            ],
            cycles: vec![
                CycleStamp {
                    cycle: 3,
                    start_ns: 900,
                    end_ns: 4_800,
                },
                CycleStamp {
                    cycle: 4,
                    start_ns: 4_900,
                    end_ns: 5_100,
                },
            ],
            dropped_spans: 7,
            session: 3,
        }
    }

    #[test]
    fn export_is_valid_json_with_trace_events() {
        let text = window_to_ctf(&sample_window()).render();
        let parsed = Json::parse(&text).unwrap();
        let events = parsed.get("traceEvents").and_then(Json::items).unwrap();
        // 3 spans + 2 cycle envelopes.
        assert_eq!(events.len(), 5);
        assert!(events
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("X")));
    }

    #[test]
    fn round_trip_is_lossless() {
        let w = sample_window();
        let text = window_to_ctf(&w).render();
        let back = window_from_ctf(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.workers, w.workers);
        assert_eq!(back.dropped_spans, w.dropped_spans);
        assert_eq!(back.spans, w.spans);
        assert_eq!(back.cycles, w.cycles);
        assert_eq!(back.session, w.session);
    }

    #[test]
    fn corrupted_exports_fail_loudly() {
        let w = sample_window();
        let mut j = window_to_ctf(&w);
        // Break the cat of the first event.
        if let Json::Object(pairs) = &mut j {
            if let Some((_, Json::Array(events))) =
                pairs.iter_mut().find(|(k, _)| k == "traceEvents")
            {
                if let Json::Object(ev) = &mut events[0] {
                    for (k, v) in ev.iter_mut() {
                        if k == "cat" {
                            *v = Json::from("bogus");
                        }
                    }
                }
            }
        }
        assert!(window_from_ctf(&j).is_err());
        assert!(window_from_ctf(&Json::object([("traceEvents", Json::Null)])).is_err());
    }
}
