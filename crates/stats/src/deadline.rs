//! Deadline accounting against the sound-card budget.
//!
//! DJ Star must hand a 128-sample buffer to the sound card every
//! `128 / 44100 s ≈ 2.9 ms`; an APC exceeding that budget distorts the audio
//! (§II–III). The paper reports "about five out of 10 K APC executions exceed
//! the deadline" on four cores (§VI). [`DeadlineTracker`] reproduces this
//! bookkeeping: it records per-cycle durations, counts misses, and reports
//! headroom statistics.

/// Records cycle durations against a fixed deadline.
#[derive(Debug, Clone)]
pub struct DeadlineTracker {
    deadline_ns: u64,
    cycles: u64,
    misses: u64,
    worst_ns: u64,
    total_ns: u128,
    /// Durations of the missed cycles (ns), capped at 1024 entries to keep
    /// memory bounded over long runs; misses beyond that are still counted.
    miss_samples: Vec<u64>,
}

impl DeadlineTracker {
    /// Maximum number of individual miss durations retained.
    pub const MAX_MISS_SAMPLES: usize = 1024;

    /// Create a tracker with the given deadline in nanoseconds.
    pub fn new(deadline_ns: u64) -> Self {
        DeadlineTracker {
            deadline_ns,
            cycles: 0,
            misses: 0,
            worst_ns: 0,
            total_ns: 0,
            miss_samples: Vec::new(),
        }
    }

    /// Tracker for the paper's configuration: buffer of `buffer_frames`
    /// samples at `sample_rate` Hz (128 @ 44 100 Hz → 2.902 ms).
    pub fn for_buffer(buffer_frames: u32, sample_rate: u32) -> Self {
        let ns = buffer_frames as u128 * 1_000_000_000u128 / sample_rate as u128;
        Self::new(ns as u64)
    }

    /// The deadline in nanoseconds.
    pub fn deadline_ns(&self) -> u64 {
        self.deadline_ns
    }

    /// Record one cycle of `duration_ns`; returns `true` if it met the deadline.
    pub fn record(&mut self, duration_ns: u64) -> bool {
        self.cycles += 1;
        self.total_ns += duration_ns as u128;
        self.worst_ns = self.worst_ns.max(duration_ns);
        if duration_ns > self.deadline_ns {
            self.misses += 1;
            if self.miss_samples.len() < Self::MAX_MISS_SAMPLES {
                self.miss_samples.push(duration_ns);
            }
            false
        } else {
            true
        }
    }

    /// Number of recorded cycles.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of cycles that exceeded the deadline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate in `[0, 1]`; 0 when no cycles were recorded.
    pub fn miss_rate(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.misses as f64 / self.cycles as f64
        }
    }

    /// Worst observed cycle (ns).
    pub fn worst_ns(&self) -> u64 {
        self.worst_ns
    }

    /// Mean cycle duration (ns); 0 when empty.
    pub fn mean_ns(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.cycles as f64
        }
    }

    /// Mean headroom before the deadline (ns, may be negative if the average
    /// cycle misses).
    pub fn mean_headroom_ns(&self) -> f64 {
        self.deadline_ns as f64 - self.mean_ns()
    }

    /// Durations of up to [`Self::MAX_MISS_SAMPLES`] missed cycles.
    pub fn miss_samples(&self) -> &[u64] {
        &self.miss_samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_buffer_deadline_is_2_9_ms() {
        let t = DeadlineTracker::for_buffer(128, 44_100);
        // 128/44100 s = 2.9025 ms
        assert!((t.deadline_ns() as f64 / 1e6 - 2.9025).abs() < 0.001);
    }

    #[test]
    fn counts_misses() {
        let mut t = DeadlineTracker::new(1000);
        assert!(t.record(900));
        assert!(!t.record(1500));
        assert!(t.record(1000)); // exactly on deadline counts as met
        assert_eq!(t.cycles(), 3);
        assert_eq!(t.misses(), 1);
        assert_eq!(t.worst_ns(), 1500);
        assert!((t.miss_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.miss_samples(), &[1500]);
    }

    #[test]
    fn headroom_is_deadline_minus_mean() {
        let mut t = DeadlineTracker::new(2000);
        t.record(500);
        t.record(1500);
        assert!((t.mean_ns() - 1000.0).abs() < 1e-9);
        assert!((t.mean_headroom_ns() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn empty_tracker_is_benign() {
        let t = DeadlineTracker::new(100);
        assert_eq!(t.miss_rate(), 0.0);
        assert_eq!(t.mean_ns(), 0.0);
    }

    #[test]
    fn miss_sample_storage_is_bounded() {
        let mut t = DeadlineTracker::new(1);
        for _ in 0..(DeadlineTracker::MAX_MISS_SAMPLES + 100) {
            t.record(10);
        }
        assert_eq!(t.miss_samples().len(), DeadlineTracker::MAX_MISS_SAMPLES);
        assert_eq!(t.misses() as usize, DeadlineTracker::MAX_MISS_SAMPLES + 100);
    }
}
