//! Report plumbing for E16 (`fig_dsp_simd`): per-kernel SIMD speedups and
//! the whole-graph scalar↔SIMD A/B, per strategy.
//!
//! The experiment has three legs:
//!
//! * **kernel speedups** — each vectorized DSP kernel timed through its
//!   deployed (dispatching) entry point with the crate-wide scalar switch
//!   forced on and off. The headline gates require the two dominant
//!   kernels (the six-section biquad cascade and the fused mixer sum) to
//!   clear `min_kernel_speedup`; the rest are reported for context.
//! * **parity** — the same kernels on identical randomized inputs, scalar
//!   vs SIMD, max absolute difference. The shim performs lane-wise IEEE
//!   single operations with no FMA and no reassociation, so most kernels
//!   measure exactly 0.0; the gate allows `parity_tol` (1e-6) so a future
//!   backend with fused rounding still passes.
//! * **whole-graph A/B** — per strategy, one engine alternating
//!   scalar/SIMD blocks (paired design: both populations sample the same
//!   host-noise environment, so drift cannot fake or mask a gain), plus
//!   two deterministic runs whose output checksums must match bit-exactly.

use crate::json::Json;

/// One kernel's scalar-vs-SIMD measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelSpeedup {
    /// Kernel label ("biquad_chain6", "mix_into_8", …).
    pub kernel: String,
    /// Best scalar ns/iter.
    pub scalar_ns: f64,
    /// Best SIMD ns/iter.
    pub simd_ns: f64,
    /// Max |scalar - simd| over the randomized parity corpus.
    pub max_abs_diff: f64,
    /// Whether this kernel participates in the `min_kernel_speedup` gate
    /// (only the dominant kernels do; the rest are informational).
    pub gated: bool,
}

impl KernelSpeedup {
    /// Scalar time over SIMD time (> 1 means the SIMD path is faster).
    pub fn speedup(&self) -> f64 {
        if self.simd_ns > 0.0 {
            self.scalar_ns / self.simd_ns
        } else {
            0.0
        }
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("kernel", Json::from(self.kernel.clone())),
            ("scalar_ns", Json::from(self.scalar_ns)),
            ("simd_ns", Json::from(self.simd_ns)),
            ("speedup", Json::from(self.speedup())),
            ("max_abs_diff", Json::from(self.max_abs_diff)),
            ("gated", Json::from(self.gated)),
        ])
    }
}

/// One strategy's whole-graph scalar↔SIMD comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyDsp {
    /// Strategy label ("SEQ", "BUSY", …).
    pub strategy: String,
    /// p50 cycle time (ns) of the scalar blocks.
    pub scalar_p50_ns: f64,
    /// p50 cycle time (ns) of the SIMD blocks.
    pub simd_p50_ns: f64,
    /// Deadline misses over the scalar blocks.
    pub scalar_misses: u64,
    /// Deadline misses over the SIMD blocks (same cycle count).
    pub simd_misses: u64,
    /// Output checksums of the two deterministic runs matched bit-exactly.
    pub checksums_equal: bool,
}

impl StrategyDsp {
    /// Cycle-time improvement of SIMD over scalar, in percent (positive
    /// means faster).
    pub fn gain_pct(&self) -> f64 {
        if self.scalar_p50_ns > 0.0 {
            (1.0 - self.simd_p50_ns / self.scalar_p50_ns) * 100.0
        } else {
            0.0
        }
    }

    /// True when the SIMD leg's deadline-miss count exceeds the scalar
    /// leg's by more than sampling noise explains. On hosts where the
    /// graph runs far under the deadline, misses are rare preemption tail
    /// events — small Poisson draws from the *same* interruption process
    /// on both legs — so single-count differences (0 vs 1) carry no
    /// signal. The gate flags an excess beyond two standard deviations
    /// of the scalar count (a floor of +2 at zero); a genuine SIMD-caused
    /// regression lands far outside that band, because a systematically
    /// slower leg misses on every tight cycle, not on a stray one.
    pub fn added_misses(&self) -> bool {
        let allowance = 2.0 + 2.0 * (self.scalar_misses as f64).sqrt();
        self.simd_misses as f64 > self.scalar_misses as f64 + allowance
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("strategy", Json::from(self.strategy.clone())),
            ("scalar_p50_ns", Json::from(self.scalar_p50_ns)),
            ("simd_p50_ns", Json::from(self.simd_p50_ns)),
            ("gain_pct", Json::from(self.gain_pct())),
            ("scalar_misses", Json::from(self.scalar_misses)),
            ("simd_misses", Json::from(self.simd_misses)),
            ("checksums_equal", Json::from(self.checksums_equal)),
        ])
    }
}

/// Aggregated E16 results.
#[derive(Debug, Clone, PartialEq)]
pub struct DspReport {
    /// Worker threads of the parallel strategies.
    pub threads: usize,
    /// Measured cycles per strategy leg.
    pub cycles: usize,
    /// Sound-card deadline (ns) the misses are counted against.
    pub deadline_ns: u64,
    /// Compiled vector backend ("sse2" or "scalar-4lane").
    pub backend: String,
    /// Required speedup on the gated kernels.
    pub min_kernel_speedup: f64,
    /// Allowed scalar↔SIMD divergence per sample.
    pub parity_tol: f64,
    /// Per-kernel measurements.
    pub kernels: Vec<KernelSpeedup>,
    /// Per-strategy whole-graph A/B.
    pub strategies: Vec<StrategyDsp>,
}

impl DspReport {
    /// Acceptance: every gated kernel clears `min_kernel_speedup`.
    pub fn kernel_speedups_ok(&self) -> bool {
        self.kernels
            .iter()
            .filter(|k| k.gated)
            .all(|k| k.speedup() >= self.min_kernel_speedup)
    }

    /// Acceptance: no kernel diverges from its scalar reference by more
    /// than `parity_tol` per sample.
    pub fn parity_ok(&self) -> bool {
        self.kernels
            .iter()
            .all(|k| k.max_abs_diff <= self.parity_tol)
    }

    /// Acceptance: every strategy's SIMD p50 is at or below its paired
    /// scalar p50 (the paired-block design makes this noise-immune: both
    /// populations interleave through the same host conditions).
    pub fn cycle_p50_ok(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.simd_p50_ns <= s.scalar_p50_ns)
    }

    /// Acceptance: SIMD adds no deadline misses on any strategy (beyond
    /// the preemption-noise band, see [`StrategyDsp::added_misses`]).
    pub fn no_added_misses(&self) -> bool {
        self.strategies.iter().all(|s| !s.added_misses())
    }

    /// Acceptance: scalar and SIMD runs produce bit-identical output on
    /// every strategy.
    pub fn checksums_ok(&self) -> bool {
        self.strategies.iter().all(|s| s.checksums_equal)
    }

    /// Names of every failed gate (empty when all pass).
    pub fn failed_gates(&self) -> Vec<String> {
        let mut failed = Vec::new();
        for k in self.kernels.iter().filter(|k| k.gated) {
            if k.speedup() < self.min_kernel_speedup {
                failed.push(format!("kernel_speedup:{}", k.kernel));
            }
        }
        for k in &self.kernels {
            if k.max_abs_diff > self.parity_tol {
                failed.push(format!("parity:{}", k.kernel));
            }
        }
        for s in &self.strategies {
            if s.simd_p50_ns > s.scalar_p50_ns {
                failed.push(format!("cycle_p50:{}", s.strategy));
            }
            if s.added_misses() {
                failed.push(format!("added_misses:{}", s.strategy));
            }
            if !s.checksums_equal {
                failed.push(format!("checksum:{}", s.strategy));
            }
        }
        failed
    }

    /// The `BENCH_dsp.json` tree.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("bench", Json::from("dsp")),
            ("threads", Json::from(self.threads)),
            ("cycles", Json::from(self.cycles)),
            ("deadline_ns", Json::from(self.deadline_ns)),
            ("backend", Json::from(self.backend.clone())),
            ("min_kernel_speedup", Json::from(self.min_kernel_speedup)),
            ("parity_tol", Json::from(self.parity_tol)),
            (
                "kernels",
                Json::Array(self.kernels.iter().map(KernelSpeedup::to_json).collect()),
            ),
            (
                "strategies",
                Json::Array(self.strategies.iter().map(StrategyDsp::to_json).collect()),
            ),
            (
                "checks",
                Json::object([
                    ("kernel_speedups_ok", Json::from(self.kernel_speedups_ok())),
                    ("parity_ok", Json::from(self.parity_ok())),
                    ("cycle_p50_ok", Json::from(self.cycle_p50_ok())),
                    ("no_added_misses", Json::from(self.no_added_misses())),
                    ("checksums_ok", Json::from(self.checksums_ok())),
                ]),
            ),
        ])
    }

    /// Human-readable summary for the binary's stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} backend, {} threads, {} cycles per leg, deadline {:.1} ms\n\n",
            self.backend,
            self.threads,
            self.cycles,
            self.deadline_ns as f64 / 1e6
        ));
        out.push_str("kernel            scalar ns    simd ns  speedup  max|diff|  gated\n");
        for k in &self.kernels {
            out.push_str(&format!(
                "{:<16} {:>10.1} {:>10.1} {:>7.2}x {:>10.2e}  {}\n",
                k.kernel,
                k.scalar_ns,
                k.simd_ns,
                k.speedup(),
                k.max_abs_diff,
                if k.gated { "yes" } else { "-" }
            ));
        }
        out.push_str("\nstrategy  scalar p50 (us)  simd p50 (us)   gain  misses s/v  bit-exact\n");
        for s in &self.strategies {
            out.push_str(&format!(
                "{:<8} {:>15.1} {:>14.1} {:>5.1} % {:>5}/{:<5} {}\n",
                s.strategy,
                s.scalar_p50_ns / 1e3,
                s.simd_p50_ns / 1e3,
                s.gain_pct(),
                s.scalar_misses,
                s.simd_misses,
                s.checksums_equal
            ));
        }
        out.push_str(&format!(
            "checks: kernel-speedups-ok={} parity-ok={} cycle-p50-ok={} no-added-misses={} checksums-ok={}\n",
            self.kernel_speedups_ok(),
            self.parity_ok(),
            self.cycle_p50_ok(),
            self.no_added_misses(),
            self.checksums_ok()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(name: &str, scalar: f64, simd: f64, gated: bool) -> KernelSpeedup {
        KernelSpeedup {
            kernel: name.to_string(),
            scalar_ns: scalar,
            simd_ns: simd,
            max_abs_diff: 0.0,
            gated,
        }
    }

    fn strat(label: &str, scalar_p50: f64, simd_p50: f64) -> StrategyDsp {
        StrategyDsp {
            strategy: label.to_string(),
            scalar_p50_ns: scalar_p50,
            simd_p50_ns: simd_p50,
            scalar_misses: 0,
            simd_misses: 0,
            checksums_equal: true,
        }
    }

    fn report() -> DspReport {
        DspReport {
            threads: 4,
            cycles: 2_000,
            deadline_ns: 2_900_000,
            backend: "sse2".to_string(),
            min_kernel_speedup: 2.0,
            parity_tol: 1e-6,
            kernels: vec![
                kernel("biquad_chain6", 4_000.0, 1_500.0, true),
                kernel("mix_into_8", 2_000.0, 800.0, true),
                kernel("limiter", 1_000.0, 700.0, false),
            ],
            strategies: vec![
                strat("SEQ", 500_000.0, 420_000.0),
                strat("WS", 200_000.0, 170_000.0),
            ],
        }
    }

    #[test]
    fn speedup_and_gain_math() {
        let k = kernel("x", 3_000.0, 1_000.0, true);
        assert!((k.speedup() - 3.0).abs() < 1e-12);
        let s = strat("SEQ", 1_000.0, 750.0);
        assert!((s.gain_pct() - 25.0).abs() < 1e-9);
        // Degenerate inputs stay finite.
        assert_eq!(kernel("z", 1.0, 0.0, false).speedup(), 0.0);
        assert_eq!(strat("Z", 0.0, 0.0).gain_pct(), 0.0);
    }

    #[test]
    fn gates_pass_on_the_good_report() {
        let r = report();
        assert!(r.kernel_speedups_ok());
        assert!(r.parity_ok());
        assert!(r.cycle_p50_ok());
        assert!(r.no_added_misses());
        assert!(r.checksums_ok());
        assert!(r.failed_gates().is_empty());
    }

    #[test]
    fn each_gate_trips_and_is_named() {
        let mut r = report();
        r.kernels[0].simd_ns = r.kernels[0].scalar_ns; // 1.0x on a gated kernel
        assert!(!r.kernel_speedups_ok());
        assert!(r
            .failed_gates()
            .contains(&"kernel_speedup:biquad_chain6".to_string()));

        let mut r = report();
        // An ungated kernel below the bar does not trip the speedup gate.
        r.kernels[2].simd_ns = r.kernels[2].scalar_ns * 2.0;
        assert!(r.kernel_speedups_ok());

        let mut r = report();
        r.kernels[1].max_abs_diff = 1e-3;
        assert!(!r.parity_ok());
        assert!(r.failed_gates().contains(&"parity:mix_into_8".to_string()));

        let mut r = report();
        r.strategies[1].simd_p50_ns = r.strategies[1].scalar_p50_ns * 1.01;
        assert!(!r.cycle_p50_ok());
        assert!(r.failed_gates().contains(&"cycle_p50:WS".to_string()));

        let mut r = report();
        // A stray preemption miss or two on the SIMD leg sits inside the
        // Poisson noise band and does not trip the gate ...
        r.strategies[0].simd_misses = 2;
        assert!(r.no_added_misses());
        // ... an excess beyond it does.
        r.strategies[0].simd_misses = 3;
        assert!(!r.no_added_misses());
        assert!(r.failed_gates().contains(&"added_misses:SEQ".to_string()));

        let mut r = report();
        r.strategies[0].checksums_equal = false;
        assert!(!r.checksums_ok());
        assert!(r.failed_gates().contains(&"checksum:SEQ".to_string()));
    }

    #[test]
    fn json_has_all_sections() {
        let j = report().to_json().render();
        assert!(j.starts_with("{\"bench\":\"dsp\""));
        assert!(j.contains("\"backend\":\"sse2\""));
        assert!(j.contains("\"kernels\":["));
        assert!(j.contains("\"speedup\":"));
        assert!(j.contains("\"strategies\":["));
        assert!(j.contains("\"kernel_speedups_ok\":true"));
        assert!(j.contains("\"checksums_ok\":true"));
        let text = report().render();
        assert!(text.contains("biquad_chain6"));
        assert!(text.contains("kernel-speedups-ok=true"));
    }
}
