//! Report plumbing for E14 (`fig_faults`): deadline misses under a
//! calibrated fault storm, with and without graceful degradation, per
//! strategy.
//!
//! Each strategy runs the same cycle count four times:
//!
//! 1. **baseline** — no fault plan installed (the zero-cost-when-disabled
//!    reference);
//! 2. **quiet** — a plan installed whose every draw misses (prices the
//!    enabled-but-idle hook);
//! 3. **storm** — the calibrated fault storm, degradation off (how badly
//!    overload hurts an unprotected engine);
//! 4. **storm + degradation** — the same storm with the quality governor
//!    armed (what shedding buys back).
//!
//! The headline gate is the miss *cut factor*: degradation must divide
//! storm misses by at least [`FaultReport::miss_cut_factor`] on every
//! parallel strategy. SEQ is reported but excluded — its fault-free
//! baseline already exceeds the paper's 2.9 ms deadline (that is the
//! paper's premise for parallelizing), so a miss-reduction ratio over an
//! always-missing baseline is not meaningful. Causal integrity rides on
//! the same commit-blown criterion as E13: a shed/restore swap may never
//! itself blow a deadline (one flagged cycle per strategy is tolerated
//! as host noise — see [`FaultReport::no_commit_blown`]). Audio integrity is a checksum equality: fault
//! injection burns CPU inside the timed windows but never touches
//! buffers, so all four runs of all strategies must produce bit-exact
//! audio.

use crate::json::Json;
use crate::summary::Summary;

/// One strategy's four-run fault comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyFaults {
    /// Strategy label ("SEQ", "BUSY", …).
    pub strategy: String,
    /// Counted in the degradation gates? (False for SEQ, whose baseline
    /// already misses every cycle at paper scale.)
    pub parallel: bool,
    /// Deadline misses with no fault plan installed.
    pub baseline_misses: u64,
    /// Deadline misses with the quiet (never-firing) plan installed.
    pub quiet_misses: u64,
    /// Deadline misses under the storm, degradation off.
    pub storm_misses: u64,
    /// Deadline misses under the storm, degradation on.
    pub degraded_misses: u64,
    /// Cycle times (ns) sampled with the fault hook disabled. Paired with
    /// [`quiet_cycle_ns`](Self::quiet_cycle_ns): the harness interleaves
    /// hook-off and quiet-hook blocks in one run so both populations see
    /// the same host noise.
    pub baseline_cycle_ns: Vec<u64>,
    /// Cycle times (ns) sampled with the quiet plan installed, interleaved
    /// with the baseline samples.
    pub quiet_cycle_ns: Vec<u64>,
    /// Telemetry fault events (spikes + stalls) counted in the storm run.
    pub storm_fault_events: u64,
    /// Telemetry fault events counted in the degraded run.
    pub degraded_fault_events: u64,
    /// Quality sheds committed by the governor in the degraded run.
    pub sheds: u64,
    /// Quality restores committed by the governor in the degraded run.
    pub restores: u64,
    /// Degraded-run cycles that met the budget before the shed/restore
    /// commit cost was charged and missed after (same causal criterion
    /// as E13's swap gate).
    pub commit_blown: u64,
    /// Output checksum of the baseline run.
    pub baseline_checksum: u64,
    /// Output checksum of the quiet-plan run (must equal baseline).
    pub quiet_checksum: u64,
    /// Output checksum of the storm run (must equal baseline).
    pub storm_checksum: u64,
    /// Simulated lower-bound misses no scheduler could have avoided
    /// under this storm (informational oracle, not a gate).
    pub unavoidable_misses: u64,
}

impl StrategyFaults {
    fn percentile(samples: &[u64], q: f64) -> f64 {
        let as_f64: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        Summary::percentile(&as_f64, q).unwrap_or(0.0)
    }

    /// p50 cycle time with the fault hook disabled (ns).
    pub fn baseline_p50_ns(&self) -> f64 {
        Self::percentile(&self.baseline_cycle_ns, 50.0)
    }

    /// p50 cycle time with the quiet plan installed (ns).
    pub fn quiet_p50_ns(&self) -> f64 {
        Self::percentile(&self.quiet_cycle_ns, 50.0)
    }

    /// Factor by which degradation divided the storm misses
    /// (`storm / max(degraded, 1)`; `f64::INFINITY`-free).
    pub fn miss_cut(&self) -> f64 {
        self.storm_misses as f64 / self.degraded_misses.max(1) as f64
    }

    /// All three checksums agree — injection never touched the audio.
    pub fn bit_exact(&self) -> bool {
        self.quiet_checksum == self.baseline_checksum
            && self.storm_checksum == self.baseline_checksum
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("strategy", Json::from(self.strategy.clone())),
            ("parallel", Json::from(self.parallel)),
            ("baseline_misses", Json::from(self.baseline_misses)),
            ("quiet_misses", Json::from(self.quiet_misses)),
            ("storm_misses", Json::from(self.storm_misses)),
            ("degraded_misses", Json::from(self.degraded_misses)),
            ("miss_cut", Json::from(self.miss_cut())),
            ("baseline_p50_ns", Json::from(self.baseline_p50_ns())),
            ("quiet_p50_ns", Json::from(self.quiet_p50_ns())),
            ("storm_fault_events", Json::from(self.storm_fault_events)),
            (
                "degraded_fault_events",
                Json::from(self.degraded_fault_events),
            ),
            ("sheds", Json::from(self.sheds)),
            ("restores", Json::from(self.restores)),
            ("commit_blown_deadlines", Json::from(self.commit_blown)),
            ("unavoidable_misses", Json::from(self.unavoidable_misses)),
            ("bit_exact", Json::from(self.bit_exact())),
            ("baseline_checksum", Json::from(self.baseline_checksum)),
        ])
    }
}

/// Aggregated E14 results across strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Worker threads of the parallel strategies.
    pub threads: usize,
    /// Measured cycles per run.
    pub cycles: usize,
    /// Sound-card deadline (ns) the misses are counted against.
    pub deadline_ns: u64,
    /// Storm seed (the whole experiment is a pure function of it).
    pub seed: u64,
    /// Required miss-division factor for the degradation gate.
    pub miss_cut_factor: f64,
    /// Storm misses a parallel strategy must accumulate for the cut
    /// ratio to be meaningful (calibration check).
    pub min_storm_misses: u64,
    /// Allowed quiet-vs-baseline p50 inflation, percent.
    pub overhead_pct: f64,
    /// Per-strategy results.
    pub strategies: Vec<StrategyFaults>,
}

impl FaultReport {
    fn parallel(&self) -> impl Iterator<Item = &StrategyFaults> {
        self.strategies.iter().filter(|s| s.parallel)
    }

    /// Acceptance: the calibrated storm actually bites — every parallel
    /// strategy accumulates at least [`min_storm_misses`]
    /// (otherwise the cut ratio would be vacuous).
    ///
    /// [`min_storm_misses`]: Self::min_storm_misses
    pub fn storm_bites(&self) -> bool {
        self.parallel()
            .all(|s| s.storm_misses >= self.min_storm_misses)
    }

    /// Acceptance (headline): degradation divides storm misses by at
    /// least [`miss_cut_factor`] on every parallel strategy.
    ///
    /// [`miss_cut_factor`]: Self::miss_cut_factor
    pub fn degradation_cuts_misses(&self) -> bool {
        self.parallel()
            .all(|s| s.degraded_misses as f64 * self.miss_cut_factor <= s.storm_misses as f64)
    }

    /// Acceptance: the governor engaged and recovered — every parallel
    /// strategy sheds at least once and restores at least once under the
    /// storm's pressure square wave.
    pub fn governor_engages_and_recovers(&self) -> bool {
        self.parallel().all(|s| s.sheds >= 1 && s.restores >= 1)
    }

    /// Acceptance: no degraded-run cycle missed its deadline *because
    /// of* a shed/restore commit (E13's causal criterion).
    ///
    /// A single flagged cycle per strategy is tolerated: the commit cost
    /// is a wall-clock measurement, so OS preemption landing inside one
    /// commit window is indistinguishable from a real commit cost. A
    /// design-level cost repeats on every swap event, so two or more
    /// flagged cycles still fail the gate.
    pub fn no_commit_blown(&self) -> bool {
        self.strategies.iter().all(|s| s.commit_blown <= 1)
    }

    /// Acceptance: all runs of every strategy produced bit-exact audio,
    /// and every strategy agrees with every other.
    pub fn fault_free_bit_exact(&self) -> bool {
        self.strategies.iter().all(|s| s.bit_exact())
            && self
                .strategies
                .windows(2)
                .all(|w| w[0].baseline_checksum == w[1].baseline_checksum)
    }

    /// Acceptance: the enabled-but-idle hook is free — the quiet-plan
    /// p50 stays within [`overhead_pct`] of the no-plan p50.
    ///
    /// [`overhead_pct`]: Self::overhead_pct
    pub fn overhead_within(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.quiet_p50_ns() <= s.baseline_p50_ns() * (1.0 + self.overhead_pct / 100.0))
    }

    /// Acceptance: fault schedules replayed identically in both storm
    /// runs — the injection totals are a pure function of the seed, so
    /// with and without degradation the same events fired per cycle.
    /// (Degradation changes *graph shape*, not the node-keyed draws of
    /// loaded sections; shed FX nodes stop existing, so the degraded run
    /// may see *fewer* events, never different-for-same-shape. The gate
    /// therefore bounds: degraded ≤ storm, both > 0.)
    pub fn events_deterministic(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.storm_fault_events > 0 && s.degraded_fault_events <= s.storm_fault_events)
    }

    /// Acceptance: every strategy counted exactly the same storm fault
    /// events — the injection schedule is keyed on `(seed, cycle,
    /// node-or-lane)`, never on scheduler behavior, so six different
    /// executors over the same cycle count must agree to the event.
    pub fn events_identical_across_strategies(&self) -> bool {
        self.strategies
            .windows(2)
            .all(|w| w[0].storm_fault_events == w[1].storm_fault_events)
    }

    /// Names of the acceptance gates that currently fail, for error
    /// surfacing — a tripped strict run prints exactly which gate died.
    pub fn failed_gates(&self) -> Vec<&'static str> {
        let mut failed = Vec::new();
        if !self.storm_bites() {
            failed.push("storm_bites");
        }
        if !self.degradation_cuts_misses() {
            failed.push("degradation_cuts_misses");
        }
        if !self.governor_engages_and_recovers() {
            failed.push("governor_engages_and_recovers");
        }
        if !self.no_commit_blown() {
            failed.push("no_commit_blown");
        }
        if !self.fault_free_bit_exact() {
            failed.push("fault_free_bit_exact");
        }
        if !self.events_deterministic() {
            failed.push("events_deterministic");
        }
        if !self.events_identical_across_strategies() {
            failed.push("events_identical_across_strategies");
        }
        if !self.overhead_within() {
            failed.push("overhead_within");
        }
        failed
    }

    /// The `BENCH_faults.json` tree.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("bench", Json::from("faults")),
            ("threads", Json::from(self.threads)),
            ("cycles", Json::from(self.cycles)),
            ("deadline_ns", Json::from(self.deadline_ns)),
            ("seed", Json::from(self.seed)),
            ("miss_cut_factor", Json::from(self.miss_cut_factor)),
            ("min_storm_misses", Json::from(self.min_storm_misses)),
            ("overhead_pct", Json::from(self.overhead_pct)),
            (
                "strategies",
                Json::Array(self.strategies.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "checks",
                Json::object([
                    ("storm_bites", Json::from(self.storm_bites())),
                    (
                        "degradation_cuts_misses",
                        Json::from(self.degradation_cuts_misses()),
                    ),
                    (
                        "governor_engages_and_recovers",
                        Json::from(self.governor_engages_and_recovers()),
                    ),
                    ("no_commit_blown", Json::from(self.no_commit_blown())),
                    (
                        "fault_free_bit_exact",
                        Json::from(self.fault_free_bit_exact()),
                    ),
                    (
                        "events_deterministic",
                        Json::from(self.events_deterministic()),
                    ),
                    (
                        "events_identical_across_strategies",
                        Json::from(self.events_identical_across_strategies()),
                    ),
                    ("overhead_within", Json::from(self.overhead_within())),
                ]),
            ),
        ])
    }

    /// Human-readable summary table for the binary's stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "storm seed {:#x} over {} cycles, {} threads, deadline {:.1} ms\n",
            self.seed,
            self.cycles,
            self.threads,
            self.deadline_ns as f64 / 1e6
        ));
        out.push_str(
            "strategy  base  quiet  storm  degr   cut  shed/rest  blown  events  unavoid\n",
        );
        for s in &self.strategies {
            out.push_str(&format!(
                "{:<8} {:>5} {:>6} {:>6} {:>5} {:>5.1} {:>5}/{:<4} {:>6} {:>7} {:>8}{}\n",
                s.strategy,
                s.baseline_misses,
                s.quiet_misses,
                s.storm_misses,
                s.degraded_misses,
                s.miss_cut(),
                s.sheds,
                s.restores,
                s.commit_blown,
                s.storm_fault_events,
                s.unavoidable_misses,
                if s.parallel { "" } else { "  (excluded)" },
            ));
        }
        out.push_str(&format!(
            "checks: storm-bites={} cuts-misses={} governor-engages={} no-commit-blown={} bit-exact={} events-deterministic={} events-identical={} overhead-within={}\n",
            self.storm_bites(),
            self.degradation_cuts_misses(),
            self.governor_engages_and_recovers(),
            self.no_commit_blown(),
            self.fault_free_bit_exact(),
            self.events_deterministic(),
            self.events_identical_across_strategies(),
            self.overhead_within()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strat(label: &str, parallel: bool, storm: u64, degraded: u64) -> StrategyFaults {
        StrategyFaults {
            strategy: label.to_string(),
            parallel,
            baseline_misses: if parallel { 0 } else { 900 },
            quiet_misses: if parallel { 0 } else { 900 },
            storm_misses: storm,
            degraded_misses: degraded,
            baseline_cycle_ns: vec![1_000_000, 1_100_000, 1_200_000],
            quiet_cycle_ns: vec![1_000_000, 1_110_000, 1_200_000],
            storm_fault_events: 500,
            degraded_fault_events: 400,
            sheds: 3,
            restores: 3,
            commit_blown: 0,
            baseline_checksum: 0xABCD,
            quiet_checksum: 0xABCD,
            storm_checksum: 0xABCD,
            unavoidable_misses: 10,
        }
    }

    fn report() -> FaultReport {
        FaultReport {
            threads: 3,
            cycles: 4_000,
            deadline_ns: 2_900_000,
            seed: 0xE14,
            miss_cut_factor: 5.0,
            min_storm_misses: 50,
            overhead_pct: 2.0,
            strategies: vec![strat("SEQ", false, 950, 920), strat("WS", true, 400, 30)],
        }
    }

    #[test]
    fn headline_gate_divides_misses() {
        let good = report();
        assert!(good.storm_bites());
        assert!(good.degradation_cuts_misses()); // 400 vs 30*5=150
        let mut bad = report();
        bad.strategies[1].degraded_misses = 100; // 100*5 > 400
        assert!(!bad.degradation_cuts_misses());
        // SEQ numbers never enter the gate.
        let mut seq_awful = report();
        seq_awful.strategies[0].degraded_misses = 950;
        assert!(seq_awful.degradation_cuts_misses());
    }

    #[test]
    fn zero_degraded_misses_pass_any_factor() {
        let mut r = report();
        r.strategies[1].degraded_misses = 0;
        r.miss_cut_factor = 1e9;
        assert!(r.degradation_cuts_misses());
        assert!(r.strategies[1].miss_cut() >= 400.0);
    }

    #[test]
    fn storm_must_bite_on_parallel_strategies() {
        let mut r = report();
        r.strategies[1].storm_misses = 10; // under min_storm_misses=50
        assert!(!r.storm_bites());
        // SEQ's count is irrelevant to the calibration check.
        let mut seq_only = report();
        seq_only.strategies[0].storm_misses = 0;
        assert!(seq_only.storm_bites());
    }

    #[test]
    fn governor_and_commit_gates() {
        let good = report();
        assert!(good.governor_engages_and_recovers());
        assert!(good.no_commit_blown());
        let mut never_restored = report();
        never_restored.strategies[1].restores = 0;
        assert!(!never_restored.governor_engages_and_recovers());
        // One flagged cycle is tolerated as host noise (a preemption
        // inside the measured commit window); a repeat is a design cost.
        let mut noise = report();
        noise.strategies[1].commit_blown = 1;
        assert!(noise.no_commit_blown());
        let mut blown = report();
        blown.strategies[1].commit_blown = 2;
        assert!(!blown.no_commit_blown());
    }

    #[test]
    fn bit_exactness_covers_runs_and_strategies() {
        let good = report();
        assert!(good.fault_free_bit_exact());
        let mut storm_diverged = report();
        storm_diverged.strategies[1].storm_checksum = 1;
        assert!(!storm_diverged.fault_free_bit_exact());
        let mut cross_diverged = report();
        cross_diverged.strategies[1].baseline_checksum = 1;
        cross_diverged.strategies[1].quiet_checksum = 1;
        cross_diverged.strategies[1].storm_checksum = 1;
        assert!(!cross_diverged.fault_free_bit_exact());
    }

    #[test]
    fn event_counts_must_agree_across_strategies() {
        let good = report();
        assert!(good.events_identical_across_strategies());
        let mut bad = report();
        bad.strategies[1].storm_fault_events = 499;
        assert!(!bad.events_identical_across_strategies());
        assert_eq!(
            bad.failed_gates(),
            vec!["events_identical_across_strategies"]
        );
    }

    #[test]
    fn event_determinism_bounds_the_degraded_run() {
        let good = report();
        assert!(good.events_deterministic());
        let mut silent = report();
        silent.strategies[1].storm_fault_events = 0;
        assert!(!silent.events_deterministic());
        let mut extra = report();
        extra.strategies[1].degraded_fault_events = 501;
        assert!(!extra.events_deterministic());
    }

    #[test]
    fn overhead_gate_compares_p50s() {
        let good = report();
        assert!(good.overhead_within()); // 1.11 ms vs 1.1 * 1.02
        let mut bad = report();
        bad.strategies[1].quiet_cycle_ns = vec![1_200_000, 1_300_000, 1_400_000];
        assert!(!bad.overhead_within());
    }

    #[test]
    fn failed_gates_name_the_culprits() {
        assert!(report().failed_gates().is_empty());
        let mut bad = report();
        bad.strategies[1].degraded_misses = 399;
        bad.strategies[1].commit_blown = 2;
        assert_eq!(
            bad.failed_gates(),
            vec!["degradation_cuts_misses", "no_commit_blown"]
        );
    }

    #[test]
    fn json_and_render_have_all_sections() {
        let j = report().to_json().render();
        assert!(j.starts_with("{\"bench\":\"faults\""));
        assert!(j.contains("\"strategies\":["));
        assert!(j.contains("\"degradation_cuts_misses\":true"));
        assert!(j.contains("\"fault_free_bit_exact\":true"));
        assert!(j.contains("\"events_deterministic\":true"));
        assert!(j.contains("\"unavoidable_misses\":10"));
        let text = report().render();
        assert!(text.contains("WS"));
        assert!(text.contains("(excluded)"));
        assert!(text.contains("cuts-misses=true"));
    }
}
