//! E15 report: flight-recorder forensics under a fault storm.
//!
//! One [`StrategyFlightRec`] row per scheduling strategy, carrying what the
//! `fig_flightrec` harness measured: how many cycles blew the per-strategy
//! budget, how many of those produced a [`MissDossier`], the worst
//! blame-sum error, the recorder's paired-median overhead, and whether the
//! exported Chrome-trace window survived a parse → load round trip.
//! [`FlightRecReport::failed_gates`] names every acceptance gate that
//! tripped so strict runs can turn them into an exit code.
//!
//! [`MissDossier`]: crate::forensics::MissDossier

use crate::json::Json;

/// Per-strategy outcome of the flight-recorder storm run.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyFlightRec {
    /// Strategy label (`SEQ`, `BUSY`, ...).
    pub strategy: String,
    /// Worker threads of the run.
    pub threads: usize,
    /// Per-cycle graph budget (ns) the misses were flagged against.
    pub budget_ns: u64,
    /// Cycles flagged as misses from the recorder's cycle stamps.
    pub misses_flagged: u64,
    /// Dossiers produced for those misses.
    pub dossiers: u64,
    /// Worst |blame total − overrun| across dossiers, as a percentage of
    /// the overrun.
    pub max_blame_err_pct: f64,
    /// Recorder overhead as a fraction of the fastest recorder-off cycle
    /// (paired-median measurement).
    pub overhead_frac: f64,
    /// Did the exported CTF window parse back bit-identical?
    pub ctf_roundtrip_ok: bool,
    /// Spans captured across all drained windows.
    pub spans: u64,
    /// Spans overwritten before they could be drained.
    pub dropped_spans: u64,
    /// Degradation transitions committed during the storm run.
    pub sheds: u64,
    /// Restores committed during the storm run.
    pub restores: u64,
}

/// The full E15 report (serialized to `BENCH_flightrec.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecReport {
    /// Worker threads parallel strategies ran with.
    pub threads: usize,
    /// Measured cycles per run.
    pub cycles: usize,
    /// Overhead budget in percent (gate).
    pub overhead_budget_pct: f64,
    /// Blame-sum tolerance in percent of the overrun (gate).
    pub blame_tol_pct: f64,
    /// One row per strategy.
    pub strategies: Vec<StrategyFlightRec>,
}

impl FlightRecReport {
    /// Names of every acceptance gate that tripped; empty means all pass.
    ///
    /// * `<label>/dossier_coverage` — a flagged miss produced no dossier;
    /// * `<label>/blame_sum` — some dossier's blame components missed the
    ///   measured overrun by more than the tolerance;
    /// * `<label>/ctf_roundtrip` — the exported trace did not survive
    ///   parse → load;
    /// * `<label>/overhead` — the recorder cost more than its budget;
    /// * `misses_observed` — the storm produced no miss anywhere, so the
    ///   forensics path was never exercised.
    pub fn failed_gates(&self) -> Vec<String> {
        let mut failed = Vec::new();
        for s in &self.strategies {
            if s.dossiers != s.misses_flagged {
                failed.push(format!("{}/dossier_coverage", s.strategy));
            }
            if s.misses_flagged > 0 && s.max_blame_err_pct > self.blame_tol_pct {
                failed.push(format!("{}/blame_sum", s.strategy));
            }
            if !s.ctf_roundtrip_ok {
                failed.push(format!("{}/ctf_roundtrip", s.strategy));
            }
            if s.overhead_frac * 100.0 > self.overhead_budget_pct {
                failed.push(format!("{}/overhead", s.strategy));
            }
        }
        if self
            .strategies
            .iter()
            .map(|s| s.misses_flagged)
            .sum::<u64>()
            == 0
        {
            failed.push("misses_observed".to_string());
        }
        failed
    }

    /// Markdown table of the per-strategy rows.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "| strategy | budget ms | misses | dossiers | blame err % | overhead % | CTF | spans | dropped | sheds |"
        );
        let _ = writeln!(out, "|---|---|---|---|---|---|---|---|---|---|");
        for s in &self.strategies {
            let _ = writeln!(
                out,
                "| {} ({}t) | {:.3} | {} | {} | {:.3} | {:+.3} | {} | {} | {} | {} |",
                s.strategy,
                s.threads,
                s.budget_ns as f64 / 1e6,
                s.misses_flagged,
                s.dossiers,
                s.max_blame_err_pct,
                s.overhead_frac * 100.0,
                if s.ctf_roundtrip_ok { "ok" } else { "FAIL" },
                s.spans,
                s.dropped_spans,
                s.sheds,
            );
        }
        out
    }

    /// The `BENCH_flightrec.json` tree.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("bench", Json::from("flightrec")),
            ("threads", Json::from(self.threads)),
            ("cycles", Json::from(self.cycles)),
            ("overhead_budget_pct", Json::from(self.overhead_budget_pct)),
            ("blame_tol_pct", Json::from(self.blame_tol_pct)),
            (
                "strategies",
                Json::array(self.strategies.iter().map(|s| {
                    Json::object([
                        ("strategy", Json::from(s.strategy.as_str())),
                        ("threads", Json::from(s.threads)),
                        ("budget_ns", Json::from(s.budget_ns)),
                        ("misses_flagged", Json::from(s.misses_flagged)),
                        ("dossiers", Json::from(s.dossiers)),
                        ("max_blame_err_pct", Json::from(s.max_blame_err_pct)),
                        ("overhead_frac", Json::from(s.overhead_frac)),
                        ("ctf_roundtrip_ok", Json::from(s.ctf_roundtrip_ok)),
                        ("spans", Json::from(s.spans)),
                        ("dropped_spans", Json::from(s.dropped_spans)),
                        ("sheds", Json::from(s.sheds)),
                        ("restores", Json::from(s.restores)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_row(label: &str) -> StrategyFlightRec {
        StrategyFlightRec {
            strategy: label.to_string(),
            threads: 2,
            budget_ns: 1_500_000,
            misses_flagged: 10,
            dossiers: 10,
            max_blame_err_pct: 0.0,
            overhead_frac: 0.01,
            ctf_roundtrip_ok: true,
            spans: 100_000,
            dropped_spans: 0,
            sheds: 1,
            restores: 1,
        }
    }

    fn report(strategies: Vec<StrategyFlightRec>) -> FlightRecReport {
        FlightRecReport {
            threads: 2,
            cycles: 500,
            overhead_budget_pct: 3.0,
            blame_tol_pct: 1.0,
            strategies,
        }
    }

    #[test]
    fn clean_report_passes_all_gates() {
        let r = report(vec![clean_row("BUSY"), clean_row("WS")]);
        assert!(r.failed_gates().is_empty(), "{:?}", r.failed_gates());
    }

    #[test]
    fn each_gate_trips_by_name() {
        let mut uncovered = clean_row("BUSY");
        uncovered.dossiers = 9;
        let mut off_blame = clean_row("WS");
        off_blame.max_blame_err_pct = 2.5;
        let mut bad_ctf = clean_row("SLEEP");
        bad_ctf.ctf_roundtrip_ok = false;
        let mut slow = clean_row("PLAN");
        slow.overhead_frac = 0.05;
        let r = report(vec![uncovered, off_blame, bad_ctf, slow]);
        let failed = r.failed_gates();
        assert!(failed.contains(&"BUSY/dossier_coverage".to_string()));
        assert!(failed.contains(&"WS/blame_sum".to_string()));
        assert!(failed.contains(&"SLEEP/ctf_roundtrip".to_string()));
        assert!(failed.contains(&"PLAN/overhead".to_string()));
        assert_eq!(failed.len(), 4);
    }

    #[test]
    fn a_missless_storm_is_itself_a_failure() {
        let mut row = clean_row("BUSY");
        row.misses_flagged = 0;
        row.dossiers = 0;
        let r = report(vec![row]);
        assert_eq!(r.failed_gates(), vec!["misses_observed".to_string()]);
    }

    #[test]
    fn json_and_table_carry_the_rows() {
        let r = report(vec![clean_row("HYBRID")]);
        let j = r.to_json();
        assert_eq!(j.get("bench").and_then(Json::as_str), Some("flightrec"));
        let rows = j.get("strategies").and_then(Json::items).unwrap();
        assert_eq!(
            rows[0].get("strategy").and_then(Json::as_str),
            Some("HYBRID")
        );
        assert_eq!(
            rows[0].get("misses_flagged").and_then(Json::as_u64),
            Some(10)
        );
        let table = r.render();
        assert!(table.contains("| HYBRID (2t) |"), "{table}");
        // The writer output stays parseable.
        assert!(Json::parse(&j.render()).is_ok());
    }
}
