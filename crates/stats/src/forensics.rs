//! Causal deadline-miss forensics over flight-recorder windows.
//!
//! When a cycle blows its budget, the raw span window says *what* every
//! worker was doing; this module says *why the deadline was missed*. It
//! reconstructs the realized critical path of the cycle by walking spans
//! backwards from the cycle's end, producing a chain of disjoint slices
//! that tile the cycle `[start, end]` exactly, then attributes the portion
//! of each slice past the budget line to its span kind. By construction
//! the blame components sum to the measured overrun **exactly** — there is
//! no unexplained residue for a gate to chase.
//!
//! The backward walk:
//!
//! * The tail `[last span end, cycle end]` is the **driver**'s: barrier
//!   exit, telemetry drain, cycle bookkeeping.
//! * A work slice (`exec`/`fault`) is caused by whatever *its own worker*
//!   did before it — the same-worker span with the greatest end before the
//!   cursor (static-assignment executors run their slice in program order;
//!   work-stealing workers run what they popped, in pop order).
//! * A wait slice (`busy_wait`/`sleep`/`idle`/`steal`/`unpark`) ended
//!   because a dependency finished elsewhere — the walk jumps to the work
//!   span with the greatest end before the cursor on *any* worker.
//! * Uncovered time becomes an `idle` gap slice, so instrumentation holes
//!   never break the tiling.

use crate::json::Json;
use djstar_core::flight::{FlightWindow, Span, SpanKind};

/// Where a slice of the realized critical path was spent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceKind {
    /// A recorded span of this kind.
    Span(SpanKind),
    /// The driver tail after the last recorded span (barrier exit,
    /// telemetry drain, bookkeeping).
    Driver,
    /// A gap no span covers.
    Gap,
}

impl SliceKind {
    /// Stable label used in JSON exports.
    pub fn label(self) -> &'static str {
        match self {
            SliceKind::Span(k) => k.label(),
            SliceKind::Driver => "driver",
            SliceKind::Gap => "idle",
        }
    }
}

/// One slice of the realized critical path. Slices are disjoint and tile
/// the cycle `[start, end]` exactly, in chronological order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathSlice {
    /// Worker the slice ran on (`None` for driver tail and gaps).
    pub worker: Option<u32>,
    /// Node involved, when the span had one.
    pub node: Option<u32>,
    /// What the time was spent on.
    pub kind: SliceKind,
    /// Slice start, ns since the recorder origin.
    pub start_ns: u64,
    /// Slice end, ns since the recorder origin.
    pub end_ns: u64,
}

impl PathSlice {
    /// Slice length in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    fn to_json(self) -> Json {
        Json::object([
            ("kind", Json::from(self.kind.label())),
            (
                "worker",
                self.worker.map_or(Json::Null, |w| Json::from(u64::from(w))),
            ),
            (
                "node",
                self.node.map_or(Json::Null, |n| Json::from(u64::from(n))),
            ),
            ("start_ns", Json::from(self.start_ns)),
            ("end_ns", Json::from(self.end_ns)),
        ])
    }
}

/// Overrun attribution by cause, in nanoseconds. Components sum to the
/// cycle's overrun exactly (see [`analyze_miss`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlameBreakdown {
    /// Node execution past the budget line.
    pub exec_ns: u64,
    /// Spinning on dependencies.
    pub busy_wait_ns: u64,
    /// Parked waiting for a wake-up.
    pub sleep_ns: u64,
    /// Idle gaps (parked thieves, uninstrumented holes).
    pub idle_ns: u64,
    /// Steal sweeps.
    pub steal_ns: u64,
    /// Waking successors.
    pub unpark_ns: u64,
    /// Injected fault burn (spikes, stalls, pressure).
    pub fault_ns: u64,
    /// Remote-deck packet reception (jitter-buffer pushes).
    pub net_wait_ns: u64,
    /// Network dropout concealment synthesis.
    pub conceal_ns: u64,
    /// Driver tail after the last worker span.
    pub driver_ns: u64,
}

impl BlameBreakdown {
    /// Sum of every component; equals the overrun by construction.
    pub fn total(&self) -> u64 {
        self.exec_ns
            + self.busy_wait_ns
            + self.sleep_ns
            + self.idle_ns
            + self.steal_ns
            + self.unpark_ns
            + self.fault_ns
            + self.net_wait_ns
            + self.conceal_ns
            + self.driver_ns
    }

    fn add(&mut self, kind: SliceKind, ns: u64) {
        match kind {
            SliceKind::Span(SpanKind::Exec) => self.exec_ns += ns,
            SliceKind::Span(SpanKind::BusyWait) => self.busy_wait_ns += ns,
            SliceKind::Span(SpanKind::Sleep) => self.sleep_ns += ns,
            SliceKind::Span(SpanKind::Idle) | SliceKind::Gap => self.idle_ns += ns,
            SliceKind::Span(SpanKind::Steal) => self.steal_ns += ns,
            SliceKind::Span(SpanKind::Unpark) => self.unpark_ns += ns,
            SliceKind::Span(SpanKind::Fault) => self.fault_ns += ns,
            SliceKind::Span(SpanKind::NetWait) => self.net_wait_ns += ns,
            SliceKind::Span(SpanKind::Conceal) => self.conceal_ns += ns,
            SliceKind::Driver => self.driver_ns += ns,
        }
    }

    /// The breakdown as a JSON object.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("exec_ns", Json::from(self.exec_ns)),
            ("busy_wait_ns", Json::from(self.busy_wait_ns)),
            ("sleep_ns", Json::from(self.sleep_ns)),
            ("idle_ns", Json::from(self.idle_ns)),
            ("steal_ns", Json::from(self.steal_ns)),
            ("unpark_ns", Json::from(self.unpark_ns)),
            ("fault_ns", Json::from(self.fault_ns)),
            ("net_wait_ns", Json::from(self.net_wait_ns)),
            ("conceal_ns", Json::from(self.conceal_ns)),
            ("driver_ns", Json::from(self.driver_ns)),
        ])
    }
}

/// Executor state the window itself cannot see, cross-referenced into the
/// dossier by the harness (degradation mode, reconfiguration commits).
#[derive(Debug, Clone, Copy, Default)]
pub struct MissContext {
    /// The engine was running degraded (quality shed) during this cycle.
    pub degraded: bool,
    /// A staged topology was committed on this cycle.
    pub reconfig_commit: bool,
}

/// A structured post-mortem for one deadline miss.
#[derive(Debug, Clone)]
pub struct MissDossier {
    /// Executor epoch of the missed cycle.
    pub cycle: u64,
    /// Venue session the window was captured for (0 = single-session).
    pub session: u32,
    /// Strategy label (e.g. `BUSY`).
    pub strategy: String,
    /// Worker count.
    pub threads: usize,
    /// Measured cycle duration (driver stamp), ns.
    pub duration_ns: u64,
    /// The budget the cycle was held to, ns.
    pub budget_ns: u64,
    /// `duration - budget`, ns.
    pub overrun_ns: u64,
    /// Attribution of the overrun; sums to `overrun_ns` exactly.
    pub blame: BlameBreakdown,
    /// The realized critical path: disjoint slices tiling the cycle.
    pub path: Vec<PathSlice>,
    /// Engine state during the cycle.
    pub context: MissContext,
}

impl MissDossier {
    /// The dossier as a JSON object (one JSONL line per miss when
    /// rendered).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("cycle", Json::from(self.cycle)),
            ("session", Json::from(u64::from(self.session))),
            ("strategy", Json::from(self.strategy.as_str())),
            ("threads", Json::from(self.threads)),
            ("duration_ns", Json::from(self.duration_ns)),
            ("budget_ns", Json::from(self.budget_ns)),
            ("overrun_ns", Json::from(self.overrun_ns)),
            ("degraded", Json::from(self.context.degraded)),
            ("reconfig_commit", Json::from(self.context.reconfig_commit)),
            ("blame", self.blame.to_json()),
            ("path", Json::array(self.path.iter().map(|s| s.to_json()))),
        ])
    }
}

/// Kinds whose end is explained by a dependency finishing elsewhere.
fn is_wait(kind: SpanKind) -> bool {
    !kind.is_work()
}

/// Reconstruct the realized critical path of `cycle` and attribute its
/// overrun over `budget_ns`. Returns `None` when the window has no stamp
/// for the cycle (evicted or never recorded).
///
/// Invariants on the result: `path` tiles `[stamp.start, stamp.end]` with
/// disjoint, chronologically ordered slices, and `blame.total()` equals
/// `overrun_ns` exactly.
pub fn analyze_miss(
    window: &FlightWindow,
    cycle: u64,
    budget_ns: u64,
    strategy: &str,
    threads: usize,
    ctx: MissContext,
) -> Option<MissDossier> {
    let stamp = window.stamp_for(cycle)?;
    let (s, e) = (stamp.start_ns, stamp.end_ns);
    let duration_ns = stamp.duration_ns();
    let overrun_ns = duration_ns.saturating_sub(budget_ns);

    // Clamp spans to the cycle window and drop empty ones.
    let spans: Vec<Span> = window
        .spans_in(cycle)
        .into_iter()
        .filter_map(|mut sp| {
            sp.start_ns = sp.start_ns.max(s);
            sp.end_ns = sp.end_ns.min(e);
            (sp.end_ns > sp.start_ns).then_some(sp)
        })
        .collect();

    // Backward walk from the cycle end. `pick` selects the span explaining
    // the time just before `cursor`: greatest end, then greatest start.
    // Candidates must start strictly before the cursor so every step makes
    // progress.
    let pick = |cursor: u64, filter: &dyn Fn(&Span) -> bool| -> Option<Span> {
        spans
            .iter()
            .filter(|sp| sp.start_ns < cursor && filter(sp))
            .max_by_key(|sp| (sp.end_ns.min(cursor), sp.start_ns))
            .copied()
    };

    let mut rev: Vec<PathSlice> = Vec::new();
    let mut cursor = e;
    // The driver tail: time after the last span end belongs to the driver
    // (barrier exit, stamps, drains).
    if let Some(last_end) = spans.iter().map(|sp| sp.end_ns).max() {
        if last_end < e {
            rev.push(PathSlice {
                worker: None,
                node: None,
                kind: SliceKind::Driver,
                start_ns: last_end,
                end_ns: e,
            });
            cursor = last_end;
        }
    }
    // What the next pick is constrained to, set by the previous slice.
    let mut constraint: Option<(bool, u32)> = None; // (same_worker, worker)
    while cursor > s {
        let chosen = match constraint {
            Some((true, w)) => {
                pick(cursor, &|sp: &Span| sp.worker == w).or_else(|| pick(cursor, &|_| true))
            }
            Some((false, _)) => {
                pick(cursor, &|sp: &Span| sp.kind.is_work()).or_else(|| pick(cursor, &|_| true))
            }
            None => pick(cursor, &|_| true),
        };
        let Some(sp) = chosen else {
            // Nothing recorded before the cursor: the head of the cycle is
            // an uncovered gap.
            rev.push(PathSlice {
                worker: None,
                node: None,
                kind: SliceKind::Gap,
                start_ns: s,
                end_ns: cursor,
            });
            break;
        };
        let end = sp.end_ns.min(cursor);
        if end < cursor {
            rev.push(PathSlice {
                worker: None,
                node: None,
                kind: SliceKind::Gap,
                start_ns: end,
                end_ns: cursor,
            });
        }
        rev.push(PathSlice {
            worker: Some(sp.worker),
            node: (sp.node != Span::NO_NODE).then_some(sp.node),
            kind: SliceKind::Span(sp.kind),
            start_ns: sp.start_ns,
            end_ns: end,
        });
        cursor = sp.start_ns;
        constraint = Some((!is_wait(sp.kind), sp.worker));
    }
    rev.reverse();
    let path = rev;

    // Attribute each slice's overlap with the post-budget region.
    let budget_line = s.saturating_add(budget_ns).min(e);
    let mut blame = BlameBreakdown::default();
    for slice in &path {
        let blamed = slice.end_ns.saturating_sub(slice.start_ns.max(budget_line));
        if blamed > 0 {
            blame.add(slice.kind, blamed);
        }
    }

    Some(MissDossier {
        cycle,
        session: window.session,
        strategy: strategy.to_string(),
        threads,
        duration_ns,
        budget_ns,
        overrun_ns,
        blame,
        path,
        context: ctx,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use djstar_core::flight::CycleStamp;

    fn span(worker: u32, node: u32, kind: SpanKind, start: u64, end: u64) -> Span {
        Span {
            cycle: 1,
            node,
            worker,
            start_ns: start,
            end_ns: end,
            kind,
        }
    }

    fn window(spans: Vec<Span>, start: u64, end: u64) -> FlightWindow {
        FlightWindow {
            workers: 2,
            spans,
            cycles: vec![CycleStamp {
                cycle: 1,
                start_ns: start,
                end_ns: end,
            }],
            dropped_spans: 0,
            session: 0,
        }
    }

    fn assert_tiles(d: &MissDossier, s: u64, e: u64) {
        assert!(!d.path.is_empty());
        assert_eq!(d.path.first().unwrap().start_ns, s);
        assert_eq!(d.path.last().unwrap().end_ns, e);
        for w in d.path.windows(2) {
            assert_eq!(w[0].end_ns, w[1].start_ns, "slices must tile exactly");
        }
    }

    #[test]
    fn no_stamp_means_no_dossier() {
        let w = window(vec![], 0, 100);
        assert!(analyze_miss(&w, 7, 10, "BUSY", 2, MissContext::default()).is_none());
    }

    #[test]
    fn blame_sums_to_overrun_exactly() {
        // Worker 0: exec 0..400, spin 400..700, exec 700..900.
        // Worker 1: exec 100..650.
        // Cycle [0, 1000], budget 500 -> overrun 500.
        let w = window(
            vec![
                span(0, 1, SpanKind::Exec, 0, 400),
                span(0, 2, SpanKind::BusyWait, 400, 700),
                span(0, 2, SpanKind::Exec, 700, 900),
                span(1, 3, SpanKind::Exec, 100, 650),
            ],
            0,
            1000,
        );
        let d = analyze_miss(&w, 1, 500, "BUSY", 2, MissContext::default()).unwrap();
        assert_eq!(d.overrun_ns, 500);
        assert_eq!(d.blame.total(), d.overrun_ns);
        assert_tiles(&d, 0, 1000);
        // Tail [900, 1000] is the driver's; the exec [700,900] rides the
        // spin [400,700] which jumped to worker 1's exec.
        assert_eq!(d.blame.driver_ns, 100);
        assert_eq!(d.blame.exec_ns, 200);
        assert_eq!(d.blame.busy_wait_ns, 200);
    }

    #[test]
    fn gaps_become_idle_blame() {
        // Single span at the end; the head of the cycle is uncovered.
        let w = window(vec![span(0, 1, SpanKind::Exec, 600, 900)], 0, 1000);
        let d = analyze_miss(&w, 1, 200, "SLEEP", 2, MissContext::default()).unwrap();
        assert_eq!(d.overrun_ns, 800);
        assert_eq!(d.blame.total(), 800);
        assert_tiles(&d, 0, 1000);
        // [200,600] gap + nothing before 600 -> idle; [600,900] exec;
        // [900,1000] driver.
        assert_eq!(d.blame.idle_ns, 400);
        assert_eq!(d.blame.exec_ns, 300);
        assert_eq!(d.blame.driver_ns, 100);
    }

    #[test]
    fn fault_spans_carry_their_own_blame() {
        let w = window(
            vec![
                span(0, 1, SpanKind::Fault, 0, 300),
                span(0, 1, SpanKind::Exec, 300, 500),
            ],
            0,
            500,
        );
        let d = analyze_miss(&w, 1, 100, "PLAN", 1, MissContext::default()).unwrap();
        assert_eq!(d.overrun_ns, 400);
        assert_eq!(d.blame.total(), 400);
        assert_eq!(d.blame.fault_ns, 200);
        assert_eq!(d.blame.exec_ns, 200);
    }

    #[test]
    fn net_spans_carry_their_own_blame() {
        // A remote-deck node: reception, then concealment, then the rest
        // of its exec — carved the way the executors tile them.
        let w = window(
            vec![
                span(0, 1, SpanKind::NetWait, 0, 150),
                span(0, 1, SpanKind::Conceal, 150, 300),
                span(0, 1, SpanKind::Exec, 300, 500),
            ],
            0,
            500,
        );
        let d = analyze_miss(&w, 1, 100, "BUSY", 1, MissContext::default()).unwrap();
        assert_eq!(d.overrun_ns, 400);
        assert_eq!(d.blame.total(), 400);
        assert_eq!(d.blame.net_wait_ns, 50);
        assert_eq!(d.blame.conceal_ns, 150);
        assert_eq!(d.blame.exec_ns, 200);
        assert_tiles(&d, 0, 500);
    }

    #[test]
    fn under_budget_cycle_has_zero_blame() {
        let w = window(vec![span(0, 1, SpanKind::Exec, 0, 400)], 0, 500);
        let d = analyze_miss(&w, 1, 1000, "SEQ", 1, MissContext::default()).unwrap();
        assert_eq!(d.overrun_ns, 0);
        assert_eq!(d.blame.total(), 0);
        assert_tiles(&d, 0, 500);
    }

    #[test]
    fn dossier_json_shape_is_stable() {
        let w = window(vec![span(0, 1, SpanKind::Exec, 0, 400)], 0, 500);
        let ctx = MissContext {
            degraded: true,
            reconfig_commit: false,
        };
        let d = analyze_miss(&w, 1, 300, "WS", 2, ctx).unwrap();
        let j = d.to_json().render();
        let parsed = Json::parse(&j).unwrap();
        assert_eq!(parsed.get("cycle").and_then(Json::as_u64), Some(1));
        assert_eq!(parsed.get("strategy").and_then(Json::as_str), Some("WS"));
        assert_eq!(parsed.get("degraded"), Some(&Json::Bool(true)));
        assert_eq!(parsed.get("overrun_ns").and_then(Json::as_u64), Some(200));
        let blame = parsed.get("blame").unwrap();
        assert!(blame.get("exec_ns").is_some());
        assert!(blame.get("driver_ns").is_some());
        assert!(parsed.get("path").unwrap().items().unwrap().len() >= 2);
    }
}
