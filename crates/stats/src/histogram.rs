//! Fixed-bin histograms and cumulative views (Figs. 9 and 10 of the paper).

/// A histogram with uniformly sized bins over `[lo, hi)`.
///
/// Samples below `lo` are counted in the first bin and samples at or above
/// `hi` in the last bin ("clamping"), mirroring how the paper's histograms
/// plot everything within the 0.2–0.8 ms window while a handful of outliers
/// exist beyond it. Out-of-range counts are additionally tracked so outliers
/// remain visible (`underflow`/`overflow`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Create a histogram over `[lo, hi)` with `bins` uniform bins.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `hi <= lo`; both indicate a harness bug.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Record one sample.
    pub fn record(&mut self, value: f64) {
        self.total += 1;
        let idx = if value < self.lo {
            self.underflow += 1;
            0
        } else if value >= self.hi {
            self.overflow += 1;
            self.bins.len() - 1
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            ((frac * self.bins.len() as f64) as usize).min(self.bins.len() - 1)
        };
        self.bins[idx] += 1;
    }

    /// Record many samples.
    pub fn record_all(&mut self, values: &[f64]) {
        for &v in values {
            self.record(v);
        }
    }

    /// Number of bins.
    pub fn bin_count(&self) -> usize {
        self.bins.len()
    }

    /// Count in bin `i`.
    pub fn bin(&self, i: usize) -> u64 {
        self.bins[i]
    }

    /// All bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `[start, end)` value range covered by bin `i`.
    pub fn bin_range(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }

    /// Midpoint of bin `i` (x coordinate when plotting).
    pub fn bin_mid(&self, i: usize) -> f64 {
        let (a, b) = self.bin_range(i);
        (a + b) / 2.0
    }

    /// Total number of recorded samples (including clamped ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Samples clamped into the first bin from below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples clamped into the last bin from at/above the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Index of the fullest bin, breaking ties toward the lower bin.
    pub fn mode_bin(&self) -> usize {
        let mut best = 0;
        for (i, &c) in self.bins.iter().enumerate() {
            if c > self.bins[best] {
                best = i;
            }
        }
        best
    }

    /// Number of local maxima with at least `min_count` samples, where a peak
    /// is a bin strictly greater than its nearest differing neighbours on
    /// both sides (plateaus count once). Used to assert the bimodal shape the
    /// paper observes in Fig. 9.
    pub fn peak_count(&self, min_count: u64) -> usize {
        let b = &self.bins;
        let n = b.len();
        let mut peaks = 0;
        let mut i = 0;
        while i < n {
            // Find the plateau [i, j).
            let mut j = i + 1;
            while j < n && b[j] == b[i] {
                j += 1;
            }
            let left_lower = i == 0 || b[i - 1] < b[i];
            let right_lower = j == n || b[j] < b[i];
            if b[i] >= min_count && left_lower && right_lower && b[i] > 0 {
                peaks += 1;
            }
            i = j;
        }
        peaks
    }

    /// Cumulative view (Fig. 10): bin `i` holds the number of samples in bins
    /// `0..=i`.
    pub fn cumulative(&self) -> CumulativeView {
        let mut acc = 0u64;
        let cum = self
            .bins
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect();
        CumulativeView {
            lo: self.lo,
            hi: self.hi,
            cum,
            total: self.total,
        }
    }
}

/// Cumulative histogram: monotone non-decreasing counts per bin.
#[derive(Debug, Clone, PartialEq)]
pub struct CumulativeView {
    lo: f64,
    hi: f64,
    cum: Vec<u64>,
    total: u64,
}

impl CumulativeView {
    /// Cumulative count at bin `i`.
    pub fn at(&self, i: usize) -> u64 {
        self.cum[i]
    }

    /// All cumulative counts.
    pub fn counts(&self) -> &[u64] {
        &self.cum
    }

    /// Fraction (0..=1) of samples at or below the *upper edge* of the bin
    /// containing `value`. Used for statements like "SLEEP finishes 80 % of
    /// iterations under 0.5 ms".
    pub fn fraction_below(&self, value: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if value < self.lo {
            return 0.0;
        }
        let n = self.cum.len();
        let frac = (value - self.lo) / (self.hi - self.lo);
        let idx = ((frac * n as f64) as usize).min(n - 1);
        self.cum[idx] as f64 / self.total as f64
    }

    /// Smallest bin upper edge at which the cumulative fraction reaches `p`
    /// (0..=1), or `None` if it never does (only when `p > 1`).
    pub fn value_at_fraction(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let target = (p * self.total as f64).ceil() as u64;
        let w = (self.hi - self.lo) / self.cum.len() as f64;
        for (i, &c) in self.cum.iter().enumerate() {
            if c >= target {
                return Some(self.lo + w * (i + 1) as f64);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_into_correct_bins() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        h.record(0.5);
        h.record(9.5);
        h.record(5.0);
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.bin(9), 1);
        assert_eq!(h.bin(5), 1);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.record(-5.0);
        h.record(2.0);
        h.record(1.0); // hi itself is out of the half-open range
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bin(0), 1);
        assert_eq!(h.bin(3), 2);
    }

    #[test]
    fn bin_ranges_tile_the_interval() {
        let h = Histogram::new(0.2, 0.8, 6);
        let (a0, b0) = h.bin_range(0);
        assert!((a0 - 0.2).abs() < 1e-12);
        assert!((b0 - 0.3).abs() < 1e-12);
        let (a5, b5) = h.bin_range(5);
        assert!((a5 - 0.7).abs() < 1e-12);
        assert!((b5 - 0.8).abs() < 1e-12);
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_total() {
        let mut h = Histogram::new(0.0, 1.0, 8);
        for i in 0..100 {
            h.record(i as f64 / 100.0);
        }
        let c = h.cumulative();
        let counts = c.counts();
        for w in counts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*counts.last().unwrap(), 100);
    }

    #[test]
    fn fraction_below_matches_data() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..10 {
            h.record(i as f64 / 10.0 + 0.05);
        }
        let c = h.cumulative();
        assert!((c.fraction_below(0.45) - 0.5).abs() < 1e-9);
        assert!((c.fraction_below(0.95) - 1.0).abs() < 1e-9);
        assert_eq!(c.fraction_below(-1.0), 0.0);
    }

    #[test]
    fn value_at_fraction_inverts_fraction_below() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..10 {
            h.record(i as f64 / 10.0 + 0.05);
        }
        let c = h.cumulative();
        let v = c.value_at_fraction(0.5).unwrap();
        assert!((v - 0.5).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn detects_two_peaks() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        // Peak at bin 2 and bin 7.
        for _ in 0..50 {
            h.record(2.5);
        }
        for _ in 0..20 {
            h.record(1.5);
        }
        for _ in 0..40 {
            h.record(7.5);
        }
        for _ in 0..10 {
            h.record(6.5);
        }
        assert_eq!(h.peak_count(5), 2);
        assert_eq!(h.mode_bin(), 2);
    }

    #[test]
    fn plateau_counts_as_single_peak() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for _ in 0..10 {
            h.record(1.5);
            h.record(2.5);
        }
        h.record(0.5);
        assert_eq!(h.peak_count(2), 1);
    }
}
