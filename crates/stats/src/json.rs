//! A minimal hand-rolled JSON writer and parser.
//!
//! The workspace builds offline with no registry dependencies, so there is
//! no serde. This module covers what the export layer needs: an ordered
//! object/array tree rendered to compact, valid JSON with correct string
//! escaping and float handling (non-finite floats render as `null`), plus a
//! recursive-descent [`Json::parse`] so exported artifacts (Chrome Trace
//! Format windows, bench baselines) can be validated and round-tripped
//! without leaving the workspace.

/// A JSON value tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (counters, nanosecond totals) — rendered exactly.
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Append a key to an object; panics on non-objects (harness bug).
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Object(pairs) => pairs.push((key.into(), value)),
            _ => panic!("Json::push on a non-object"),
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    /// Parse a JSON document. Numbers without `.`/`e` parse as [`Json::UInt`]
    /// (or [`Json::Int`] when negative), everything else as [`Json::Float`];
    /// object key order is preserved. Errors carry a byte offset.
    pub fn parse(src: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Look up `key` in an object; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, or `None` for non-arrays.
    pub fn items(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an unsigned integer (`UInt`, non-negative `Int`, or an
    /// integral non-negative `Float`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            Json::Float(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => {
                Some(*f as u64)
            }
            _ => None,
        }
    }

    /// The value as a float (any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is round-trip exact in Rust and always
                    // parses as a JSON number.
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Recursive-descent parser state over the raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape")?;
                            // Surrogates (emitted by other writers for
                            // astral-plane chars) are not needed for our own
                            // artifacts; map lone ones to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so slicing
                    // on char boundaries is safe via chars()).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf8")?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "invalid utf8")?;
        if float {
            s.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        } else if let Ok(u) = s.parse::<u64>() {
            Ok(Json::UInt(u))
        } else if let Ok(i) = s.parse::<i64>() {
            Ok(Json::Int(i))
        } else {
            // Integer out of u64/i64 range: fall back to float.
            s.parse::<f64>()
                .map(Json::Float)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }
}

/// Write `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Float(2.5).render(), "2.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn object_preserves_order_and_nests() {
        let j = Json::object([
            ("b", Json::from(1u64)),
            ("a", Json::array([Json::from(true), Json::Null])),
        ]);
        assert_eq!(j.render(), "{\"b\":1,\"a\":[true,null]}");
    }

    #[test]
    fn push_extends_objects() {
        let mut j = Json::object::<&str>([]);
        j.push("x", Json::from(0.5));
        assert_eq!(j.render(), "{\"x\":0.5}");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::object([
            ("s", Json::from("a\"b\\c\nd\u{1}")),
            ("u", Json::from(18_446_744_073_709_551_615u64)),
            ("i", Json::from(-42i64)),
            ("f", Json::from(2.5)),
            (
                "arr",
                Json::array([Json::Null, Json::Bool(true), Json::Bool(false)]),
            ),
            ("nested", Json::object([("k", Json::from(0u64))])),
        ]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
    }

    #[test]
    fn parse_accepts_whitespace_and_preserves_key_order() {
        let j = Json::parse(" { \"b\" : 1 ,\n\t\"a\" : [ 1.5 , -2 ] } ").unwrap();
        assert_eq!(
            j,
            Json::object([
                ("b", Json::UInt(1)),
                ("a", Json::array([Json::Float(1.5), Json::Int(-2)])),
            ])
        );
        assert_eq!(j.get("b"), Some(&Json::UInt(1)));
        assert_eq!(j.get("missing"), None);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn numeric_accessors_coerce() {
        assert_eq!(Json::UInt(7).as_u64(), Some(7));
        assert_eq!(Json::Int(7).as_u64(), Some(7));
        assert_eq!(Json::Int(-7).as_u64(), None);
        assert_eq!(Json::Float(7.0).as_u64(), Some(7));
        assert_eq!(Json::Float(7.5).as_u64(), None);
        assert_eq!(Json::UInt(7).as_f64(), Some(7.0));
        assert_eq!(Json::Str("x".into()).as_str(), Some("x"));
    }
}
