//! A minimal hand-rolled JSON writer.
//!
//! The workspace builds offline with no registry dependencies, so there is
//! no serde; the telemetry export layer needs only to *produce* JSON (JSONL
//! cycle records and the `BENCH_telemetry.json` baseline), never to parse
//! it. This writer covers exactly that: an ordered object/array tree
//! rendered to compact, valid JSON with correct string escaping and
//! float handling (non-finite floats render as `null`).

/// A JSON value tree. Object keys keep insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (counters, nanosecond totals) — rendered exactly.
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// An array from values.
    pub fn array(values: impl IntoIterator<Item = Json>) -> Json {
        Json::Array(values.into_iter().collect())
    }

    /// Append a key to an object; panics on non-objects (harness bug).
    pub fn push(&mut self, key: impl Into<String>, value: Json) {
        match self {
            Json::Object(pairs) => pairs.push((key.into(), value)),
            _ => panic!("Json::push on a non-object"),
        }
    }

    /// Render to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write_into(&mut out);
        out
    }

    fn write_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    // `{}` on f64 is round-trip exact in Rust and always
                    // parses as a JSON number.
                    out.push_str(&f.to_string());
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_into(out);
                }
                out.push(']');
            }
            Json::Object(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write_into(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

/// Write `s` as a JSON string literal with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(
            Json::UInt(18_446_744_073_709_551_615).render(),
            "18446744073709551615"
        );
        assert_eq!(Json::Int(-42).render(), "-42");
        assert_eq!(Json::Float(2.5).render(), "2.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(
            Json::Str("a\"b\\c\nd\u{1}".into()).render(),
            "\"a\\\"b\\\\c\\nd\\u0001\""
        );
    }

    #[test]
    fn object_preserves_order_and_nests() {
        let j = Json::object([
            ("b", Json::from(1u64)),
            ("a", Json::array([Json::from(true), Json::Null])),
        ]);
        assert_eq!(j.render(), "{\"b\":1,\"a\":[true,null]}");
    }

    #[test]
    fn push_extends_objects() {
        let mut j = Json::object::<&str>([]);
        j.push("x", Json::from(0.5));
        assert_eq!(j.render(), "{\"x\":0.5}");
    }
}
