//! Measurement and statistics substrate for the DJ Star reproduction.
//!
//! The paper's evaluation (§VI) is built on four kinds of artifacts:
//!
//! * average response times per strategy and thread count (Table I),
//! * speedups relative to the sequential baseline (Fig. 8),
//! * execution-time histograms and cumulative histograms over 10 000
//!   audio-processing cycles (Figs. 9 and 10),
//! * deadline-miss counts against the 2.9 ms sound-card budget.
//!
//! This crate provides exactly those building blocks: [`Summary`] for moment
//! statistics and percentiles, [`Histogram`] with cumulative views,
//! [`SpeedupTable`] for strategy × thread-count matrices,
//! [`DeadlineTracker`] for miss accounting, and plain-text renderers
//! ([`render`]) used by every harness binary so figures can be regenerated on
//! a terminal without a plotting stack.

pub mod ctf;
pub mod deadline;
pub mod dsp;
pub mod faults;
pub mod flightrec;
pub mod forensics;
pub mod histogram;
pub mod json;
pub mod modes;
pub mod net;
pub mod online;
pub mod plan;
pub mod reconfig;
pub mod render;
pub mod report;
pub mod speedup;
pub mod summary;
pub mod telemetry;
pub mod venue;

pub use ctf::{window_from_ctf, window_to_ctf};
pub use deadline::DeadlineTracker;
pub use dsp::{DspReport, KernelSpeedup, StrategyDsp};
pub use faults::{FaultReport, StrategyFaults};
pub use flightrec::{FlightRecReport, StrategyFlightRec};
pub use forensics::{analyze_miss, BlameBreakdown, MissContext, MissDossier, PathSlice, SliceKind};
pub use histogram::{CumulativeView, Histogram};
pub use json::Json;
pub use modes::{ModeAdmissionTrial, ModesReport, StrategyModes};
pub use net::{DepthTrade, FixedDepthRun, NetReport, StrategyNet};
pub use online::OnlineStats;
pub use plan::{scan_baseline_p50, PlanReport};
pub use reconfig::{ReconfigReport, StrategyReconfig};
pub use report::CsvReport;
pub use speedup::SpeedupTable;
pub use summary::Summary;
pub use telemetry::{cycle_json, cycle_json_for_session, MissEntry, Percentiles, TelemetryReport};
pub use venue::{AdmissionTrial, ScalingPoint, SessionLedgerEntry, StrategyVenue, VenueReport};

/// Convert seconds to microseconds (the unit the paper reports graph times in).
#[inline]
pub fn secs_to_us(s: f64) -> f64 {
    s * 1e6
}

/// Convert nanoseconds to milliseconds (the unit of Table I).
#[inline]
pub fn ns_to_ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Convert nanoseconds to microseconds.
#[inline]
pub fn ns_to_us(ns: u64) -> f64 {
    ns as f64 / 1e3
}
