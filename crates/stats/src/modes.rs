//! Report plumbing for E19 (`fig_modes`): mode-aware scheduling — warm
//! blueprint-cache switches vs cold staging, and the schedulability
//! admission sweep against the simulator oracle.
//!
//! The experiment runs every strategy through the same switch storm
//! twice: **cold** (no cache — every switch stages its generation from
//! scratch, PR 4's baseline behaviour) and **warm** (the one-edit
//! neighborhood is precompiled off the audio path, so every switch is a
//! take-once cache hit). The headline claim is the stage-latency ratio:
//! a warm switch must be materially (≥ [`ModesReport::min_speedup`]×)
//! faster at the median than a cold one, while staying bit-exact with
//! the cold run and adding no misses beyond host noise.
//!
//! The **admission sweep** walks a family of target shapes — including
//! boundary shapes whose list-schedule bound straddles the margined
//! budget by ±1 ns — and requires the engine's accept/reject verdict to
//! agree with the simulator's [`djstar_sim::admissible`] oracle on every
//! single trial, with both outcomes represented (a sweep that only ever
//! accepts proves nothing).

use crate::json::Json;
use crate::summary::Summary;

/// One strategy's cold-vs-warm switch-storm comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyModes {
    /// Strategy label ("SEQ", "BUSY", …).
    pub strategy: String,
    /// Stage latency (ns) of each cold (cache-less) switch.
    pub cold_stage_ns: Vec<u64>,
    /// Stage latency (ns) of each warm (cache-hit) switch.
    pub warm_stage_ns: Vec<u64>,
    /// Deadline misses over the cold storm run.
    pub cold_misses: u64,
    /// Deadline misses over the warm storm run (same cycle count).
    pub warm_misses: u64,
    /// Folded FNV checksum of every cycle's audio over the cold run.
    pub cold_checksum: u64,
    /// Folded FNV checksum of every cycle's audio over the warm run.
    pub warm_checksum: u64,
    /// Cache hits observed during the warm run.
    pub cache_hits: u64,
    /// Cache misses observed during the warm run.
    pub cache_misses: u64,
    /// Switches committed in each run.
    pub swaps: u64,
    /// Warm-run cycles that met the deadline before the commit cost was
    /// charged and missed after (commit cost material) — same causal
    /// metric as E13.
    pub commit_blown: u64,
}

impl StrategyModes {
    fn percentile(samples: &[u64], q: f64) -> f64 {
        let as_f64: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        Summary::percentile(&as_f64, q).unwrap_or(0.0)
    }

    /// p50 of cold staging time (ns).
    pub fn cold_stage_p50_ns(&self) -> f64 {
        Self::percentile(&self.cold_stage_ns, 50.0)
    }

    /// p99 of cold staging time (ns).
    pub fn cold_stage_p99_ns(&self) -> f64 {
        Self::percentile(&self.cold_stage_ns, 99.0)
    }

    /// p50 of warm staging time (ns).
    pub fn warm_stage_p50_ns(&self) -> f64 {
        Self::percentile(&self.warm_stage_ns, 50.0)
    }

    /// p99 of warm staging time (ns).
    pub fn warm_stage_p99_ns(&self) -> f64 {
        Self::percentile(&self.warm_stage_ns, 99.0)
    }

    /// Median stage-latency ratio, cold over warm — the headline speedup
    /// of serving a switch from the blueprint cache.
    pub fn stage_speedup(&self) -> f64 {
        let warm = self.warm_stage_p50_ns();
        if warm <= 0.0 {
            return 0.0;
        }
        self.cold_stage_p50_ns() / warm
    }

    /// Cached and cold execution produced bit-identical audio.
    pub fn bit_exact(&self) -> bool {
        self.cold_checksum == self.warm_checksum
    }

    /// Every warm switch hit the cache (no fallback to cold staging).
    pub fn all_from_cache(&self) -> bool {
        self.cache_misses == 0 && self.cache_hits >= self.swaps
    }

    /// Misses the warm run added over the cold baseline (saturating, as
    /// in E13 — independent runs wobble both ways).
    pub fn added_misses(&self) -> u64 {
        self.warm_misses.saturating_sub(self.cold_misses)
    }

    /// Host-noise allowance for the warm-vs-cold miss difference, same
    /// construction as E13's storm-vs-static allowance.
    pub fn noise_allowance(&self, switches: usize) -> u64 {
        ((switches / 2) as u64)
            .max((self.cold_misses + self.warm_misses) / 4)
            .max(2)
    }

    fn to_json(&self, switches: usize) -> Json {
        Json::object([
            ("strategy", Json::from(self.strategy.clone())),
            (
                "cold_stage_ns",
                Json::object([
                    ("p50", Json::from(self.cold_stage_p50_ns())),
                    ("p99", Json::from(self.cold_stage_p99_ns())),
                ]),
            ),
            (
                "warm_stage_ns",
                Json::object([
                    ("p50", Json::from(self.warm_stage_p50_ns())),
                    ("p99", Json::from(self.warm_stage_p99_ns())),
                ]),
            ),
            ("stage_speedup", Json::Float(self.stage_speedup())),
            ("cold_misses", Json::from(self.cold_misses)),
            ("warm_misses", Json::from(self.warm_misses)),
            ("added_misses", Json::from(self.added_misses())),
            (
                "noise_allowance",
                Json::from(self.noise_allowance(switches)),
            ),
            ("bit_exact", Json::from(self.bit_exact())),
            ("cache_hits", Json::from(self.cache_hits)),
            ("cache_misses", Json::from(self.cache_misses)),
            ("swaps", Json::from(self.swaps)),
            ("commit_blown_deadlines", Json::from(self.commit_blown)),
        ])
    }
}

/// One shape of the admission sweep: the engine's verdict next to the
/// simulator oracle's.
#[derive(Debug, Clone, PartialEq)]
pub struct ModeAdmissionTrial {
    /// Human label of the target shape ("decks=4 fx=8/8/8/8", …).
    pub label: String,
    /// List-schedule bound of the shape (ns).
    pub bound_ns: u64,
    /// Margined cycle budget it was admitted against (ns).
    pub budget_ns: u64,
    /// Did the engine's `stage_edits` admission accept it?
    pub accepted: bool,
    /// Does the simulator's `admissible` oracle accept it?
    pub oracle_admits: bool,
}

impl ModeAdmissionTrial {
    /// Engine and oracle agree on this shape.
    pub fn agrees(&self) -> bool {
        self.accepted == self.oracle_admits
    }

    /// The bound sits within ±1 ns of the budget — the deliberately
    /// constructed boundary cases.
    pub fn is_boundary(&self) -> bool {
        self.bound_ns.abs_diff(self.budget_ns) <= 1
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("label", Json::from(self.label.clone())),
            ("bound_ns", Json::from(self.bound_ns)),
            ("budget_ns", Json::from(self.budget_ns)),
            ("accepted", Json::from(self.accepted)),
            ("oracle_admits", Json::from(self.oracle_admits)),
            ("agrees", Json::from(self.agrees())),
            ("boundary", Json::from(self.is_boundary())),
        ])
    }
}

/// Aggregated E19 results: per-strategy cache storms plus the admission
/// sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ModesReport {
    /// Worker threads of the parallel strategies.
    pub threads: usize,
    /// Measured cycles per storm run.
    pub cycles: usize,
    /// Switches in each storm.
    pub switches: usize,
    /// Sound-card deadline (ns).
    pub deadline_ns: u64,
    /// The stage-speedup acceptance floor (5.0 for the full-scale gate).
    pub min_speedup: f64,
    /// Per-strategy cold-vs-warm storms.
    pub strategies: Vec<StrategyModes>,
    /// The admission sweep, one trial per target shape.
    pub admission: Vec<ModeAdmissionTrial>,
}

impl ModesReport {
    /// Acceptance: every strategy's median warm switch beats its median
    /// cold switch by at least [`min_speedup`](Self::min_speedup)×.
    pub fn cache_speedup_ok(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.stage_speedup() >= self.min_speedup)
    }

    /// Acceptance: warm and cold runs produced bit-identical audio for
    /// every strategy.
    pub fn bit_exact(&self) -> bool {
        self.strategies.iter().all(|s| s.bit_exact())
    }

    /// Acceptance: every warm switch was served from the cache.
    pub fn all_from_cache(&self) -> bool {
        self.strategies.iter().all(|s| s.all_from_cache())
    }

    /// Acceptance: the warm storm added no misses beyond host noise.
    pub fn warm_within_noise(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.added_misses() <= s.noise_allowance(self.switches))
    }

    /// Acceptance: no warm-run cycle missed *because of* a commit.
    pub fn no_commit_blown(&self) -> bool {
        self.strategies.iter().all(|s| s.commit_blown == 0)
    }

    /// Acceptance: every strategy committed every scheduled switch in
    /// both runs.
    pub fn all_swaps_committed(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.swaps == self.switches as u64)
    }

    /// Acceptance: engine admission and the sim oracle agree on every
    /// swept shape — including the ±1 ns boundary shapes.
    pub fn admission_agrees(&self) -> bool {
        self.admission.iter().all(|t| t.agrees())
    }

    /// Acceptance: the sweep exercised both verdicts (at least one
    /// accept, one reject and one boundary shape) — agreement over an
    /// all-accept sweep would be vacuous.
    pub fn admission_non_vacuous(&self) -> bool {
        self.admission.iter().any(|t| t.accepted)
            && self.admission.iter().any(|t| !t.accepted)
            && self.admission.iter().any(|t| t.is_boundary())
    }

    /// The `BENCH_modes.json` tree.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("bench", Json::from("modes")),
            ("threads", Json::from(self.threads)),
            ("cycles", Json::from(self.cycles)),
            ("switches", Json::from(self.switches)),
            ("deadline_ns", Json::from(self.deadline_ns)),
            ("min_speedup", Json::Float(self.min_speedup)),
            (
                "strategies",
                Json::Array(
                    self.strategies
                        .iter()
                        .map(|s| s.to_json(self.switches))
                        .collect(),
                ),
            ),
            (
                "admission",
                Json::Array(self.admission.iter().map(|t| t.to_json()).collect()),
            ),
            (
                "checks",
                Json::object([
                    ("cache_speedup_ok", Json::from(self.cache_speedup_ok())),
                    ("bit_exact", Json::from(self.bit_exact())),
                    ("all_from_cache", Json::from(self.all_from_cache())),
                    ("warm_within_noise", Json::from(self.warm_within_noise())),
                    ("no_commit_blown", Json::from(self.no_commit_blown())),
                    (
                        "all_swaps_committed",
                        Json::from(self.all_swaps_committed()),
                    ),
                    ("admission_agrees", Json::from(self.admission_agrees())),
                    (
                        "admission_non_vacuous",
                        Json::from(self.admission_non_vacuous()),
                    ),
                ]),
            ),
        ])
    }

    /// Human-readable summary table for the binary's stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} switches over {} cycles, {} threads, deadline {:.1} ms, speedup floor {:.0}x\n",
            self.switches,
            self.cycles,
            self.threads,
            self.deadline_ns as f64 / 1e6,
            self.min_speedup,
        ));
        out.push_str(
            "strategy  cold p50/p99 (us)  warm p50/p99 (us)  speedup  hits  miss  exact  added\n",
        );
        for s in &self.strategies {
            out.push_str(&format!(
                "{:<8} {:>8.1} /{:>8.1} {:>8.1} /{:>8.1} {:>8.1}x {:>5} {:>5} {:>6} {:>6}\n",
                s.strategy,
                s.cold_stage_p50_ns() / 1e3,
                s.cold_stage_p99_ns() / 1e3,
                s.warm_stage_p50_ns() / 1e3,
                s.warm_stage_p99_ns() / 1e3,
                s.stage_speedup(),
                s.cache_hits,
                s.cache_misses,
                s.bit_exact(),
                s.added_misses(),
            ));
        }
        let agreed = self.admission.iter().filter(|t| t.agrees()).count();
        let accepted = self.admission.iter().filter(|t| t.accepted).count();
        let boundary = self.admission.iter().filter(|t| t.is_boundary()).count();
        out.push_str(&format!(
            "admission: {} shapes, {} accepted, {} boundary, {}/{} agree with sim oracle\n",
            self.admission.len(),
            accepted,
            boundary,
            agreed,
            self.admission.len(),
        ));
        out.push_str(&format!(
            "checks: cache-speedup-ok={} bit-exact={} all-from-cache={} warm-within-noise={} no-commit-blown={} all-swaps-committed={} admission-agrees={} admission-non-vacuous={}\n",
            self.cache_speedup_ok(),
            self.bit_exact(),
            self.all_from_cache(),
            self.warm_within_noise(),
            self.no_commit_blown(),
            self.all_swaps_committed(),
            self.admission_agrees(),
            self.admission_non_vacuous(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strat(label: &str) -> StrategyModes {
        StrategyModes {
            strategy: label.to_string(),
            cold_stage_ns: vec![900_000, 1_000_000, 1_100_000],
            warm_stage_ns: vec![90_000, 100_000, 110_000],
            cold_misses: 1,
            warm_misses: 1,
            cold_checksum: 0xabcd,
            warm_checksum: 0xabcd,
            cache_hits: 3,
            cache_misses: 0,
            swaps: 3,
            commit_blown: 0,
        }
    }

    fn trial(label: &str, bound: u64, budget: u64) -> ModeAdmissionTrial {
        ModeAdmissionTrial {
            label: label.to_string(),
            bound_ns: bound,
            budget_ns: budget,
            accepted: bound <= budget,
            oracle_admits: bound <= budget,
        }
    }

    fn report() -> ModesReport {
        ModesReport {
            threads: 3,
            cycles: 1_000,
            switches: 3,
            deadline_ns: 2_900_000,
            min_speedup: 5.0,
            strategies: vec![strat("SEQ"), strat("WS")],
            admission: vec![
                trial("paper", 1_000, 2_000),
                trial("boundary-in", 2_000, 2_000),
                trial("boundary-out", 2_001, 2_000),
                trial("overload", 9_000, 2_000),
            ],
        }
    }

    #[test]
    fn speedup_is_the_p50_ratio() {
        let s = strat("SEQ");
        assert!((s.stage_speedup() - 10.0).abs() < 0.5);
        let empty = StrategyModes {
            warm_stage_ns: vec![],
            ..s
        };
        assert_eq!(empty.stage_speedup(), 0.0);
    }

    #[test]
    fn checks_pass_and_fail() {
        let good = report();
        assert!(good.cache_speedup_ok());
        assert!(good.bit_exact());
        assert!(good.all_from_cache());
        assert!(good.warm_within_noise());
        assert!(good.no_commit_blown());
        assert!(good.all_swaps_committed());

        let mut slow = report();
        slow.strategies[0].warm_stage_ns = slow.strategies[0].cold_stage_ns.clone();
        assert!(!slow.cache_speedup_ok());

        let mut diverged = report();
        diverged.strategies[1].warm_checksum ^= 1;
        assert!(!diverged.bit_exact());

        let mut cold_path = report();
        cold_path.strategies[0].cache_misses = 1;
        assert!(!cold_path.all_from_cache());

        let mut missed = report();
        missed.strategies[0].swaps = 2;
        assert!(!missed.all_swaps_committed());
        missed.strategies[0].commit_blown = 1;
        assert!(!missed.no_commit_blown());
    }

    #[test]
    fn admission_gates_need_agreement_and_both_verdicts() {
        let good = report();
        assert!(good.admission_agrees());
        assert!(good.admission_non_vacuous());

        let mut disagree = report();
        disagree.admission[1].accepted = false; // oracle still admits
        assert!(!disagree.admission_agrees());

        let mut vacuous = report();
        vacuous.admission.retain(|t| t.accepted);
        assert!(vacuous.admission_agrees());
        assert!(!vacuous.admission_non_vacuous());
    }

    #[test]
    fn boundary_trials_straddle_the_budget() {
        let r = report();
        assert!(!r.admission[0].is_boundary());
        assert!(r.admission[1].is_boundary() && r.admission[1].accepted);
        assert!(r.admission[2].is_boundary() && !r.admission[2].accepted);
    }

    #[test]
    fn json_has_all_sections() {
        let j = report().to_json().render();
        assert!(j.starts_with("{\"bench\":\"modes\""));
        assert!(j.contains("\"strategies\":["));
        assert!(j.contains("\"stage_speedup\":"));
        assert!(j.contains("\"admission\":["));
        assert!(j.contains("\"cache_speedup_ok\":true"));
        assert!(j.contains("\"bit_exact\":true"));
        assert!(j.contains("\"admission_agrees\":true"));
        assert!(j.contains("\"admission_non_vacuous\":true"));
        let text = report().render();
        assert!(text.contains("SEQ"));
        assert!(text.contains("agree with sim oracle"));
        assert!(text.contains("cache-speedup-ok=true"));
    }
}
