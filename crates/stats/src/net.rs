//! Report plumbing for E17 (`fig_net`): networked decks under a
//! deterministic packet-fault trace, across strategies and jitter-buffer
//! depth policies.
//!
//! The experiment has three legs:
//!
//! 1. **Determinism** — every strategy × thread-count run of the same
//!    lossy trace seed must produce byte-identical audio *and* identical
//!    packet statistics (the trace is a pure function of
//!    `(seed, cycle, stream)`, never of scheduling).
//! 2. **Latency/dropout trade** — a fixed-depth sweep maps the frontier
//!    (deeper buffer ⇒ more latency, fewer dropouts); the adaptive
//!    policy must cut dropouts by [`NetReport::cut_factor`] against the
//!    best fixed depth at no more median latency, with the clairvoyant
//!    oracle floor ([`djstar_sim::netsim`]) reported alongside.
//! 3. **Cost of the machinery** — a clean network adds zero deadline
//!    misses over the no-network baseline, and the reception hot path
//!    allocates nothing.

use crate::json::Json;

/// One strategy × thread-count run of the lossy trace.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyNet {
    /// Strategy label ("SEQ", "BUSY", …).
    pub strategy: String,
    /// Worker threads of this run.
    pub threads: usize,
    /// Output checksum of the lossy-trace run (gate: all runs agree).
    pub checksum: u64,
    /// Packets received across all remote decks.
    pub received: u64,
    /// Packets outright lost in the trace.
    pub lost: u64,
    /// Packets that arrived too late for their play slot.
    pub late: u64,
    /// Play slots concealed (hold-last/fade) — the dropout count.
    pub concealed: u64,
    /// Deadline misses with no network in the graph (reference).
    pub baseline_misses: u64,
    /// Deadline misses with remote decks on a *clean* network.
    pub clean_net_misses: u64,
}

/// One fixed-depth run of the latency/dropout sweep (reference
/// strategy; audio is strategy-independent by the determinism gate).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FixedDepthRun {
    /// Jitter-buffer depth in cycles — also the added latency.
    pub depth: u32,
    /// Concealed play slots over the measured run.
    pub dropouts: u64,
}

/// The fixed-vs-adaptive depth comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthTrade {
    /// Fixed-depth sweep, shallow to deep.
    pub fixed: Vec<FixedDepthRun>,
    /// Dropouts of the adaptive run.
    pub adaptive_dropouts: u64,
    /// Median buffer depth (= median latency, cycles) of the adaptive run.
    pub adaptive_median_depth: f64,
    /// Depth transitions the governor committed.
    pub adaptive_transitions: u64,
    /// Clairvoyant lower bound: dropouts no buffer at any depth avoids
    /// (outright-lost packets, from the sim oracle).
    pub unavoidable: u64,
}

impl DepthTrade {
    /// The best (fewest-dropout) fixed run whose latency does not exceed
    /// the adaptive run's median — the fair competitor.
    pub fn best_fixed_at_equal_latency(&self) -> Option<FixedDepthRun> {
        self.fixed
            .iter()
            .filter(|r| (r.depth as f64) <= self.adaptive_median_depth + 1e-9)
            .min_by_key(|r| r.dropouts)
            .copied()
    }
}

/// Aggregated E17 results.
#[derive(Debug, Clone, PartialEq)]
pub struct NetReport {
    /// Measured cycles per run.
    pub cycles: usize,
    /// Trace seed (every packet fate is a pure function of it).
    pub seed: u64,
    /// Sound-card deadline (ns) for the miss gates.
    pub deadline_ns: u64,
    /// Required dropout-division factor for the adaptive gate.
    pub cut_factor: f64,
    /// Dropouts the fair fixed competitor must accumulate for the cut
    /// ratio to be meaningful (calibration check).
    pub min_fixed_dropouts: u64,
    /// Extra clean-network misses tolerated per strategy (host noise).
    pub miss_slack: u64,
    /// Allocations counted on the reception hot path during the measured
    /// window (gate: exactly zero).
    pub hot_path_allocs: u64,
    /// Per-strategy lossy-trace runs.
    pub strategies: Vec<StrategyNet>,
    /// The depth sweep and adaptive comparison.
    pub trade: DepthTrade,
}

impl NetReport {
    /// Acceptance (headline): every strategy × thread-count run of the
    /// fixed trace seed produced byte-identical audio.
    pub fn bit_exact_across_runs(&self) -> bool {
        self.strategies
            .windows(2)
            .all(|w| w[0].checksum == w[1].checksum)
    }

    /// Acceptance: packet statistics are scheduling-independent — every
    /// run counted the same received/lost/late/concealed totals.
    pub fn stats_identical_across_runs(&self) -> bool {
        self.strategies.windows(2).all(|w| {
            w[0].received == w[1].received
                && w[0].lost == w[1].lost
                && w[0].late == w[1].late
                && w[0].concealed == w[1].concealed
        }) && self.strategies.iter().all(|s| s.received > 0)
    }

    /// Acceptance: the trace actually bites — the fair fixed competitor
    /// drops at least [`min_fixed_dropouts`](Self::min_fixed_dropouts)
    /// (otherwise the cut ratio would be vacuous).
    pub fn trace_bites(&self) -> bool {
        self.trade
            .best_fixed_at_equal_latency()
            .is_some_and(|r| r.dropouts >= self.min_fixed_dropouts)
    }

    /// Acceptance (headline): the adaptive policy divides dropouts by at
    /// least [`cut_factor`](Self::cut_factor) against the best fixed
    /// depth at no more median latency.
    pub fn adaptive_cuts_dropouts(&self) -> bool {
        self.trade
            .best_fixed_at_equal_latency()
            .is_some_and(|best| {
                self.trade.adaptive_dropouts as f64 * self.cut_factor <= best.dropouts as f64
            })
    }

    /// Acceptance: the governor actually navigated the ladder — at least
    /// one committed depth transition in the adaptive run.
    pub fn governor_engaged(&self) -> bool {
        self.trade.adaptive_transitions >= 1
    }

    /// Acceptance: deeper fixed buffers never drop more — the sweep is
    /// monotone non-increasing in depth (a jitter-buffer sanity check).
    pub fn sweep_monotone(&self) -> bool {
        self.trade.fixed.windows(2).all(|w| {
            debug_assert!(w[0].depth < w[1].depth, "sweep must be sorted");
            w[0].dropouts >= w[1].dropouts
        })
    }

    /// Acceptance: no run beat the clairvoyant oracle — measured
    /// dropouts are at least the unavoidable floor (a counting-integrity
    /// check; beating a lower bound means a counter lies).
    pub fn oracle_floor_holds(&self) -> bool {
        self.trade.adaptive_dropouts >= self.trade.unavoidable
            && self
                .trade
                .fixed
                .iter()
                .all(|r| r.dropouts >= self.trade.unavoidable)
    }

    /// Acceptance: remote decks on a clean network add zero deadline
    /// misses (within [`miss_slack`](Self::miss_slack)) per strategy.
    pub fn no_added_misses_clean(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.clean_net_misses <= s.baseline_misses + self.miss_slack)
    }

    /// Acceptance: the reception hot path allocated nothing during the
    /// measured window.
    pub fn zero_alloc_hot_path(&self) -> bool {
        self.hot_path_allocs == 0
    }

    /// Names of the acceptance gates that currently fail — a tripped
    /// strict run prints exactly which gate died.
    pub fn failed_gates(&self) -> Vec<&'static str> {
        let mut failed = Vec::new();
        if !self.bit_exact_across_runs() {
            failed.push("bit_exact_across_runs");
        }
        if !self.stats_identical_across_runs() {
            failed.push("stats_identical_across_runs");
        }
        if !self.trace_bites() {
            failed.push("trace_bites");
        }
        if !self.adaptive_cuts_dropouts() {
            failed.push("adaptive_cuts_dropouts");
        }
        if !self.governor_engaged() {
            failed.push("governor_engaged");
        }
        if !self.sweep_monotone() {
            failed.push("sweep_monotone");
        }
        if !self.oracle_floor_holds() {
            failed.push("oracle_floor_holds");
        }
        if !self.no_added_misses_clean() {
            failed.push("no_added_misses_clean");
        }
        if !self.zero_alloc_hot_path() {
            failed.push("zero_alloc_hot_path");
        }
        failed
    }

    /// The `BENCH_net.json` tree.
    pub fn to_json(&self) -> Json {
        let strategies = Json::Array(
            self.strategies
                .iter()
                .map(|s| {
                    Json::object([
                        ("strategy", Json::from(s.strategy.clone())),
                        ("threads", Json::from(s.threads)),
                        ("checksum", Json::from(s.checksum)),
                        ("received", Json::from(s.received)),
                        ("lost", Json::from(s.lost)),
                        ("late", Json::from(s.late)),
                        ("concealed", Json::from(s.concealed)),
                        ("baseline_misses", Json::from(s.baseline_misses)),
                        ("clean_net_misses", Json::from(s.clean_net_misses)),
                    ])
                })
                .collect(),
        );
        let fixed = Json::Array(
            self.trade
                .fixed
                .iter()
                .map(|r| {
                    Json::object([
                        ("depth", Json::from(r.depth as u64)),
                        ("dropouts", Json::from(r.dropouts)),
                    ])
                })
                .collect(),
        );
        let best = self.trade.best_fixed_at_equal_latency();
        Json::object([
            ("bench", Json::from("net")),
            ("cycles", Json::from(self.cycles)),
            ("seed", Json::from(self.seed)),
            ("deadline_ns", Json::from(self.deadline_ns)),
            ("cut_factor", Json::from(self.cut_factor)),
            ("min_fixed_dropouts", Json::from(self.min_fixed_dropouts)),
            ("miss_slack", Json::from(self.miss_slack)),
            ("hot_path_allocs", Json::from(self.hot_path_allocs)),
            ("strategies", strategies),
            (
                "trade",
                Json::object([
                    ("fixed", fixed),
                    (
                        "adaptive_dropouts",
                        Json::from(self.trade.adaptive_dropouts),
                    ),
                    (
                        "adaptive_median_depth",
                        Json::from(self.trade.adaptive_median_depth),
                    ),
                    (
                        "adaptive_transitions",
                        Json::from(self.trade.adaptive_transitions),
                    ),
                    ("unavoidable", Json::from(self.trade.unavoidable)),
                    (
                        "best_fixed_depth",
                        Json::from(best.map_or(0u64, |r| r.depth as u64)),
                    ),
                    (
                        "best_fixed_dropouts",
                        Json::from(best.map_or(0u64, |r| r.dropouts)),
                    ),
                ]),
            ),
            (
                "checks",
                Json::object([
                    (
                        "bit_exact_across_runs",
                        Json::from(self.bit_exact_across_runs()),
                    ),
                    (
                        "stats_identical_across_runs",
                        Json::from(self.stats_identical_across_runs()),
                    ),
                    ("trace_bites", Json::from(self.trace_bites())),
                    (
                        "adaptive_cuts_dropouts",
                        Json::from(self.adaptive_cuts_dropouts()),
                    ),
                    ("governor_engaged", Json::from(self.governor_engaged())),
                    ("sweep_monotone", Json::from(self.sweep_monotone())),
                    ("oracle_floor_holds", Json::from(self.oracle_floor_holds())),
                    (
                        "no_added_misses_clean",
                        Json::from(self.no_added_misses_clean()),
                    ),
                    (
                        "zero_alloc_hot_path",
                        Json::from(self.zero_alloc_hot_path()),
                    ),
                ]),
            ),
        ])
    }

    /// Human-readable summary table for the binary's stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "net trace seed {:#x} over {} cycles, deadline {:.1} ms\n",
            self.seed,
            self.cycles,
            self.deadline_ns as f64 / 1e6
        ));
        out.push_str("strategy   thr  recv    lost  late  conceal  base-miss  clean-miss\n");
        for s in &self.strategies {
            out.push_str(&format!(
                "{:<9} {:>4} {:>6} {:>6} {:>5} {:>8} {:>10} {:>11}\n",
                s.strategy,
                s.threads,
                s.received,
                s.lost,
                s.late,
                s.concealed,
                s.baseline_misses,
                s.clean_net_misses,
            ));
        }
        out.push_str("depth sweep (fixed):");
        for r in &self.trade.fixed {
            out.push_str(&format!(" d{}={}", r.depth, r.dropouts));
        }
        let best = self.trade.best_fixed_at_equal_latency();
        out.push_str(&format!(
            "\nadaptive: dropouts={} median-depth={:.1} transitions={} | best-fixed@<=latency: d{}={} | oracle floor={}\n",
            self.trade.adaptive_dropouts,
            self.trade.adaptive_median_depth,
            self.trade.adaptive_transitions,
            best.map_or(0, |r| r.depth),
            best.map_or(0, |r| r.dropouts),
            self.trade.unavoidable,
        ));
        out.push_str(&format!(
            "checks: bit-exact={} stats-identical={} trace-bites={} adaptive-cuts={} governor-engaged={} sweep-monotone={} oracle-floor={} no-added-misses={} zero-alloc={}\n",
            self.bit_exact_across_runs(),
            self.stats_identical_across_runs(),
            self.trace_bites(),
            self.adaptive_cuts_dropouts(),
            self.governor_engaged(),
            self.sweep_monotone(),
            self.oracle_floor_holds(),
            self.no_added_misses_clean(),
            self.zero_alloc_hot_path(),
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strat(label: &str, threads: usize) -> StrategyNet {
        StrategyNet {
            strategy: label.to_string(),
            threads,
            checksum: 0xFEED,
            received: 5_800,
            lost: 120,
            late: 300,
            concealed: 150,
            baseline_misses: 2,
            clean_net_misses: 2,
        }
    }

    fn report() -> NetReport {
        NetReport {
            cycles: 3_000,
            seed: 0xE17,
            deadline_ns: 2_900_000,
            cut_factor: 5.0,
            min_fixed_dropouts: 50,
            miss_slack: 0,
            hot_path_allocs: 0,
            strategies: vec![strat("SEQ", 1), strat("WS", 4)],
            trade: DepthTrade {
                fixed: vec![
                    FixedDepthRun {
                        depth: 1,
                        dropouts: 900,
                    },
                    FixedDepthRun {
                        depth: 3,
                        dropouts: 400,
                    },
                    FixedDepthRun {
                        depth: 6,
                        dropouts: 140,
                    },
                    FixedDepthRun {
                        depth: 9,
                        dropouts: 120,
                    },
                ],
                adaptive_dropouts: 60,
                adaptive_median_depth: 4.0,
                adaptive_transitions: 7,
                unavoidable: 55,
            },
        }
    }

    #[test]
    fn fair_competitor_respects_the_latency_budget() {
        let r = report();
        // Median depth 4.0: depths 1 and 3 qualify, 6 and 9 do not.
        let best = r.trade.best_fixed_at_equal_latency().unwrap();
        assert_eq!(best.depth, 3);
        assert_eq!(best.dropouts, 400);
        // 60 * 5 = 300 <= 400: the adaptive gate passes.
        assert!(r.adaptive_cuts_dropouts());
        // A deeper median unlocks the deeper (better) fixed runs and the
        // gate tightens.
        let mut deep = report();
        deep.trade.adaptive_median_depth = 6.0;
        assert_eq!(deep.trade.best_fixed_at_equal_latency().unwrap().depth, 6);
        assert!(!deep.adaptive_cuts_dropouts()); // 300 > 140
    }

    #[test]
    fn bit_exactness_and_stats_cover_all_runs() {
        let good = report();
        assert!(good.bit_exact_across_runs());
        assert!(good.stats_identical_across_runs());
        let mut diverged = report();
        diverged.strategies[1].checksum = 1;
        assert!(!diverged.bit_exact_across_runs());
        let mut skewed = report();
        skewed.strategies[1].concealed = 151;
        assert!(!skewed.stats_identical_across_runs());
        let mut silent = report();
        for s in &mut silent.strategies {
            s.received = 0;
        }
        assert!(!silent.stats_identical_across_runs());
    }

    #[test]
    fn calibration_and_governor_gates() {
        let good = report();
        assert!(good.trace_bites());
        assert!(good.governor_engaged());
        let mut gentle = report();
        gentle.min_fixed_dropouts = 500; // fair competitor only drops 400
        assert!(!gentle.trace_bites());
        let mut frozen = report();
        frozen.trade.adaptive_transitions = 0;
        assert!(!frozen.governor_engaged());
    }

    #[test]
    fn sweep_and_oracle_sanity_gates() {
        let good = report();
        assert!(good.sweep_monotone());
        assert!(good.oracle_floor_holds());
        let mut bumpy = report();
        bumpy.trade.fixed[2].dropouts = 500; // deeper than d3 yet worse
        assert!(!bumpy.sweep_monotone());
        let mut impossible = report();
        impossible.trade.adaptive_dropouts = 54; // beats the lower bound
        assert!(!impossible.oracle_floor_holds());
    }

    #[test]
    fn clean_misses_and_alloc_gates() {
        let good = report();
        assert!(good.no_added_misses_clean());
        assert!(good.zero_alloc_hot_path());
        let mut pricey = report();
        pricey.strategies[1].clean_net_misses = 3;
        assert!(!pricey.no_added_misses_clean());
        pricey.miss_slack = 1;
        assert!(pricey.no_added_misses_clean());
        let mut leaky = report();
        leaky.hot_path_allocs = 64;
        assert!(!leaky.zero_alloc_hot_path());
    }

    #[test]
    fn failed_gates_name_the_culprits() {
        assert!(report().failed_gates().is_empty());
        let mut bad = report();
        bad.trade.adaptive_dropouts = 90; // 450 > 400
        bad.hot_path_allocs = 8;
        assert_eq!(
            bad.failed_gates(),
            vec!["adaptive_cuts_dropouts", "zero_alloc_hot_path"]
        );
    }

    #[test]
    fn json_and_render_have_all_sections() {
        let j = report().to_json().render();
        assert!(j.starts_with("{\"bench\":\"net\""));
        assert!(j.contains("\"strategies\":["));
        assert!(j.contains("\"trade\":{"));
        assert!(j.contains("\"adaptive_cuts_dropouts\":true"));
        assert!(j.contains("\"zero_alloc_hot_path\":true"));
        assert!(j.contains("\"best_fixed_depth\":3"));
        let text = report().render();
        assert!(text.contains("WS"));
        assert!(text.contains("depth sweep"));
        assert!(text.contains("adaptive-cuts=true"));
    }
}
