//! Online (single-pass, constant-memory) statistics.
//!
//! The 10 000-cycle measurement runs should not retain every sample when
//! only aggregates are needed; [`OnlineStats`] implements Welford's
//! algorithm for numerically stable streaming mean/variance, plus min/max
//! tracking. Merging two accumulators (for per-worker collection) uses the
//! parallel variance combination rule.

/// Welford streaming accumulator.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (Bessel-corrected; 0 for fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (Chan et al. combination).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_batch_computation() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut o = OnlineStats::new();
        for &s in &samples {
            o.push(s);
        }
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let var =
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (samples.len() - 1) as f64;
        assert!((o.mean() - mean).abs() < 1e-12);
        assert!((o.variance() - var).abs() < 1e-12);
        assert_eq!(o.min(), Some(1.0));
        assert_eq!(o.max(), Some(9.0));
        assert_eq!(o.count(), 8);
    }

    #[test]
    fn empty_is_benign() {
        let o = OnlineStats::new();
        assert_eq!(o.mean(), 0.0);
        assert_eq!(o.variance(), 0.0);
        assert_eq!(o.min(), None);
    }

    #[test]
    fn merge_equals_sequential() {
        let all: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &s in &all {
            whole.push(s);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for (i, &s) in all.iter().enumerate() {
            if i % 3 == 0 {
                a.push(s);
            } else {
                b.push(s);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
    }

    #[test]
    fn merge_with_empty_sides() {
        let mut a = OnlineStats::new();
        a.push(5.0);
        let empty = OnlineStats::new();
        let mut b = a;
        b.merge(&empty);
        assert_eq!(b, a);
        let mut c = OnlineStats::new();
        c.merge(&a);
        assert_eq!(c.count(), 1);
        assert_eq!(c.mean(), 5.0);
    }

    #[test]
    fn numerically_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: huge mean, small variance.
        let mut o = OnlineStats::new();
        for i in 0..1000 {
            o.push(1e9 + (i % 2) as f64);
        }
        assert!((o.variance() - 0.2502).abs() < 0.01, "{}", o.variance());
    }
}
