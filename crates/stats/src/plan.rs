//! Report plumbing for E12 (`fig4_plan_executor`): the PLAN-executor
//! comparison against the list-scheduler bound, simulated BUSY, and the
//! E11 wall-clock baseline.
//!
//! Also hosts the tiny scanner that pulls a strategy's p50 out of
//! `BENCH_telemetry.json` — the workspace has a JSON *writer* only, and the
//! one value E12 needs does not justify growing a parser.

use crate::json::Json;

/// Aggregated E12 results: simulated three-way comparison at `threads`
/// virtual cores plus the single-thread wall-clock regression check.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanReport {
    /// Virtual cores of the simulated comparison.
    pub threads: usize,
    /// Simulated cycles behind the empirical medians.
    pub cycles: usize,
    /// List-scheduler bound on per-node mean durations (ns).
    pub bound_ns: u64,
    /// Simulated PLAN makespan on the same mean durations (ns).
    pub plan_ns: u64,
    /// Simulated BUSY makespan on the same mean durations (ns).
    pub busy_ns: u64,
    /// Median simulated PLAN makespan over empirical per-cycle durations.
    pub plan_empirical_median_ns: u64,
    /// Median simulated BUSY makespan over empirical per-cycle durations.
    pub busy_empirical_median_ns: u64,
    /// Real single-thread PLAN graph-time p50 (ns).
    pub real_plan_p50_ns: f64,
    /// Which E11 baseline strategy the wall-clock check compares against.
    pub baseline_strategy: String,
    /// Baseline p50 from `BENCH_telemetry.json` (ns); `None` when the
    /// artifact is missing and the regression check cannot run.
    pub baseline_p50_ns: Option<f64>,
}

impl PlanReport {
    /// PLAN over the bound (1.0 = matches the bound exactly).
    pub fn plan_vs_bound(&self) -> f64 {
        self.plan_ns as f64 / self.bound_ns as f64
    }

    /// PLAN over simulated BUSY (< 1.0 = PLAN wins).
    pub fn plan_vs_busy(&self) -> f64 {
        self.plan_ns as f64 / self.busy_ns as f64
    }

    /// Acceptance: simulated PLAN within `slack` of the list bound
    /// (e.g. 0.05 for the 5 % criterion).
    pub fn within_bound(&self, slack: f64) -> bool {
        self.plan_vs_bound() <= 1.0 + slack
    }

    /// Acceptance: simulated PLAN strictly below simulated BUSY.
    pub fn beats_busy(&self) -> bool {
        self.plan_ns < self.busy_ns
    }

    /// Acceptance: real single-thread p50 within `slack` of the E11
    /// baseline. `None` when no baseline was found.
    pub fn no_real_regression(&self, slack: f64) -> Option<bool> {
        self.baseline_p50_ns
            .map(|base| self.real_plan_p50_ns <= base * (1.0 + slack))
    }

    /// The `BENCH_plan.json` tree.
    pub fn to_json(&self, bound_slack: f64, real_slack: f64) -> Json {
        let real_check = match self.no_real_regression(real_slack) {
            Some(ok) => Json::Bool(ok),
            None => Json::Null,
        };
        Json::object([
            ("bench", Json::from("plan")),
            ("threads", Json::from(self.threads)),
            ("cycles", Json::from(self.cycles)),
            (
                "sim",
                Json::object([
                    ("bound_ns", Json::from(self.bound_ns)),
                    ("plan_ns", Json::from(self.plan_ns)),
                    ("busy_ns", Json::from(self.busy_ns)),
                    ("plan_vs_bound", Json::from(self.plan_vs_bound())),
                    ("plan_vs_busy", Json::from(self.plan_vs_busy())),
                    (
                        "plan_empirical_median_ns",
                        Json::from(self.plan_empirical_median_ns),
                    ),
                    (
                        "busy_empirical_median_ns",
                        Json::from(self.busy_empirical_median_ns),
                    ),
                ]),
            ),
            (
                "real",
                Json::object([
                    ("threads", Json::from(1usize)),
                    ("plan_p50_ns", Json::from(self.real_plan_p50_ns)),
                    (
                        "baseline_strategy",
                        Json::from(self.baseline_strategy.clone()),
                    ),
                    (
                        "baseline_p50_ns",
                        match self.baseline_p50_ns {
                            Some(v) => Json::from(v),
                            None => Json::Null,
                        },
                    ),
                ]),
            ),
            (
                "checks",
                Json::object([
                    (
                        "plan_within_bound_slack",
                        Json::from(self.within_bound(bound_slack)),
                    ),
                    ("plan_below_busy", Json::from(self.beats_busy())),
                    ("no_single_thread_regression", real_check),
                ]),
            ),
        ])
    }

    /// Human-readable summary for the binary's stdout.
    pub fn render(&self, bound_slack: f64, real_slack: f64) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "simulated on {} cores (per-node means):\n",
            self.threads
        ));
        out.push_str(&format!(
            "  list-scheduler bound : {:>9.1} us\n",
            self.bound_ns as f64 / 1e3
        ));
        out.push_str(&format!(
            "  PLAN                 : {:>9.1} us  ({:+.2} % vs bound)\n",
            self.plan_ns as f64 / 1e3,
            (self.plan_vs_bound() - 1.0) * 100.0
        ));
        out.push_str(&format!(
            "  BUSY                 : {:>9.1} us  (PLAN is {:.2}x)\n",
            self.busy_ns as f64 / 1e3,
            self.plan_vs_busy()
        ));
        out.push_str(&format!(
            "empirical medians over {} cycles: PLAN {:.1} us, BUSY {:.1} us\n",
            self.cycles,
            self.plan_empirical_median_ns as f64 / 1e3,
            self.busy_empirical_median_ns as f64 / 1e3
        ));
        out.push_str(&format!(
            "real 1-thread PLAN p50: {:.1} us (baseline {} p50: {})\n",
            self.real_plan_p50_ns / 1e3,
            self.baseline_strategy,
            match self.baseline_p50_ns {
                Some(v) => format!("{:.1} us", v / 1e3),
                None => "missing".to_string(),
            }
        ));
        out.push_str(&format!(
            "checks: within-bound({:.0}%)={} below-busy={} no-regression({:.0}%)={}\n",
            bound_slack * 100.0,
            self.within_bound(bound_slack),
            self.beats_busy(),
            real_slack * 100.0,
            match self.no_real_regression(real_slack) {
                Some(ok) => ok.to_string(),
                None => "skipped".to_string(),
            }
        ));
        out
    }
}

/// Pull `graph_ns.p50` for `strategy` out of a `BENCH_telemetry.json`
/// rendering. A targeted scan, not a parser: finds the run whose
/// `"strategy":"<label>"` matches, anchors on its `"graph_ns"` object, then
/// reads the first `"p50":` number after that — so a reordering of the
/// telemetry JSON cannot silently redirect the baseline to the wait
/// percentiles. Returns `None` when absent or malformed.
pub fn scan_baseline_p50(json_text: &str, strategy: &str) -> Option<f64> {
    let tag = format!("\"strategy\":\"{strategy}\"");
    let at = json_text.find(&tag)?;
    let rest = &json_text[at..];
    let g = rest.find("\"graph_ns\"")?;
    let rest = &rest[g..];
    let p = rest.find("\"p50\":")?;
    let num = &rest[p + 6..];
    let end = num
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(num.len());
    num[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PlanReport {
        PlanReport {
            threads: 4,
            cycles: 100,
            bound_ns: 324_000,
            plan_ns: 330_000,
            busy_ns: 390_000,
            plan_empirical_median_ns: 335_000,
            busy_empirical_median_ns: 395_000,
            real_plan_p50_ns: 1_100_000.0,
            baseline_strategy: "BUSY".to_string(),
            baseline_p50_ns: Some(1_155_354.0),
        }
    }

    #[test]
    fn ratios_and_checks() {
        let r = report();
        assert!((r.plan_vs_bound() - 330.0 / 324.0).abs() < 1e-9);
        assert!(r.within_bound(0.05));
        assert!(!r.within_bound(0.01));
        assert!(r.beats_busy());
        assert_eq!(r.no_real_regression(0.05), Some(true));
        let mut slow = report();
        slow.real_plan_p50_ns = 2_000_000.0;
        assert_eq!(slow.no_real_regression(0.05), Some(false));
        slow.baseline_p50_ns = None;
        assert_eq!(slow.no_real_regression(0.05), None);
    }

    #[test]
    fn json_has_all_sections() {
        let j = report().to_json(0.05, 0.05).render();
        assert!(j.starts_with("{\"bench\":\"plan\""));
        assert!(j.contains("\"sim\":{"));
        assert!(j.contains("\"real\":{"));
        assert!(j.contains("\"plan_below_busy\":true"));
        assert!(j.contains("\"no_single_thread_regression\":true"));
    }

    #[test]
    fn baseline_scan_finds_the_right_strategy() {
        let text = r#"{"runs":[{"strategy":"SEQ","graph_ns":{"p50":1125522.5,"p90":1}},
            {"strategy":"BUSY","graph_ns":{"p50":1155354,"p90":2}}]}"#;
        assert_eq!(scan_baseline_p50(text, "SEQ"), Some(1_125_522.5));
        assert_eq!(scan_baseline_p50(text, "BUSY"), Some(1_155_354.0));
        assert_eq!(scan_baseline_p50(text, "PLAN"), None);
        assert_eq!(scan_baseline_p50("not json", "SEQ"), None);
    }

    #[test]
    fn baseline_scan_handles_exponents_and_field_order() {
        // A '+' exponent must not truncate the number.
        let exp = r#"{"strategy":"BUSY","graph_ns":{"p50":1.155354e+6}}"#;
        assert_eq!(scan_baseline_p50(exp, "BUSY"), Some(1_155_354.0));
        // Wait percentiles serialized before graph_ns must not shadow it.
        let reordered = r#"{"strategy":"BUSY","wait_ns":{"p50":42},"graph_ns":{"p50":1155354}}"#;
        assert_eq!(scan_baseline_p50(reordered, "BUSY"), Some(1_155_354.0));
        // No graph_ns section at all: the check is skipped, not misdirected.
        let missing = r#"{"strategy":"BUSY","wait_ns":{"p50":42}}"#;
        assert_eq!(scan_baseline_p50(missing, "BUSY"), None);
    }
}
