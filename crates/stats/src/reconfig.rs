//! Report plumbing for E13 (`fig_reconfig`): deadline misses and
//! transition latency during a live-topology toggle storm, per strategy.
//!
//! The experiment runs every strategy twice over the same cycle count —
//! once static (no topology changes) and once under a deterministic
//! switch script. Two miss metrics are reported:
//!
//! * the **storm-vs-static difference** — intuitive, but the two runs are
//!   independent, so on a shared host its run-to-run noise is a few
//!   misses either way (scheduler stalls land where they will). The
//!   full-scale default shows zero; the strict gate only bounds it by a
//!   noise allowance well below one-miss-per-few-commits.
//! * **commit-blown deadlines** — the causal, noise-immune criterion: a
//!   cycle that met the budget *before* the commit cost was charged and
//!   missed *after*. A glitching swap shows up here regardless of host
//!   noise; a clean one reads exactly zero.
//!
//! Staging cost (off the audio thread) and commit cost (the
//! cycle-boundary swap) are reported separately because only the latter
//! can ever touch the deadline.

use crate::json::Json;
use crate::summary::Summary;

/// One strategy's storm-vs-static comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyReconfig {
    /// Strategy label ("SEQ", "BUSY", …).
    pub strategy: String,
    /// Deadline misses over the static run.
    pub static_misses: u64,
    /// Deadline misses over the storm run (same cycle count).
    pub storm_misses: u64,
    /// Topology swaps committed during the storm run.
    pub swaps: u64,
    /// Storm-run cycles that met the deadline before the commit cost was
    /// charged and missed after, where the commit cost itself was a
    /// material fraction (> 10 %) of the budget — misses *caused by* the
    /// swap. Tipping an already-stall-inflated borderline cycle with a
    /// healthy ~25 µs commit is attributed to the stall, not the swap.
    pub commit_blown: u64,
    /// Executor generation after the storm run.
    pub final_generation: u64,
    /// Off-thread staging times (ns) for each swap.
    pub stage_ns: Vec<u64>,
    /// Cycle-boundary commit times (ns) for each swap.
    pub commit_ns: Vec<u64>,
}

impl StrategyReconfig {
    /// Misses the storm added over the static baseline (the acceptance
    /// metric; saturates at zero when the storm run happened to miss
    /// *less*, which on noisy hosts it can).
    pub fn additional_misses(&self) -> u64 {
        self.storm_misses.saturating_sub(self.static_misses)
    }

    /// Host-noise allowance for this strategy's storm-vs-static
    /// difference. A swap protocol that actually glitched would add on
    /// the order of one miss *per commit*, so one miss per two commits
    /// keeps 2x separation; and because the two runs are independent,
    /// their difference also scales with however many stall-induced
    /// misses the host injected into either run, so a quarter of the
    /// combined miss count is allowed too (under load that heavy the
    /// difference is uninformative anyway — the causal commit-blown and
    /// commit-budget checks carry the precision claim).
    pub fn noise_allowance(&self, switches: usize) -> u64 {
        ((switches / 2) as u64)
            .max((self.static_misses + self.storm_misses) / 4)
            .max(2)
    }

    fn percentile(samples: &[u64], q: f64) -> f64 {
        let as_f64: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        Summary::percentile(&as_f64, q).unwrap_or(0.0)
    }

    /// p50 of staging time (ns).
    pub fn stage_p50_ns(&self) -> f64 {
        Self::percentile(&self.stage_ns, 50.0)
    }

    /// p99 of staging time (ns).
    pub fn stage_p99_ns(&self) -> f64 {
        Self::percentile(&self.stage_ns, 99.0)
    }

    /// p50 of commit time (ns).
    pub fn commit_p50_ns(&self) -> f64 {
        Self::percentile(&self.commit_ns, 50.0)
    }

    /// p99 of commit time (ns).
    pub fn commit_p99_ns(&self) -> f64 {
        Self::percentile(&self.commit_ns, 99.0)
    }

    fn to_json(&self, switches: usize) -> Json {
        Json::object([
            ("strategy", Json::from(self.strategy.clone())),
            ("static_misses", Json::from(self.static_misses)),
            ("storm_misses", Json::from(self.storm_misses)),
            ("additional_misses", Json::from(self.additional_misses())),
            (
                "noise_allowance",
                Json::from(self.noise_allowance(switches)),
            ),
            ("commit_blown_deadlines", Json::from(self.commit_blown)),
            ("swaps", Json::from(self.swaps)),
            ("final_generation", Json::from(self.final_generation)),
            (
                "stage_ns",
                Json::object([
                    ("p50", Json::from(self.stage_p50_ns())),
                    ("p99", Json::from(self.stage_p99_ns())),
                ]),
            ),
            (
                "commit_ns",
                Json::object([
                    ("p50", Json::from(self.commit_p50_ns())),
                    ("p99", Json::from(self.commit_p99_ns())),
                ]),
            ),
        ])
    }
}

/// Aggregated E13 results across strategies.
#[derive(Debug, Clone, PartialEq)]
pub struct ReconfigReport {
    /// Worker threads of the parallel strategies.
    pub threads: usize,
    /// Measured cycles per run.
    pub cycles: usize,
    /// Switches in the toggle storm.
    pub switches: usize,
    /// Sound-card deadline (ns) the misses are counted against.
    pub deadline_ns: u64,
    /// Per-strategy results.
    pub strategies: Vec<StrategyReconfig>,
}

impl ReconfigReport {
    /// Exact zero-difference check: no strategy misses more under the
    /// storm than static. True at full scale on a quiet host; on shared
    /// hosts (and at reduced CI scale) the two independent runs differ by
    /// a few stall-induced misses either way, so the strict gate uses
    /// [`Self::storm_within_noise`] and [`Self::no_commit_blown`] instead.
    pub fn storm_adds_no_misses(&self) -> bool {
        self.strategies.iter().all(|s| s.additional_misses() == 0)
    }

    /// Acceptance: every strategy's storm-vs-static miss difference stays
    /// within its own [`StrategyReconfig::noise_allowance`].
    pub fn storm_within_noise(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.additional_misses() <= s.noise_allowance(self.switches))
    }

    /// Acceptance: no cycle missed its deadline *because of* a commit
    /// (hit the budget before the swap cost, missed after, swap cost
    /// material). Causal and immune to host noise.
    pub fn no_commit_blown(&self) -> bool {
        self.strategies.iter().all(|s| s.commit_blown == 0)
    }

    /// Acceptance: the bounded-commit claim measured directly — every
    /// strategy's *median* commit stays at or below 10 % of the deadline
    /// budget (measured ~25 µs vs a 290 µs allowance on the 2.9 ms
    /// budget). The median is the gate because a host stall landing
    /// inside one of ~100 commit windows swings the p99 arbitrarily; a
    /// genuinely unbounded commit (e.g. graph building leaking onto the
    /// audio thread) has a millisecond-scale median and is still caught.
    /// p99 is reported alongside for context.
    pub fn commit_budget_ok(&self) -> bool {
        let budget = self.deadline_ns as f64 / 10.0;
        self.strategies.iter().all(|s| s.commit_p50_ns() <= budget)
    }

    /// Acceptance: every strategy committed every scheduled switch.
    pub fn all_swaps_committed(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.swaps == self.switches as u64)
    }

    /// The `BENCH_reconfig.json` tree.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("bench", Json::from("reconfig")),
            ("threads", Json::from(self.threads)),
            ("cycles", Json::from(self.cycles)),
            ("switches", Json::from(self.switches)),
            ("deadline_ns", Json::from(self.deadline_ns)),
            (
                "strategies",
                Json::Array(
                    self.strategies
                        .iter()
                        .map(|s| s.to_json(self.switches))
                        .collect(),
                ),
            ),
            (
                "checks",
                Json::object([
                    (
                        "storm_adds_no_misses",
                        Json::from(self.storm_adds_no_misses()),
                    ),
                    ("storm_within_noise", Json::from(self.storm_within_noise())),
                    ("no_commit_blown", Json::from(self.no_commit_blown())),
                    ("commit_budget_ok", Json::from(self.commit_budget_ok())),
                    (
                        "all_swaps_committed",
                        Json::from(self.all_swaps_committed()),
                    ),
                ]),
            ),
        ])
    }

    /// Human-readable summary table for the binary's stdout.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{} switches over {} cycles, {} threads, deadline {:.1} ms\n",
            self.switches,
            self.cycles,
            self.threads,
            self.deadline_ns as f64 / 1e6
        ));
        out.push_str(
            "strategy  static  storm  added  blown  swaps  stage p50/p99 (us)  commit p50/p99 (us)\n",
        );
        for s in &self.strategies {
            out.push_str(&format!(
                "{:<8} {:>7} {:>6} {:>6} {:>6} {:>6}  {:>8.1} /{:>8.1}  {:>9.1} /{:>8.1}\n",
                s.strategy,
                s.static_misses,
                s.storm_misses,
                s.additional_misses(),
                s.commit_blown,
                s.swaps,
                s.stage_p50_ns() / 1e3,
                s.stage_p99_ns() / 1e3,
                s.commit_p50_ns() / 1e3,
                s.commit_p99_ns() / 1e3,
            ));
        }
        out.push_str(&format!(
            "checks: storm-adds-no-misses={} storm-within-noise={} no-commit-blown={} commit-budget-ok={} all-swaps-committed={}\n",
            self.storm_adds_no_misses(),
            self.storm_within_noise(),
            self.no_commit_blown(),
            self.commit_budget_ok(),
            self.all_swaps_committed()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strat(label: &str, st: u64, storm: u64, swaps: u64) -> StrategyReconfig {
        StrategyReconfig {
            strategy: label.to_string(),
            static_misses: st,
            storm_misses: storm,
            swaps,
            commit_blown: 0,
            final_generation: swaps,
            stage_ns: vec![100_000, 200_000, 300_000],
            commit_ns: vec![5_000, 6_000, 7_000],
        }
    }

    fn report() -> ReconfigReport {
        ReconfigReport {
            threads: 3,
            cycles: 4_000,
            switches: 3,
            deadline_ns: 2_900_000,
            strategies: vec![strat("SEQ", 2, 2, 3), strat("WS", 0, 0, 3)],
        }
    }

    #[test]
    fn additional_misses_saturate() {
        assert_eq!(strat("SEQ", 5, 7, 1).additional_misses(), 2);
        // A storm run can luck into fewer misses; that is not negative.
        assert_eq!(strat("SEQ", 7, 5, 1).additional_misses(), 0);
    }

    #[test]
    fn checks_pass_and_fail() {
        let good = report();
        assert!(good.storm_adds_no_misses());
        assert!(good.storm_within_noise());
        assert!(good.no_commit_blown());
        assert!(good.all_swaps_committed());
        let mut bad = report();
        bad.strategies[0].storm_misses = 9;
        assert!(!bad.storm_adds_no_misses());
        bad.strategies[1].swaps = 2;
        assert!(!bad.all_swaps_committed());
        bad.strategies[0].commit_blown = 1;
        assert!(!bad.no_commit_blown());
    }

    #[test]
    fn commit_budget_compares_the_median_to_a_tenth_of_the_deadline() {
        let good = report();
        assert!(good.commit_budget_ok()); // 6 us median vs 290 us allowance
                                          // One stall-inflated outlier does not fail the gate ...
        let mut stalled = report();
        stalled.strategies[0].commit_ns = vec![5_000, 6_000, 700_000];
        assert!(stalled.commit_budget_ok());
        // ... a shifted median does.
        let mut bad = report();
        bad.strategies[0].commit_ns = vec![400_000; 3]; // 400 us > 290 us
        assert!(!bad.commit_budget_ok());
    }

    #[test]
    fn noise_allowance_separates_noise_from_glitches() {
        // 3 switches, few misses -> floor of 2 applies.
        assert_eq!(report().strategies[0].noise_allowance(3), 2);
        let mut r = report();
        r.switches = 100;
        // Quiet host: the per-two-commits term dominates.
        assert_eq!(r.strategies[0].noise_allowance(100), 50);
        // A stall-sized wobble passes; a per-commit glitch does not.
        r.strategies[0].static_misses = 10;
        r.strategies[0].storm_misses = 18;
        assert!(r.storm_within_noise());
        r.strategies[0].storm_misses = 10 + 100;
        assert!(!r.storm_within_noise());
        // A pathologically loaded host widens the allowance: the diff is
        // uninformative there, and the causal checks carry the claim.
        r.strategies[0].static_misses = 300;
        r.strategies[0].storm_misses = 370;
        assert_eq!(r.strategies[0].noise_allowance(100), (300 + 370) / 4);
        assert!(r.storm_within_noise());
    }

    #[test]
    fn percentiles_cover_the_sample_range() {
        let s = strat("SEQ", 0, 0, 3);
        assert!(s.stage_p50_ns() >= 100_000.0 && s.stage_p50_ns() <= 300_000.0);
        assert!(s.stage_p99_ns() >= s.stage_p50_ns());
        assert!(s.commit_p99_ns() >= s.commit_p50_ns());
        let empty = StrategyReconfig {
            stage_ns: vec![],
            commit_ns: vec![],
            ..s
        };
        assert_eq!(empty.stage_p50_ns(), 0.0);
    }

    #[test]
    fn json_has_all_sections() {
        let j = report().to_json().render();
        assert!(j.starts_with("{\"bench\":\"reconfig\""));
        assert!(j.contains("\"strategies\":["));
        assert!(j.contains("\"additional_misses\":0"));
        assert!(j.contains("\"commit_blown_deadlines\":0"));
        assert!(j.contains("\"storm_adds_no_misses\":true"));
        assert!(j.contains("\"no_commit_blown\":true"));
        assert!(j.contains("\"commit_budget_ok\":true"));
        assert!(j.contains("\"all_swaps_committed\":true"));
        let text = report().render();
        assert!(text.contains("SEQ"));
        assert!(text.contains("storm-adds-no-misses=true"));
    }
}
