//! Plain-text rendering of tables, histograms and charts.
//!
//! The harness binaries regenerate every figure of the paper on a terminal,
//! so each plot type has an ASCII renderer: horizontal bar histograms
//! (Fig. 9), cumulative staircases (Fig. 10), and markdown tables (Table I).

use crate::histogram::{CumulativeView, Histogram};
use crate::speedup::SpeedupTable;

/// Render a [`Histogram`] as rows of `#` bars, one row per bin.
///
/// `width` is the maximum bar width in characters; the fullest bin spans it.
pub fn histogram_bars(h: &Histogram, width: usize, unit: &str) -> String {
    let max = h.bins().iter().copied().max().unwrap_or(0).max(1);
    let mut out = String::new();
    for i in 0..h.bin_count() {
        let (a, b) = h.bin_range(i);
        let count = h.bin(i);
        let bar = "#".repeat((count as usize * width).div_ceil(max as usize).min(width));
        out.push_str(&format!(
            "{a:7.3}-{b:7.3} {unit} |{bar:<width$}| {count}\n",
            width = width
        ));
    }
    if h.underflow() > 0 || h.overflow() > 0 {
        out.push_str(&format!(
            "(clamped: {} below range, {} above range)\n",
            h.underflow(),
            h.overflow()
        ));
    }
    out
}

/// Render a [`CumulativeView`] as a staircase of `#` bars (Fig. 10 style).
pub fn cumulative_bars(c: &CumulativeView, width: usize, lo: f64, hi: f64, unit: &str) -> String {
    let counts = c.counts();
    let max = counts.last().copied().unwrap_or(0).max(1);
    let n = counts.len();
    let w = (hi - lo) / n as f64;
    let mut out = String::new();
    for (i, &count) in counts.iter().enumerate() {
        let edge = lo + w * (i + 1) as f64;
        let bar = "#".repeat((count as usize * width).div_ceil(max as usize).min(width));
        out.push_str(&format!(
            "<= {edge:7.3} {unit} |{bar:<width$}| {count}\n",
            width = width
        ));
    }
    out
}

/// Render a [`SpeedupTable`] as a markdown table of times, in the layout of
/// the paper's Table I (strategies as rows, thread counts as columns).
pub fn table_times(t: &SpeedupTable, unit: &str) -> String {
    let mut out = String::new();
    out.push_str("| Threads |");
    for th in &t.threads {
        out.push_str(&format!(" {th} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &t.threads {
        out.push_str("---|");
    }
    out.push('\n');
    for (name, times) in &t.rows {
        out.push_str(&format!("| {name} |"));
        for v in times {
            out.push_str(&format!(" {v:.4} |"));
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "(times in {unit}; sequential baseline {:.4} {unit})\n",
        t.baseline
    ));
    out
}

/// Render the speedups of a [`SpeedupTable`] as a markdown table (Fig. 8).
pub fn table_speedups(t: &SpeedupTable) -> String {
    let mut out = String::new();
    out.push_str("| Threads |");
    for th in &t.threads {
        out.push_str(&format!(" {th} |"));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in &t.threads {
        out.push_str("---|");
    }
    out.push('\n');
    for (r, (name, _)) in t.rows.iter().enumerate() {
        out.push_str(&format!("| {name} |"));
        for s in t.speedups(r) {
            out.push_str(&format!(" {s:.2} |"));
        }
        out.push('\n');
    }
    out
}

/// Render an (x, y) series as a compact ASCII line chart with `rows` lines.
///
/// Used for the concurrency-over-time profile of Fig. 4.
pub fn line_chart(points: &[(f64, f64)], rows: usize, cols: usize) -> String {
    if points.is_empty() || rows == 0 || cols == 0 {
        return String::new();
    }
    let xmin = points.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
    let xmax = points.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
    let ymax = points.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
    let ymin = 0.0f64;
    let xspan = (xmax - xmin).max(f64::MIN_POSITIVE);
    let yspan = (ymax - ymin).max(f64::MIN_POSITIVE);

    let mut grid = vec![vec![' '; cols]; rows];
    for &(x, y) in points {
        let cx = (((x - xmin) / xspan) * (cols - 1) as f64).round() as usize;
        let cy = (((y - ymin) / yspan) * (rows - 1) as f64).round() as usize;
        grid[rows - 1 - cy][cx.min(cols - 1)] = '*';
    }
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{ymax:8.1} |")
        } else if i == rows - 1 {
            format!("{ymin:8.1} |")
        } else {
            "         |".to_string()
        };
        out.push_str(&label);
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&format!(
        "          +{}\n           {xmin:<10.1}{:>width$.1}\n",
        "-".repeat(cols),
        xmax,
        width = cols.saturating_sub(10)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_render_contains_counts() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.record(0.1);
        h.record(0.9);
        h.record(0.95);
        let s = histogram_bars(&h, 10, "ms");
        assert!(s.contains("| 1"), "{s}");
        assert!(s.contains("| 2"), "{s}");
    }

    #[test]
    fn cumulative_render_monotone_bars() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        for i in 0..8 {
            h.record(i as f64 / 8.0);
        }
        let c = h.cumulative();
        let s = cumulative_bars(&c, 20, 0.0, 1.0, "ms");
        assert_eq!(s.lines().count(), 4);
        assert!(s.lines().last().unwrap().contains("| 8"));
    }

    #[test]
    fn table_render_has_all_rows() {
        let mut t = SpeedupTable::new(vec![1, 2], 1.0);
        t.push_row("BUSY", vec![1.0, 0.5]);
        t.push_row("SLEEP", vec![1.1, 0.6]);
        let times = table_times(&t, "ms");
        assert!(times.contains("BUSY") && times.contains("SLEEP"));
        let sp = table_speedups(&t);
        assert!(sp.contains("2.00"), "{sp}");
    }

    #[test]
    fn line_chart_renders_peak() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, (50 - i) as f64)).collect();
        let s = line_chart(&pts, 8, 40);
        assert!(s.contains('*'));
        assert!(!s.is_empty());
    }

    #[test]
    fn line_chart_empty_is_empty() {
        assert!(line_chart(&[], 5, 5).is_empty());
    }
}
