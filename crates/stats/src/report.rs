//! CSV export of measurement series — the machine-readable companion to
//! the text renderers, so plots can be regenerated outside the terminal.

use std::fmt::Write as _;

/// A simple CSV builder for numeric series with a shared index column.
///
/// Columns are added as `(name, values)`; shorter columns pad with empty
/// cells. The index column counts rows from 0 (cycle number in the
/// experiment harnesses).
#[derive(Debug, Default, Clone)]
pub struct CsvReport {
    columns: Vec<(String, Vec<f64>)>,
}

impl CsvReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a column. Returns `self` for chaining.
    pub fn column(mut self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.columns.push((name.into(), values));
        self
    }

    /// Number of data rows (longest column).
    pub fn rows(&self) -> usize {
        self.columns.iter().map(|(_, v)| v.len()).max().unwrap_or(0)
    }

    /// Render the CSV (header + rows; index column first).
    pub fn render(&self) -> String {
        let mut out = String::from("index");
        for (name, _) in &self.columns {
            // Quote names containing separators.
            if name.contains(',') || name.contains('"') {
                let escaped = name.replace('"', "\"\"");
                let _ = write!(out, ",\"{escaped}\"");
            } else {
                let _ = write!(out, ",{name}");
            }
        }
        out.push('\n');
        for row in 0..self.rows() {
            let _ = write!(out, "{row}");
            for (_, values) in &self.columns {
                match values.get(row) {
                    Some(v) => {
                        let _ = write!(out, ",{v}");
                    }
                    None => out.push(','),
                }
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_and_rows() {
        let csv = CsvReport::new()
            .column("busy_ms", vec![1.0, 2.0])
            .column("sleep_ms", vec![1.5, 2.5])
            .render();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "index,busy_ms,sleep_ms");
        assert_eq!(lines[1], "0,1,1.5");
        assert_eq!(lines[2], "1,2,2.5");
    }

    #[test]
    fn ragged_columns_pad() {
        let csv = CsvReport::new()
            .column("a", vec![1.0])
            .column("b", vec![2.0, 3.0])
            .render();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[2], "1,,3");
    }

    #[test]
    fn empty_report_is_header_only() {
        let csv = CsvReport::new().render();
        assert_eq!(csv, "index\n");
    }

    #[test]
    fn quotes_awkward_names() {
        let csv = CsvReport::new().column("with,comma", vec![1.0]).render();
        assert!(csv.starts_with("index,\"with,comma\"\n"));
    }
}
