//! Strategy × thread-count response-time and speedup matrices
//! (Table I and Fig. 8 of the paper).

/// Average response times for several strategies over a range of thread
/// counts, plus the sequential baseline they are compared against.
///
/// The paper's Table I lists the mean task-graph response time in ms for
/// BUSY/SLEEP/WS at 1–4 threads; Fig. 8 plots the speedup of the same data
/// relative to the sequential implementation.
#[derive(Debug, Clone)]
pub struct SpeedupTable {
    /// Thread counts of the columns, e.g. `[1, 2, 3, 4]`.
    pub threads: Vec<usize>,
    /// Sequential baseline time (same unit as `times`).
    pub baseline: f64,
    /// One row per strategy: `(name, times-per-thread-count)`.
    pub rows: Vec<(String, Vec<f64>)>,
}

impl SpeedupTable {
    /// Create an empty table with the given thread-count columns and
    /// sequential baseline.
    ///
    /// # Panics
    /// Panics if `threads` is empty or `baseline` is not positive.
    pub fn new(threads: Vec<usize>, baseline: f64) -> Self {
        assert!(!threads.is_empty(), "need at least one thread-count column");
        assert!(baseline > 0.0, "baseline time must be positive");
        SpeedupTable {
            threads,
            baseline,
            rows: Vec::new(),
        }
    }

    /// Add a strategy row.
    ///
    /// # Panics
    /// Panics if `times.len()` disagrees with the number of columns.
    pub fn push_row(&mut self, name: impl Into<String>, times: Vec<f64>) {
        assert_eq!(
            times.len(),
            self.threads.len(),
            "row length must match thread columns"
        );
        self.rows.push((name.into(), times));
    }

    /// Speedup of row `r` at column `c`: `baseline / time`.
    pub fn speedup(&self, r: usize, c: usize) -> f64 {
        self.baseline / self.rows[r].1[c]
    }

    /// Speedups of one row across all columns.
    pub fn speedups(&self, r: usize) -> Vec<f64> {
        (0..self.threads.len())
            .map(|c| self.speedup(r, c))
            .collect()
    }

    /// Best (smallest) time in a column together with the winning row index.
    pub fn best_in_column(&self, c: usize) -> Option<(usize, f64)> {
        self.rows
            .iter()
            .enumerate()
            .map(|(i, (_, t))| (i, t[c]))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Parallel efficiency of row `r` at column `c`: speedup / threads.
    pub fn efficiency(&self, r: usize, c: usize) -> f64 {
        self.speedup(r, c) / self.threads[c] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The actual Table I from the paper, in ms.
    fn paper_table() -> SpeedupTable {
        let mut t = SpeedupTable::new(vec![1, 2, 3, 4], 1.0839);
        t.push_row("BUSY", vec![1.0785, 0.6371, 0.5683, 0.4516]);
        t.push_row("SLEEP", vec![1.1130, 0.6447, 0.6444, 0.4657]);
        t.push_row("WS", vec![1.1111, 0.6394, 0.5844, 0.4690]);
        t
    }

    #[test]
    fn speedup_matches_paper_shape() {
        let t = paper_table();
        // BUSY at 4 threads: the paper reports a speedup of ~2.40.
        let s = t.speedup(0, 3);
        assert!(s > 2.3 && s < 2.5, "BUSY speedup = {s}");
        // Speedup grows with thread count for every strategy.
        for r in 0..t.rows.len() {
            let sp = t.speedups(r);
            assert!(sp[0] < sp[1] && sp[1] < sp[3]);
        }
    }

    #[test]
    fn busy_wins_at_four_threads() {
        let t = paper_table();
        let (winner, _) = t.best_in_column(3).unwrap();
        assert_eq!(t.rows[winner].0, "BUSY");
    }

    #[test]
    fn efficiency_is_speedup_over_threads() {
        let t = paper_table();
        let e = t.efficiency(0, 3);
        assert!((e - t.speedup(0, 3) / 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row length")]
    fn mismatched_row_panics() {
        let mut t = SpeedupTable::new(vec![1, 2], 1.0);
        t.push_row("X", vec![1.0]);
    }
}
