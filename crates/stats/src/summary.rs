//! Moment statistics and percentiles over a sample of measurements.

/// Summary statistics of a set of `f64` samples.
///
/// The paper reports means (Table I), worst cases and distribution shape
/// (§VI); this type computes all of them in one pass over a sample vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (Bessel-corrected); 0.0 for fewer than two samples.
    pub stddev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Largest sample (the paper's "worst case execution time").
    pub max: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Compute summary statistics of `samples`.
    ///
    /// Returns `None` for an empty sample set: every statistic would be
    /// undefined and the paper's harness treats "no data" as an error.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (count as f64 - 1.0)
        } else {
            0.0
        };
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(Summary {
            count,
            mean,
            stddev: var.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            median: percentile_sorted(&sorted, 50.0),
            p95: percentile_sorted(&sorted, 95.0),
            p99: percentile_sorted(&sorted, 99.0),
        })
    }

    /// Arbitrary percentile (0..=100) of the same sample set; `samples` need
    /// not be sorted.
    pub fn percentile(samples: &[f64], p: f64) -> Option<f64> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        Some(percentile_sorted(&sorted, p))
    }
}

/// Nearest-rank percentile with linear interpolation on a pre-sorted slice.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let p = p.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_set_has_no_summary() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[3.5]).unwrap();
        assert_eq!(s.count, 1);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
        assert_eq!(s.median, 3.5);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // Sample stddev of 1..5 is sqrt(2.5).
        assert!((s.stddev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate() {
        let samples = [0.0, 10.0];
        assert_eq!(Summary::percentile(&samples, 50.0), Some(5.0));
        assert_eq!(Summary::percentile(&samples, 0.0), Some(0.0));
        assert_eq!(Summary::percentile(&samples, 100.0), Some(10.0));
        assert_eq!(Summary::percentile(&samples, 25.0), Some(2.5));
    }

    #[test]
    fn order_does_not_matter() {
        let a = Summary::of(&[5.0, 1.0, 4.0, 2.0, 3.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn p99_close_to_max_for_uniform() {
        let samples: Vec<f64> = (0..1000).map(|i| i as f64).collect();
        let s = Summary::of(&samples).unwrap();
        assert!(s.p99 >= 985.0 && s.p99 <= 999.0, "p99 = {}", s.p99);
    }
}
