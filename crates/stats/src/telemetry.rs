//! Aggregation and export of executor telemetry.
//!
//! The core layer hands out raw per-cycle records
//! ([`CycleRecord`](djstar_core::telemetry::CycleRecord)); this module
//! turns a run's worth of them into the artifacts the evaluation wants:
//! graph-time and wait-time percentiles (p50/p90/p99/p99.9), counter
//! totals, a deadline-miss ledger naming the offending cycles, a JSONL
//! line per cycle, and a human-readable report.

use crate::histogram::Histogram;
use crate::json::Json;
use crate::online::OnlineStats;
use crate::render;
use crate::summary::Summary;
use djstar_core::telemetry::{CounterSnapshot, CycleRecord};

/// The percentile set the telemetry report uses for latency distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    pub p50: f64,
    pub p90: f64,
    pub p99: f64,
    pub p999: f64,
}

impl Percentiles {
    /// Percentiles of `samples` (need not be sorted); `None` when empty.
    pub fn of(samples: &[f64]) -> Option<Self> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let at = |p: f64| {
            // Delegate to the shared interpolation via Summary on the
            // already-sorted slice (Summary::percentile re-sorts; cheap
            // relative to report generation and keeps one implementation).
            Summary::percentile(&sorted, p).unwrap()
        };
        Some(Percentiles {
            p50: at(50.0),
            p90: at(90.0),
            p99: at(99.0),
            p999: at(99.9),
        })
    }

    fn to_json(self) -> Json {
        Json::object([
            ("p50", Json::Float(self.p50)),
            ("p90", Json::Float(self.p90)),
            ("p99", Json::Float(self.p99)),
            ("p99_9", Json::Float(self.p999)),
        ])
    }
}

/// One deadline miss: which cycle, and how long it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MissEntry {
    pub cycle: u64,
    pub graph_ns: u64,
}

/// Aggregated telemetry of one (strategy, thread-count) run.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Strategy label (`SEQ`, `BUSY`, `SLEEP`, `WS`, `HYBRID`).
    pub strategy: String,
    /// Worker count of the run.
    pub threads: usize,
    /// Cycles aggregated.
    pub cycles: usize,
    /// Deadline the miss ledger is accounted against (ns).
    pub deadline_ns: u64,
    /// Mean wall-clock graph time (ns).
    pub graph_mean_ns: f64,
    /// Worst wall-clock graph time (ns).
    pub graph_max_ns: f64,
    /// Graph-time percentiles (ns).
    pub graph_pct: Percentiles,
    /// Mean per-cycle total wait time across workers (busy + parked, ns).
    pub wait_mean_ns: f64,
    /// Per-cycle total wait-time percentiles (ns).
    pub wait_pct: Percentiles,
    /// Counter totals over all cycles (deque high water is the maximum).
    pub totals: CounterSnapshot,
    /// Deadline misses, oldest first (capped at [`Self::MAX_MISSES`]).
    pub misses: Vec<MissEntry>,
    /// Total number of misses, including any beyond the ledger cap.
    pub miss_count: u64,
    /// Engine-level overload drops (events shed by the APC layer), not
    /// derivable from the ring; attached by the capture path via
    /// [`with_dropped_events`](Self::with_dropped_events).
    pub dropped_events: u64,
    /// Stagings whose PLAN blueprint failed to compile — typed refusals,
    /// never silent planless commits; attached via
    /// [`with_stage_failures`](Self::with_stage_failures).
    pub stage_failures: u64,
    /// Venue session id the aggregated ring was recording for (0 = solo
    /// engine); attached via [`with_session`](Self::with_session).
    pub session: u32,
}

impl TelemetryReport {
    /// Maximum entries retained in the miss ledger.
    pub const MAX_MISSES: usize = 256;

    /// Aggregate `records` (oldest first, e.g. `TelemetryRing::iter`).
    /// Returns `None` when there are no records.
    pub fn from_records<'a>(
        strategy: &str,
        threads: usize,
        deadline_ns: u64,
        records: impl IntoIterator<Item = &'a CycleRecord>,
    ) -> Option<Self> {
        let mut graph = OnlineStats::new();
        let mut graph_samples = Vec::new();
        let mut wait = OnlineStats::new();
        let mut wait_samples = Vec::new();
        let mut totals = CounterSnapshot::default();
        let mut misses = Vec::new();
        let mut miss_count = 0u64;
        for r in records {
            let t = r.totals();
            graph.push(r.graph_ns as f64);
            graph_samples.push(r.graph_ns as f64);
            wait.push(t.wait_ns() as f64);
            wait_samples.push(t.wait_ns() as f64);
            totals.merge(&t);
            if r.graph_ns > deadline_ns {
                miss_count += 1;
                if misses.len() < Self::MAX_MISSES {
                    misses.push(MissEntry {
                        cycle: r.cycle,
                        graph_ns: r.graph_ns,
                    });
                }
            }
        }
        let graph_pct = Percentiles::of(&graph_samples)?;
        let wait_pct = Percentiles::of(&wait_samples)?;
        Some(TelemetryReport {
            strategy: strategy.to_string(),
            threads,
            cycles: graph_samples.len(),
            deadline_ns,
            graph_mean_ns: graph.mean(),
            graph_max_ns: graph.max().unwrap_or(0.0),
            graph_pct,
            wait_mean_ns: wait.mean(),
            wait_pct,
            totals,
            misses,
            miss_count,
            dropped_events: 0,
            stage_failures: 0,
            session: 0,
        })
    }

    /// Attach the engine's overload-drop counter to the report.
    pub fn with_dropped_events(mut self, dropped: u64) -> Self {
        self.dropped_events = dropped;
        self
    }

    /// Attach the engine's blueprint-staging-failure counter to the
    /// report.
    pub fn with_stage_failures(mut self, failures: u64) -> Self {
        self.stage_failures = failures;
        self
    }

    /// Attach the venue session id the ring was recording for.
    pub fn with_session(mut self, session: u32) -> Self {
        self.session = session;
        self
    }

    /// The report as a JSON object (one entry of `BENCH_telemetry.json`).
    pub fn to_json(&self) -> Json {
        Json::object([
            ("strategy", Json::from(self.strategy.clone())),
            ("session", Json::from(u64::from(self.session))),
            ("threads", Json::from(self.threads)),
            ("cycles", Json::from(self.cycles)),
            ("deadline_ns", Json::from(self.deadline_ns)),
            ("graph_mean_ns", Json::Float(self.graph_mean_ns)),
            ("graph_max_ns", Json::Float(self.graph_max_ns)),
            ("graph_ns", self.graph_pct.to_json()),
            ("wait_mean_ns", Json::Float(self.wait_mean_ns)),
            ("wait_ns", self.wait_pct.to_json()),
            ("counters", counters_json(&self.totals)),
            ("dropped_events", Json::from(self.dropped_events)),
            ("stage_failures", Json::from(self.stage_failures)),
            ("deadline_misses", Json::from(self.miss_count)),
            (
                "miss_ledger",
                Json::array(self.misses.iter().map(|m| {
                    Json::object([
                        ("cycle", Json::from(m.cycle)),
                        ("graph_ns", Json::from(m.graph_ns)),
                    ])
                })),
            ),
        ])
    }

    /// Human-readable report: headline numbers plus a graph-time histogram.
    pub fn render(&self) -> String {
        let ms = 1e-6;
        let mut out = String::new();
        out.push_str(&format!(
            "{} @ {} thread(s), {} cycles\n",
            self.strategy, self.threads, self.cycles
        ));
        out.push_str(&format!(
            "  graph time  mean {:.4} ms  p50 {:.4}  p90 {:.4}  p99 {:.4}  p99.9 {:.4}  max {:.4}\n",
            self.graph_mean_ns * ms,
            self.graph_pct.p50 * ms,
            self.graph_pct.p90 * ms,
            self.graph_pct.p99 * ms,
            self.graph_pct.p999 * ms,
            self.graph_max_ns * ms,
        ));
        out.push_str(&format!(
            "  wait time   mean {:.4} ms  p50 {:.4}  p90 {:.4}  p99 {:.4}  p99.9 {:.4}\n",
            self.wait_mean_ns * ms,
            self.wait_pct.p50 * ms,
            self.wait_pct.p90 * ms,
            self.wait_pct.p99 * ms,
            self.wait_pct.p999 * ms,
        ));
        let t = &self.totals;
        out.push_str(&format!(
            "  counters    exec {} nodes / {:.1} ms | spin {} iters / {:.2} ms | park {} (unpark {}) / {:.2} ms\n",
            t.nodes_executed,
            t.exec_ns as f64 * ms,
            t.spin_iters,
            t.busy_wait_ns as f64 * ms,
            t.park_count,
            t.unpark_count,
            t.park_wait_ns as f64 * ms,
        ));
        if t.net_packet_events() > 0 || t.net_frames_concealed > 0 {
            out.push_str(&format!(
                "  network     {} lost, {} late, {} dup | {} concealed, {} depth changes | wait {:.2} ms, conceal {:.2} ms\n",
                t.net_packets_lost,
                t.net_packets_late,
                t.net_packets_dup,
                t.net_frames_concealed,
                t.net_depth_changes,
                t.net_wait_ns as f64 * ms,
                t.net_conceal_ns as f64 * ms,
            ));
        }
        if t.steal_attempts > 0 {
            out.push_str(&format!(
                "  stealing    {} sweeps: {} hits, {} misses ({:.1}% hit rate), deque high water {}\n",
                t.steal_attempts,
                t.steal_hits,
                t.steal_misses,
                100.0 * t.steal_hits as f64 / t.steal_attempts as f64,
                t.deque_high_water,
            ));
        }
        out.push_str(&format!(
            "  deadline    {:.4} ms budget: {} misses in {} cycles\n",
            self.deadline_ns as f64 * ms,
            self.miss_count,
            self.cycles,
        ));
        for m in self.misses.iter().take(8) {
            out.push_str(&format!(
                "              cycle {} ran {:.4} ms\n",
                m.cycle,
                m.graph_ns as f64 * ms
            ));
        }
        if self.miss_count as usize > self.misses.len().min(8) {
            out.push_str("              ...\n");
        }
        out
    }

    /// Fig. 9-style histogram of per-cycle graph times (`samples_ns`,
    /// typically re-collected from the same ring the report was built on).
    pub fn render_histogram(&self, samples_ns: &[f64], bins: usize, width: usize) -> String {
        if samples_ns.is_empty() {
            return String::new();
        }
        let ms = 1e-6;
        let hi = (self.graph_max_ns * ms * 1.05).max(1e-3);
        let mut h = Histogram::new(0.0, hi, bins.max(1));
        for &s in samples_ns {
            h.record(s * ms);
        }
        render::histogram_bars(&h, width, "ms")
    }
}

/// One cycle record as a JSONL line object: cycle stamp, graph time, and
/// the full per-worker counter snapshots. Equivalent to
/// [`cycle_json_for_session`] with the solo session id 0.
pub fn cycle_json(record: &CycleRecord) -> Json {
    cycle_json_for_session(record, 0)
}

/// [`cycle_json`] tagged with the venue session id the record's ring was
/// recording for (`TelemetryRing::session`; 0 = solo engine), so venue
/// JSONL exports attribute every cycle line to its session.
pub fn cycle_json_for_session(record: &CycleRecord, session: u32) -> Json {
    Json::object([
        ("cycle", Json::from(record.cycle)),
        ("session", Json::from(u64::from(session))),
        ("graph_ns", Json::from(record.graph_ns)),
        (
            "workers",
            Json::array(record.workers.iter().map(counters_json)),
        ),
    ])
}

/// A counter snapshot as a JSON object (field order fixed).
pub fn counters_json(c: &CounterSnapshot) -> Json {
    Json::object([
        ("spin_iters", Json::from(c.spin_iters)),
        ("busy_wait_ns", Json::from(c.busy_wait_ns)),
        ("park_count", Json::from(c.park_count)),
        ("unpark_count", Json::from(c.unpark_count)),
        ("park_wait_ns", Json::from(c.park_wait_ns)),
        ("steal_attempts", Json::from(c.steal_attempts)),
        ("steal_hits", Json::from(c.steal_hits)),
        ("steal_misses", Json::from(c.steal_misses)),
        ("deque_high_water", Json::from(c.deque_high_water)),
        ("nodes_executed", Json::from(c.nodes_executed)),
        ("exec_ns", Json::from(c.exec_ns)),
        ("fault_spikes", Json::from(c.fault_spikes)),
        ("fault_spike_iters", Json::from(c.fault_spike_iters)),
        ("fault_stalls", Json::from(c.fault_stalls)),
        ("fault_stall_iters", Json::from(c.fault_stall_iters)),
        ("fault_pressure_iters", Json::from(c.fault_pressure_iters)),
        ("net_packets_lost", Json::from(c.net_packets_lost)),
        ("net_packets_late", Json::from(c.net_packets_late)),
        ("net_packets_dup", Json::from(c.net_packets_dup)),
        ("net_frames_concealed", Json::from(c.net_frames_concealed)),
        ("net_depth_changes", Json::from(c.net_depth_changes)),
        ("net_wait_ns", Json::from(c.net_wait_ns)),
        ("net_conceal_ns", Json::from(c.net_conceal_ns)),
        ("broadcast_drops", Json::from(c.broadcast_drops)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(cycle: u64, graph_ns: u64, exec_ns: u64, wait_ns: u64) -> CycleRecord {
        let w0 = CounterSnapshot {
            nodes_executed: 3,
            exec_ns,
            busy_wait_ns: wait_ns / 2,
            park_wait_ns: wait_ns - wait_ns / 2,
            spin_iters: 10,
            ..Default::default()
        };
        CycleRecord {
            cycle,
            graph_ns,
            workers: vec![w0, CounterSnapshot::default()].into_boxed_slice(),
        }
    }

    #[test]
    fn aggregates_records_into_report() {
        let records: Vec<CycleRecord> = (1..=100).map(|c| record(c, c * 1_000, 500, 200)).collect();
        let report = TelemetryReport::from_records("BUSY", 2, 90_000, records.iter()).unwrap();
        assert_eq!(report.cycles, 100);
        assert_eq!(report.strategy, "BUSY");
        assert_eq!(report.graph_max_ns, 100_000.0);
        assert!((report.graph_mean_ns - 50_500.0).abs() < 1e-9);
        // Cycles 91..=100 exceed 90_000 ns.
        assert_eq!(report.miss_count, 10);
        assert_eq!(report.misses.len(), 10);
        assert_eq!(report.misses[0].cycle, 91);
        assert_eq!(report.totals.nodes_executed, 300);
        assert_eq!(report.totals.exec_ns, 50_000);
        assert_eq!(report.totals.spin_iters, 1_000);
        assert!(report.graph_pct.p50 <= report.graph_pct.p90);
        assert!(report.graph_pct.p90 <= report.graph_pct.p99);
        assert!(report.graph_pct.p99 <= report.graph_pct.p999);
        assert!(report.graph_pct.p999 <= report.graph_max_ns);
    }

    #[test]
    fn empty_records_yield_none() {
        assert!(TelemetryReport::from_records("SEQ", 1, 1_000, [].iter()).is_none());
    }

    #[test]
    fn miss_ledger_is_capped_but_counts_everything() {
        let records: Vec<CycleRecord> = (0..400).map(|c| record(c, 10_000, 1, 0)).collect();
        let report = TelemetryReport::from_records("WS", 4, 1, records.iter()).unwrap();
        assert_eq!(report.miss_count, 400);
        assert_eq!(report.misses.len(), TelemetryReport::MAX_MISSES);
    }

    #[test]
    fn json_shapes_are_stable() {
        let r = record(7, 1234, 500, 100);
        let line = cycle_json(&r).render();
        assert!(line.starts_with("{\"cycle\":7,\"session\":0,\"graph_ns\":1234,\"workers\":[{"));
        assert!(line.contains("\"exec_ns\":500"));
        let tagged = cycle_json_for_session(&r, 3).render();
        assert!(tagged.starts_with("{\"cycle\":7,\"session\":3,"));

        let report = TelemetryReport::from_records("SLEEP", 2, 2_000, [r].iter()).unwrap();
        let j = report.to_json().render();
        assert!(j.contains("\"strategy\":\"SLEEP\""));
        assert!(j.contains("\"deadline_misses\":0"));
        assert!(j.contains("\"p99_9\""));
        assert!(j.contains("\"dropped_events\":0"));
    }

    #[test]
    fn every_counter_field_is_exported() {
        let c = CounterSnapshot {
            spin_iters: 1,
            busy_wait_ns: 2,
            park_count: 3,
            unpark_count: 4,
            park_wait_ns: 5,
            steal_attempts: 6,
            steal_hits: 7,
            steal_misses: 8,
            deque_high_water: 9,
            nodes_executed: 10,
            exec_ns: 11,
            fault_spikes: 12,
            fault_spike_iters: 13,
            fault_stalls: 14,
            fault_stall_iters: 15,
            fault_pressure_iters: 16,
            net_packets_lost: 17,
            net_packets_late: 18,
            net_packets_dup: 19,
            net_frames_concealed: 20,
            net_depth_changes: 21,
            net_wait_ns: 22,
            net_conceal_ns: 23,
            broadcast_drops: 24,
        };
        let j = counters_json(&c).render();
        for (i, field) in [
            "spin_iters",
            "busy_wait_ns",
            "park_count",
            "unpark_count",
            "park_wait_ns",
            "steal_attempts",
            "steal_hits",
            "steal_misses",
            "deque_high_water",
            "nodes_executed",
            "exec_ns",
            "fault_spikes",
            "fault_spike_iters",
            "fault_stalls",
            "fault_stall_iters",
            "fault_pressure_iters",
            "net_packets_lost",
            "net_packets_late",
            "net_packets_dup",
            "net_frames_concealed",
            "net_depth_changes",
            "net_wait_ns",
            "net_conceal_ns",
            "broadcast_drops",
        ]
        .iter()
        .enumerate()
        {
            assert!(
                j.contains(&format!("\"{}\":{}", field, i + 1)),
                "missing {field} in {j}"
            );
        }
    }

    #[test]
    fn dropped_events_ride_the_report() {
        let r = record(1, 1000, 10, 0);
        let report = TelemetryReport::from_records("WS", 2, 2_000, [r].iter())
            .unwrap()
            .with_dropped_events(42);
        assert!(report.to_json().render().contains("\"dropped_events\":42"));
    }

    #[test]
    fn render_mentions_the_headline_numbers() {
        let records: Vec<CycleRecord> = (1..=10).map(|c| record(c, 2_000_000, 1, 0)).collect();
        let report = TelemetryReport::from_records("HYBRID", 2, 2_902_494, records.iter()).unwrap();
        let text = report.render();
        assert!(text.contains("HYBRID @ 2 thread(s), 10 cycles"));
        assert!(text.contains("deadline"));
        let hist = report.render_histogram(&[2_000_000.0; 10], 8, 40);
        assert!(hist.contains("ms"));
    }
}
