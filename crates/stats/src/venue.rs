//! E18 — venue-server acceptance: many sessions on one pool, with
//! per-session deadlines and admission control.
//!
//! The `fig_venue` harness produces three evidence legs and this module
//! turns them into `BENCH_venue.json` plus named acceptance gates:
//!
//! * **Solo-vs-venue parity** — each strategy runs the same workload
//!   solo (its own executor, `run_apc`) and as the only session of a
//!   venue. Hosting must add zero deadline misses (up to a small
//!   [`miss_slack`](VenueReport::miss_slack) for host preemption noise
//!   near the deadline, the same allowance E16 grants) and leave the
//!   audio bit-exact.
//! * **Scaling** — identical sessions are added up to the admission
//!   bound; the batch cycle time must grow at most linearly in the
//!   session count (the pool multiplexes at least as well as running
//!   the sessions back-to-back).
//! * **Admission sweep** — candidates are offered until one is turned
//!   away. Every rejection must be confirmed unschedulable by the sim
//!   oracle, and nothing the oracle admits may be rejected.

use crate::json::Json;

/// One strategy's solo-vs-venue differential.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyVenue {
    /// Strategy label (`SEQ`, `BUSY`, ...).
    pub strategy: String,
    /// Threads (pool lanes) the strategy ran with.
    pub threads: usize,
    /// Deadline misses of the solo run.
    pub solo_misses: u64,
    /// Deadline misses of the venue-hosted run.
    pub venue_misses: u64,
    /// Solo per-cycle p50 (TP+GP+Graph+VC, ns).
    pub solo_p50_ns: f64,
    /// Venue-hosted per-cycle p50 (ns).
    pub venue_p50_ns: f64,
    /// FNV fold of every solo cycle's output.
    pub solo_checksum: u64,
    /// FNV fold of every venue cycle's output.
    pub venue_checksum: u64,
}

impl StrategyVenue {
    /// Venue hosting added no misses over solo, up to `slack` tolerated
    /// noise misses (OS preemption lands on the two runs independently).
    pub fn no_added_misses(&self, slack: u64) -> bool {
        self.venue_misses <= self.solo_misses + slack
    }

    /// Venue hosting left the audio bit-exact with solo.
    pub fn bit_exact(&self) -> bool {
        self.venue_checksum == self.solo_checksum
    }

    fn to_json(&self) -> Json {
        Json::object([
            ("strategy", Json::from(self.strategy.clone())),
            ("threads", Json::from(self.threads)),
            ("solo_misses", Json::from(self.solo_misses)),
            ("venue_misses", Json::from(self.venue_misses)),
            ("solo_p50_ns", Json::Float(self.solo_p50_ns)),
            ("venue_p50_ns", Json::Float(self.venue_p50_ns)),
            ("bit_exact", Json::from(self.bit_exact())),
            ("solo_checksum", Json::from(self.solo_checksum)),
            ("venue_checksum", Json::from(self.venue_checksum)),
        ])
    }
}

/// One point of the session-count scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalingPoint {
    /// Sessions in the batch.
    pub sessions: usize,
    /// Batch cycle-time p50 (ns).
    pub batch_p50_ns: f64,
}

/// One candidate of the admission sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionTrial {
    /// Ordinal of the candidate in offer order.
    pub candidate: usize,
    /// The candidate's probed per-cycle bound (ns).
    pub bound_ns: u64,
    /// Load already admitted when the candidate was offered (ns).
    pub load_before_ns: u64,
    /// Did the venue admit it?
    pub admitted: bool,
    /// Does the sim oracle say the resulting set would be schedulable?
    pub oracle_admissible: bool,
}

/// Per-session counter snapshot carried into the JSON artifact (the
/// venue's misses / degradation / bound ledger).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionLedgerEntry {
    /// Venue session id.
    pub id: u32,
    /// Strategy label.
    pub strategy: String,
    /// Cycles run.
    pub cycles: u64,
    /// Deadline misses.
    pub misses: u64,
    /// Currently degraded?
    pub degraded: bool,
    /// Admission-time bound (ns).
    pub bound_ns: u64,
}

impl SessionLedgerEntry {
    fn to_json(&self) -> Json {
        Json::object([
            ("session", Json::from(u64::from(self.id))),
            ("strategy", Json::from(self.strategy.clone())),
            ("cycles", Json::from(self.cycles)),
            ("misses", Json::from(self.misses)),
            ("degraded", Json::from(self.degraded)),
            ("bound_ns", Json::from(self.bound_ns)),
        ])
    }
}

/// Aggregated E18 results.
#[derive(Debug, Clone, PartialEq)]
pub struct VenueReport {
    /// Pool lanes.
    pub threads: usize,
    /// Measured cycles per run.
    pub cycles: usize,
    /// Venue deadline (ns).
    pub deadline_ns: u64,
    /// Admission safety margin.
    pub margin: f64,
    /// Allowed super-linear scaling slack (fraction; 0.25 = 25 %).
    pub scaling_slack: f64,
    /// Extra venue-hosted misses tolerated per strategy. Both runs sit
    /// far under the deadline at p50, so their misses are rare host
    /// preemption spikes that land on each run independently; a venue
    /// protocol bug would add misses systematically, far past this.
    pub miss_slack: u64,
    /// Rejections the admission sweep's venue counted.
    pub rejections: u64,
    /// Per-strategy solo-vs-venue differentials.
    pub strategies: Vec<StrategyVenue>,
    /// Batch-time scaling sweep, 1..=N sessions.
    pub scaling: Vec<ScalingPoint>,
    /// Admission sweep trials, in offer order.
    pub admission: Vec<AdmissionTrial>,
    /// Final per-session counters of the scaling venue.
    pub sessions: Vec<SessionLedgerEntry>,
}

impl VenueReport {
    /// Acceptance (headline): hosting a session in the venue adds zero
    /// deadline misses over running it solo, for every strategy (within
    /// [`miss_slack`](Self::miss_slack)).
    pub fn no_added_misses(&self) -> bool {
        self.strategies
            .iter()
            .all(|s| s.no_added_misses(self.miss_slack))
    }

    /// Acceptance: venue-hosted audio is bit-exact with solo audio for
    /// every strategy.
    pub fn venue_bit_exact(&self) -> bool {
        self.strategies.iter().all(StrategyVenue::bit_exact)
    }

    /// Acceptance: batch time grows at most linearly in session count —
    /// `p50(k sessions) ≤ k × p50(1 session) × (1 + slack)`. The pool
    /// runs admitted sessions back-to-back per lane in the worst case,
    /// so super-linear growth means the multiplexing itself leaks time.
    pub fn scaling_at_most_linear(&self) -> bool {
        let base = match self.scaling.iter().find(|p| p.sessions == 1) {
            Some(p) if p.batch_p50_ns > 0.0 => p.batch_p50_ns,
            _ => return false,
        };
        self.scaling
            .iter()
            .all(|p| p.batch_p50_ns <= base * p.sessions as f64 * (1.0 + self.scaling_slack))
    }

    /// Acceptance: every rejection was necessary — the sim oracle
    /// confirms each rejected candidate would have made the session set
    /// unschedulable.
    pub fn rejections_confirmed(&self) -> bool {
        self.admission
            .iter()
            .filter(|t| !t.admitted)
            .all(|t| !t.oracle_admissible)
    }

    /// Acceptance: no false rejects — every candidate the oracle admits
    /// was admitted by the venue.
    pub fn no_false_rejects(&self) -> bool {
        self.admission
            .iter()
            .filter(|t| t.oracle_admissible)
            .all(|t| t.admitted)
    }

    /// Acceptance: the admission sweep actually exercised both outcomes
    /// (at least one admit and one reject), or the scaling/rejection
    /// claims are vacuous.
    pub fn admission_sweep_bites(&self) -> bool {
        self.admission.iter().any(|t| t.admitted) && self.admission.iter().any(|t| !t.admitted)
    }

    /// Names of the acceptance gates that currently fail.
    pub fn failed_gates(&self) -> Vec<&'static str> {
        let mut failed = Vec::new();
        if !self.no_added_misses() {
            failed.push("no_added_misses");
        }
        if !self.venue_bit_exact() {
            failed.push("venue_bit_exact");
        }
        if !self.scaling_at_most_linear() {
            failed.push("scaling_at_most_linear");
        }
        if !self.rejections_confirmed() {
            failed.push("rejections_confirmed");
        }
        if !self.no_false_rejects() {
            failed.push("no_false_rejects");
        }
        if !self.admission_sweep_bites() {
            failed.push("admission_sweep_bites");
        }
        failed
    }

    /// The `BENCH_venue.json` tree.
    pub fn to_json(&self) -> Json {
        Json::object([
            ("bench", Json::from("venue")),
            ("threads", Json::from(self.threads)),
            ("cycles", Json::from(self.cycles)),
            ("deadline_ns", Json::from(self.deadline_ns)),
            ("margin", Json::from(self.margin)),
            ("scaling_slack", Json::from(self.scaling_slack)),
            ("miss_slack", Json::from(self.miss_slack)),
            ("rejections", Json::from(self.rejections)),
            (
                "strategies",
                Json::Array(self.strategies.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "scaling",
                Json::Array(
                    self.scaling
                        .iter()
                        .map(|p| {
                            Json::object([
                                ("sessions", Json::from(p.sessions)),
                                ("batch_p50_ns", Json::Float(p.batch_p50_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "admission",
                Json::Array(
                    self.admission
                        .iter()
                        .map(|t| {
                            Json::object([
                                ("candidate", Json::from(t.candidate)),
                                ("bound_ns", Json::from(t.bound_ns)),
                                ("load_before_ns", Json::from(t.load_before_ns)),
                                ("admitted", Json::from(t.admitted)),
                                ("oracle_admissible", Json::from(t.oracle_admissible)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "sessions",
                Json::Array(self.sessions.iter().map(|s| s.to_json()).collect()),
            ),
            (
                "checks",
                Json::object([
                    ("no_added_misses", Json::from(self.no_added_misses())),
                    ("venue_bit_exact", Json::from(self.venue_bit_exact())),
                    (
                        "scaling_at_most_linear",
                        Json::from(self.scaling_at_most_linear()),
                    ),
                    (
                        "rejections_confirmed",
                        Json::from(self.rejections_confirmed()),
                    ),
                    ("no_false_rejects", Json::from(self.no_false_rejects())),
                    (
                        "admission_sweep_bites",
                        Json::from(self.admission_sweep_bites()),
                    ),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strategy(venue_misses: u64, venue_checksum: u64) -> StrategyVenue {
        StrategyVenue {
            strategy: "BUSY".into(),
            threads: 3,
            solo_misses: 2,
            venue_misses,
            solo_p50_ns: 1_000.0,
            venue_p50_ns: 1_050.0,
            solo_checksum: 0xABC,
            venue_checksum,
        }
    }

    fn report() -> VenueReport {
        VenueReport {
            threads: 3,
            cycles: 500,
            deadline_ns: 2_900_000,
            margin: 0.1,
            scaling_slack: 0.25,
            miss_slack: 0,
            rejections: 1,
            strategies: vec![strategy(2, 0xABC)],
            scaling: vec![
                ScalingPoint {
                    sessions: 1,
                    batch_p50_ns: 1_000.0,
                },
                ScalingPoint {
                    sessions: 2,
                    batch_p50_ns: 1_900.0,
                },
                ScalingPoint {
                    sessions: 3,
                    batch_p50_ns: 3_100.0,
                },
            ],
            admission: vec![
                AdmissionTrial {
                    candidate: 0,
                    bound_ns: 900_000,
                    load_before_ns: 0,
                    admitted: true,
                    oracle_admissible: true,
                },
                AdmissionTrial {
                    candidate: 1,
                    bound_ns: 900_000,
                    load_before_ns: 900_000,
                    admitted: true,
                    oracle_admissible: true,
                },
                AdmissionTrial {
                    candidate: 2,
                    bound_ns: 900_000,
                    load_before_ns: 1_800_000,
                    admitted: false,
                    oracle_admissible: false,
                },
            ],
            sessions: vec![SessionLedgerEntry {
                id: 1,
                strategy: "BUSY".into(),
                cycles: 500,
                misses: 0,
                degraded: false,
                bound_ns: 900_000,
            }],
        }
    }

    #[test]
    fn clean_report_passes_every_gate() {
        assert!(report().failed_gates().is_empty());
    }

    #[test]
    fn gates_name_their_culprits() {
        let mut r = report();
        r.strategies[0].venue_misses = 5;
        assert!(r.failed_gates().contains(&"no_added_misses"));
        r.miss_slack = 3;
        assert!(!r.failed_gates().contains(&"no_added_misses"));

        let mut r = report();
        r.strategies[0].venue_checksum = 0xDEF;
        assert!(r.failed_gates().contains(&"venue_bit_exact"));

        let mut r = report();
        r.scaling[2].batch_p50_ns = 4_000.0;
        assert!(r.failed_gates().contains(&"scaling_at_most_linear"));

        let mut r = report();
        r.admission[2].oracle_admissible = true;
        let gates = r.failed_gates();
        assert!(gates.contains(&"rejections_confirmed"));
        assert!(gates.contains(&"no_false_rejects"));

        let mut r = report();
        r.admission.truncate(2);
        assert!(r.failed_gates().contains(&"admission_sweep_bites"));
    }

    #[test]
    fn json_carries_gates_and_ledger() {
        let j = report().to_json().render();
        assert!(j.starts_with("{\"bench\":\"venue\""));
        assert!(j.contains("\"checks\":{\"no_added_misses\":true"));
        assert!(j.contains("\"sessions\":[{\"session\":1"));
        assert!(j.contains("\"oracle_admissible\""));
    }

    #[test]
    fn missing_single_session_point_fails_scaling() {
        let mut r = report();
        r.scaling.remove(0);
        assert!(r.failed_gates().contains(&"scaling_at_most_linear"));
    }
}
