//! Property-style tests for the statistics substrate, driven by a seeded
//! [`SmallRng`] so every run is identical (the workspace builds offline,
//! without proptest).

use djstar_dsp::rng::SmallRng;
use djstar_stats::{Histogram, Summary};

fn samples_in(rng: &mut SmallRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = min_len + rng.below(max_len - min_len);
    (0..len).map(|_| lo + rng.f64() * (hi - lo)).collect()
}

#[test]
fn summary_orders_min_mean_max() {
    let mut rng = SmallRng::seed_from_u64(0x50AA);
    for _ in 0..64 {
        let samples = samples_in(&mut rng, -1e6, 1e6, 1, 200);
        let s = Summary::of(&samples).unwrap();
        assert!(s.min <= s.mean + 1e-9);
        assert!(s.mean <= s.max + 1e-9);
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.stddev >= 0.0);
        assert_eq!(s.count, samples.len());
    }
}

#[test]
fn percentiles_are_monotone() {
    let mut rng = SmallRng::seed_from_u64(0x9E4C);
    for _ in 0..64 {
        let samples = samples_in(&mut rng, -1e3, 1e3, 1, 100);
        let p1 = rng.f64() * 100.0;
        let p2 = rng.f64() * 100.0;
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let vlo = Summary::percentile(&samples, lo).unwrap();
        let vhi = Summary::percentile(&samples, hi).unwrap();
        assert!(vlo <= vhi + 1e-9);
    }
}

#[test]
fn histogram_conserves_samples() {
    let mut rng = SmallRng::seed_from_u64(0x415C);
    for _ in 0..64 {
        let values = samples_in(&mut rng, -10.0, 10.0, 1, 500);
        let bins = 1 + rng.below(49);
        let mut h = Histogram::new(-5.0, 5.0, bins);
        h.record_all(&values);
        assert_eq!(h.total(), values.len() as u64);
        let bin_sum: u64 = h.bins().iter().sum();
        assert_eq!(bin_sum, values.len() as u64);
    }
}

#[test]
fn cumulative_is_monotone_and_ends_at_total() {
    let mut rng = SmallRng::seed_from_u64(0xC077);
    for _ in 0..64 {
        let values = samples_in(&mut rng, 0.0, 1.0, 1, 300);
        let mut h = Histogram::new(0.0, 1.0, 16);
        h.record_all(&values);
        let c = h.cumulative();
        let counts = c.counts();
        for w in counts.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert_eq!(*counts.last().unwrap(), values.len() as u64);
    }
}

#[test]
fn fraction_below_is_monotone_in_value() {
    let mut rng = SmallRng::seed_from_u64(0xF4AC);
    for _ in 0..64 {
        let values = samples_in(&mut rng, 0.0, 1.0, 1, 200);
        let a = rng.f64();
        let b = rng.f64();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut h = Histogram::new(0.0, 1.0, 20);
        h.record_all(&values);
        let c = h.cumulative();
        assert!(c.fraction_below(lo) <= c.fraction_below(hi) + 1e-12);
    }
}

#[test]
fn summary_scale_invariance() {
    let mut rng = SmallRng::seed_from_u64(0x5CA1);
    for _ in 0..64 {
        let samples = samples_in(&mut rng, 1.0, 100.0, 2, 100);
        let k = 0.1 + rng.f64() * 9.9;
        let s1 = Summary::of(&samples).unwrap();
        let scaled: Vec<f64> = samples.iter().map(|v| v * k).collect();
        let s2 = Summary::of(&scaled).unwrap();
        assert!((s2.mean - s1.mean * k).abs() < 1e-6 * s1.mean.abs().max(1.0) * k);
        assert!((s2.max - s1.max * k).abs() < 1e-6 * s1.max.abs().max(1.0) * k);
    }
}
