//! Property-based tests for the statistics substrate.

use djstar_stats::{Histogram, Summary};
use proptest::prelude::*;

proptest! {
    #[test]
    fn summary_orders_min_mean_max(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let s = Summary::of(&samples).unwrap();
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.stddev >= 0.0);
        prop_assert_eq!(s.count, samples.len());
    }

    #[test]
    fn percentiles_are_monotone(samples in prop::collection::vec(-1e3f64..1e3, 1..100),
                                p1 in 0.0f64..100.0, p2 in 0.0f64..100.0) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let vlo = Summary::percentile(&samples, lo).unwrap();
        let vhi = Summary::percentile(&samples, hi).unwrap();
        prop_assert!(vlo <= vhi + 1e-9);
    }

    #[test]
    fn histogram_conserves_samples(values in prop::collection::vec(-10.0f64..10.0, 0..500),
                                   bins in 1usize..50) {
        let mut h = Histogram::new(-5.0, 5.0, bins);
        h.record_all(&values);
        prop_assert_eq!(h.total(), values.len() as u64);
        let bin_sum: u64 = h.bins().iter().sum();
        prop_assert_eq!(bin_sum, values.len() as u64);
    }

    #[test]
    fn cumulative_is_monotone_and_ends_at_total(values in prop::collection::vec(0.0f64..1.0, 1..300)) {
        let mut h = Histogram::new(0.0, 1.0, 16);
        h.record_all(&values);
        let c = h.cumulative();
        let counts = c.counts();
        for w in counts.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        prop_assert_eq!(*counts.last().unwrap(), values.len() as u64);
    }

    #[test]
    fn fraction_below_is_monotone_in_value(values in prop::collection::vec(0.0f64..1.0, 1..200),
                                           a in 0.0f64..1.0, b in 0.0f64..1.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let mut h = Histogram::new(0.0, 1.0, 20);
        h.record_all(&values);
        let c = h.cumulative();
        prop_assert!(c.fraction_below(lo) <= c.fraction_below(hi) + 1e-12);
    }

    #[test]
    fn summary_scale_invariance(samples in prop::collection::vec(1.0f64..100.0, 2..100),
                                k in 0.1f64..10.0) {
        let s1 = Summary::of(&samples).unwrap();
        let scaled: Vec<f64> = samples.iter().map(|v| v * k).collect();
        let s2 = Summary::of(&scaled).unwrap();
        prop_assert!((s2.mean - s1.mean * k).abs() < 1e-6 * s1.mean.abs().max(1.0) * k);
        prop_assert!((s2.max - s1.max * k).abs() < 1e-6 * s1.max.abs().max(1.0) * k);
    }
}
