//! Fault-scenario presets: the workload half of the overload experiment
//! (E14).
//!
//! A [`FaultSpec`] is plain data describing a seeded fault scenario —
//! node duration spikes, worker stalls and CPU-pressure episodes — without
//! depending on executor internals (the engine converts a spec into
//! `djstar-core`'s `FaultPlan`). Like [`toggle_storm`](crate::toggle_storm)
//! for topology switches, the presets here are deterministic functions of
//! their seed, so a scenario names a replayable experiment, not a dice
//! roll.
//!
//! The `*_iters` fields are calibration-kernel iterations; the harness
//! scales them from a measured per-iteration cost so a scenario describes
//! *relative* pressure that reproduces across machines.

/// A seeded fault scenario, engine-agnostic plain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Seed for every injection draw.
    pub seed: u64,
    /// Probability a given node spikes in a given cycle.
    pub spike_rate: f64,
    /// Kernel iterations a spike adds to the node's execution.
    pub spike_iters: u32,
    /// Virtual stall lanes (fixed, so the schedule is thread-count
    /// independent; lane `l` is absorbed by worker `l % threads`).
    pub stall_lanes: u32,
    /// Probability a given lane stalls in a given cycle.
    pub stall_rate: f64,
    /// Kernel iterations one stall costs its worker.
    pub stall_iters: u32,
    /// Cycle period of the pressure square wave (`0` disables pressure).
    pub pressure_period: u64,
    /// Leading cycles of each period under pressure.
    pub pressure_len: u64,
    /// Kernel iterations pressure adds to every node while high.
    pub pressure_iters: u32,
}

impl FaultSpec {
    /// A scenario that never injects anything: the hook runs, every draw
    /// misses. Measures the cost of the enabled-but-idle path.
    pub fn quiet(seed: u64) -> Self {
        FaultSpec {
            seed,
            spike_rate: 0.0,
            spike_iters: 0,
            stall_lanes: 0,
            stall_rate: 0.0,
            stall_iters: 0,
            pressure_period: 0,
            pressure_len: 0,
            pressure_iters: 0,
        }
    }

    /// The calibrated fault storm of E14: occasional node spikes, a few
    /// preempted lanes, and a sustained pressure wave that is high for
    /// half of each period — long enough that a degradation policy with a
    /// multi-cycle window must engage, with quiet stretches long enough
    /// for it to restore. The `*_iters` fields carry placeholder weights;
    /// the harness rescales them against the measured kernel cost and
    /// deadline headroom (see [`FaultSpec::with_iters`]).
    pub fn storm(seed: u64) -> Self {
        FaultSpec {
            seed,
            spike_rate: 0.02,
            spike_iters: 1,
            stall_lanes: 4,
            stall_rate: 0.1,
            stall_iters: 1,
            pressure_period: 400,
            pressure_len: 200,
            pressure_iters: 1,
        }
    }

    /// The same scenario with calibrated iteration weights.
    pub fn with_iters(self, spike: u32, stall: u32, pressure: u32) -> Self {
        FaultSpec {
            spike_iters: spike,
            stall_iters: stall,
            pressure_iters: pressure,
            ..self
        }
    }

    /// True when no draw can ever fire.
    pub fn is_quiet(&self) -> bool {
        (self.spike_rate <= 0.0 || self.spike_iters == 0)
            && (self.stall_lanes == 0 || self.stall_rate <= 0.0 || self.stall_iters == 0)
            && (self.pressure_period == 0 || self.pressure_len == 0 || self.pressure_iters == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_is_quiet_and_storm_is_not() {
        assert!(FaultSpec::quiet(7).is_quiet());
        assert!(!FaultSpec::storm(7).with_iters(10, 10, 10).is_quiet());
        // A storm with zeroed weights degenerates to quiet.
        assert!(FaultSpec::storm(7).with_iters(0, 0, 0).is_quiet());
    }

    #[test]
    fn presets_are_pure_functions_of_the_seed() {
        assert_eq!(FaultSpec::storm(3), FaultSpec::storm(3));
        assert_ne!(FaultSpec::storm(3).seed, FaultSpec::storm(4).seed);
    }

    #[test]
    fn with_iters_only_touches_the_weights() {
        let base = FaultSpec::storm(11);
        let scaled = base.with_iters(100, 200, 300);
        assert_eq!(scaled.spike_iters, 100);
        assert_eq!(scaled.stall_iters, 200);
        assert_eq!(scaled.pressure_iters, 300);
        assert_eq!(scaled.seed, base.seed);
        assert_eq!(scaled.spike_rate, base.spike_rate);
        assert_eq!(scaled.pressure_period, base.pressure_period);
    }
}
