//! Workload substrate: synthetic audio tracks, performance scenarios and
//! the calibratable node cost model.
//!
//! The paper evaluates DJ Star "on realistic input data (four decks with
//! different audio tracks)" (§VIII) with "67 different filters and audio
//! effects that imitate a typical use case for a DJ performance". We cannot
//! ship copyrighted music, so [`track`] synthesizes club-style tracks (kick,
//! hats, bass, lead, with alternating loud/quiet sections — the loudness
//! alternation is what produces the bimodal execution-time histograms of
//! Fig. 9), [`scenario`] describes deck/mixer configurations, and
//! [`profile`] holds the per-node-class compute weights that calibrate our
//! graph's run-time distribution to the paper's.

pub mod faults;
pub mod netspec;
pub mod profile;
pub mod scenario;
pub mod switches;
pub mod track;

pub use faults::FaultSpec;
pub use netspec::NetSpec;
pub use profile::WorkProfile;
pub use scenario::{DeckConfig, Scenario};
pub use switches::{shape_walk, toggle_storm, SwitchAction, SwitchEvent, SwitchScript};
pub use track::{synth_track, Track, TrackStyle};
