//! Network-scenario presets: the workload half of the networked-decks
//! experiment (E17).
//!
//! A [`NetSpec`] is plain data describing a seeded packet-fault scenario
//! for remote deck streams and the broadcast downlink — loss, jitter,
//! reordering, duplication, jitter bursts and listener stalls — without
//! depending on executor internals (the engine converts a spec into
//! `djstar-core`'s `NetFaultPlan`). Like [`FaultSpec`](crate::FaultSpec),
//! every preset is a pure function of its seed, so a scenario names a
//! replayable network trace, not a dice roll.

/// A seeded network scenario, engine-agnostic plain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetSpec {
    /// Seed for every per-packet draw.
    pub seed: u64,
    /// Which decks stream over the network instead of playing locally.
    pub remote_decks: [bool; 4],
    /// Simulated broadcast listeners fed from the master bus (0 = none).
    pub listeners: u32,
    /// Minimum transit delay of every packet, in cycles.
    pub base_delay: u32,
    /// Max extra delay cycles under quiet conditions (uniform draw).
    pub jitter: u32,
    /// Probability a packet is lost outright.
    pub loss_rate: f64,
    /// Probability a packet is duplicated.
    pub dup_rate: f64,
    /// Cycles the duplicate trails the original by.
    pub dup_delay: u32,
    /// Probability a packet is held back behind its successors.
    pub reorder_rate: f64,
    /// Extra delay a reordered packet picks up.
    pub reorder_extra: u32,
    /// Cycle period of the jitter-burst square wave (`0` disables bursts).
    pub burst_period: u64,
    /// Leading cycles of each period under burst jitter.
    pub burst_len: u64,
    /// Extra max jitter while a burst is high.
    pub burst_jitter: u32,
    /// Probability a broadcast listener's drain stalls in a given cycle.
    pub listener_stall_rate: f64,
    /// Smallest jitter-buffer playout depth (cycles of added latency).
    pub min_depth: u32,
    /// Largest jitter-buffer playout depth.
    pub max_depth: u32,
    /// Initial playout depth.
    pub start_depth: u32,
    /// Enable watermark-driven depth adaptation.
    pub adapt: bool,
}

impl Default for NetSpec {
    /// No networking at all: every deck is local, no listeners.
    fn default() -> Self {
        NetSpec {
            seed: 0,
            remote_decks: [false; 4],
            listeners: 0,
            base_delay: 0,
            jitter: 0,
            loss_rate: 0.0,
            dup_rate: 0.0,
            dup_delay: 1,
            reorder_rate: 0.0,
            reorder_extra: 0,
            burst_period: 0,
            burst_len: 0,
            burst_jitter: 0,
            listener_stall_rate: 0.0,
            min_depth: 1,
            max_depth: 12,
            start_depth: 1,
            adapt: false,
        }
    }
}

impl NetSpec {
    /// Decks A and B remote over a clean network, a handful of listeners:
    /// measures the cost of the reception machinery itself.
    pub fn clean(seed: u64) -> Self {
        NetSpec {
            seed,
            remote_decks: [true, true, false, false],
            listeners: 4,
            ..Default::default()
        }
    }

    /// Steady random loss and mild jitter — the baseline degraded link.
    pub fn lossy(seed: u64) -> Self {
        NetSpec {
            seed,
            remote_decks: [true, true, false, false],
            listeners: 4,
            base_delay: 1,
            jitter: 2,
            loss_rate: 0.02,
            dup_rate: 0.01,
            reorder_rate: 0.02,
            reorder_extra: 3,
            listener_stall_rate: 0.05,
            start_depth: 2,
            ..Default::default()
        }
    }

    /// Bursty jitter on top of a lossy link: long quiet stretches with
    /// periodic delay storms. This is the scenario where an adaptive
    /// depth wins — a fixed buffer must either ride deep forever (latency)
    /// or conceal through every burst (dropouts).
    pub fn bursty(seed: u64) -> Self {
        NetSpec {
            burst_period: 256,
            burst_len: 64,
            burst_jitter: 8,
            adapt: true,
            ..Self::lossy(seed)
        }
    }

    /// True when no draw can ever perturb a packet or listener.
    pub fn is_quiet(&self) -> bool {
        self.jitter == 0
            && self.loss_rate <= 0.0
            && self.dup_rate <= 0.0
            && (self.reorder_rate <= 0.0 || self.reorder_extra == 0)
            && (self.burst_period == 0 || self.burst_len == 0 || self.burst_jitter == 0)
            && self.listener_stall_rate <= 0.0
    }

    /// True when the spec adds no network machinery to the graph at all.
    pub fn is_disabled(&self) -> bool {
        self.remote_decks.iter().all(|&r| !r) && self.listeners == 0
    }

    /// The same scenario pinned to a fixed playout depth (no adaptation) —
    /// the fixed-depth arms of the E17 latency/dropout sweep.
    pub fn with_fixed_depth(self, depth: u32) -> Self {
        NetSpec {
            min_depth: depth,
            max_depth: depth,
            start_depth: depth,
            adapt: false,
            ..self
        }
    }

    /// The same scenario with adaptation over `[min, max]`.
    pub fn with_adaptive_depth(self, min: u32, max: u32) -> Self {
        NetSpec {
            min_depth: min,
            max_depth: max,
            start_depth: min,
            adapt: true,
            ..self
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_disabled_and_quiet() {
        let s = NetSpec::default();
        assert!(s.is_disabled());
        assert!(s.is_quiet());
    }

    #[test]
    fn clean_is_enabled_but_quiet() {
        let s = NetSpec::clean(9);
        assert!(!s.is_disabled());
        assert!(s.is_quiet());
        assert_eq!(s.listeners, 4);
    }

    #[test]
    fn presets_are_pure_functions_of_the_seed() {
        assert_eq!(NetSpec::bursty(3), NetSpec::bursty(3));
        assert_ne!(NetSpec::bursty(3).seed, NetSpec::bursty(4).seed);
        assert!(!NetSpec::lossy(3).is_quiet());
    }

    #[test]
    fn depth_helpers_pin_and_widen() {
        let fixed = NetSpec::bursty(1).with_fixed_depth(6);
        assert_eq!(
            (fixed.min_depth, fixed.max_depth, fixed.start_depth),
            (6, 6, 6)
        );
        assert!(!fixed.adapt);
        let ad = NetSpec::bursty(1).with_adaptive_depth(1, 10);
        assert!(ad.adapt);
        assert_eq!(ad.start_depth, 1);
    }
}
