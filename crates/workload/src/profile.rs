//! The per-node-class compute weights (cost model).
//!
//! §IV of the paper: node run-times are heterogeneous — the effect nodes are
//! "the most expensive nodes in terms of run-time consumption", the 33
//! independent starters "all have rather short computation times", and node
//! cost "additionally depends on the actual audio stream data". Our effects
//! are real DSP but lighter than the proprietary originals, so every node
//! additionally runs `djstar_dsp::work::burn` for a number of iterations
//! looked up here, scaled by the signal energy of its buffer.

/// Node classes with distinct cost weights, mirroring the roles in Fig. 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeClass {
    /// Sample-preprocess filter (SPx nodes): cheap.
    SpFilter,
    /// Deck effect (FX1–FX4): the expensive nodes.
    Effect,
    /// Channel strip (filter + EQ).
    Channel,
    /// The mixer.
    Mixer,
    /// Master-section processing (buffers, limiter, outs).
    MasterChain,
    /// Independent bookkeeping nodes (meters, taps, …): very cheap.
    Bookkeeping,
}

impl NodeClass {
    /// All classes.
    pub const ALL: [NodeClass; 6] = [
        NodeClass::SpFilter,
        NodeClass::Effect,
        NodeClass::Channel,
        NodeClass::Mixer,
        NodeClass::MasterChain,
        NodeClass::Bookkeeping,
    ];
}

/// Iteration budgets per node class plus the strength of data dependence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkProfile {
    /// `burn` iterations for an SP filter node.
    pub sp_iters: u32,
    /// `burn` iterations for an effect node.
    pub fx_iters: u32,
    /// `burn` iterations for a channel strip node.
    pub channel_iters: u32,
    /// `burn` iterations for the mixer node.
    pub mixer_iters: u32,
    /// `burn` iterations for master-section nodes.
    pub master_iters: u32,
    /// `burn` iterations for bookkeeping nodes.
    pub bookkeeping_iters: u32,
    /// Data dependence strength in `[0, 1]`: the final iteration count is
    /// `base * (1 - dd/2 + dd * energy)` with `energy` in `[0, 1]`, so loud
    /// audio costs up to `1 + dd/2` times the base and quiet audio as little
    /// as `1 - dd/2`.
    pub data_dependence: f32,
}

impl WorkProfile {
    /// Paper-scale weights: on a ~2 ns/iteration host this puts the
    /// sequential 67-node graph near the paper's ~1.1 ms, with effect nodes
    /// around 50 µs and bookkeeping nodes around a microsecond.
    pub fn paper_scale() -> Self {
        WorkProfile {
            sp_iters: 1_200,
            fx_iters: 16_000,
            channel_iters: 5_500,
            mixer_iters: 3_000,
            master_iters: 1_600,
            bookkeeping_iters: 300,
            // Strong data dependence: the paper's histograms show two
            // clearly separated peaks driven by the audio content (Fig. 9);
            // the loud/quiet cost contrast must dominate the smear from the
            // four decks' unaligned section boundaries.
            data_dependence: 0.9,
        }
    }

    /// Tiny weights for fast unit/integration tests.
    pub fn light() -> Self {
        WorkProfile {
            sp_iters: 20,
            fx_iters: 200,
            channel_iters: 80,
            mixer_iters: 50,
            master_iters: 30,
            bookkeeping_iters: 10,
            data_dependence: 0.5,
        }
    }

    /// Scale every class budget by `factor` (calibration knob).
    pub fn scaled(&self, factor: f64) -> Self {
        let s = |v: u32| ((v as f64 * factor).round() as u32).max(1);
        WorkProfile {
            sp_iters: s(self.sp_iters),
            fx_iters: s(self.fx_iters),
            channel_iters: s(self.channel_iters),
            mixer_iters: s(self.mixer_iters),
            master_iters: s(self.master_iters),
            bookkeeping_iters: s(self.bookkeeping_iters),
            data_dependence: self.data_dependence,
        }
    }

    /// Base iteration budget of a class.
    pub fn iters(&self, class: NodeClass) -> u32 {
        match class {
            NodeClass::SpFilter => self.sp_iters,
            NodeClass::Effect => self.fx_iters,
            NodeClass::Channel => self.channel_iters,
            NodeClass::Mixer => self.mixer_iters,
            NodeClass::MasterChain => self.master_iters,
            NodeClass::Bookkeeping => self.bookkeeping_iters,
        }
    }

    /// Effective iteration count for a node of `class` processing audio with
    /// normalized energy `energy` in `[0, 1]`.
    pub fn effective_iters(&self, class: NodeClass, energy: f32) -> u32 {
        let dd = self.data_dependence.clamp(0.0, 1.0);
        let energy = energy.clamp(0.0, 1.0);
        let factor = 1.0 - dd / 2.0 + dd * energy;
        ((self.iters(class) as f32) * factor).round() as u32
    }
}

impl Default for WorkProfile {
    fn default() -> Self {
        Self::paper_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effects_are_the_most_expensive_class() {
        let p = WorkProfile::paper_scale();
        for class in NodeClass::ALL {
            assert!(p.iters(NodeClass::Effect) >= p.iters(class));
        }
        assert!(p.iters(NodeClass::Bookkeeping) < p.iters(NodeClass::SpFilter) * 10);
    }

    #[test]
    fn data_dependence_brackets_the_base() {
        let p = WorkProfile::paper_scale();
        let quiet = p.effective_iters(NodeClass::Effect, 0.0);
        let base = p.iters(NodeClass::Effect);
        let loud = p.effective_iters(NodeClass::Effect, 1.0);
        assert!(quiet < base && base < loud, "{quiet} {base} {loud}");
        // dd = 0.9: quiet = 0.55x, loud = 1.45x.
        assert!((quiet as f32 / base as f32 - 0.55).abs() < 0.01);
        assert!((loud as f32 / base as f32 - 1.45).abs() < 0.01);
    }

    #[test]
    fn zero_data_dependence_is_flat() {
        let mut p = WorkProfile::light();
        p.data_dependence = 0.0;
        assert_eq!(
            p.effective_iters(NodeClass::Mixer, 0.0),
            p.effective_iters(NodeClass::Mixer, 1.0)
        );
    }

    #[test]
    fn scaling_multiplies_and_floors_at_one() {
        let p = WorkProfile::light().scaled(2.0);
        assert_eq!(p.fx_iters, 400);
        let tiny = WorkProfile::light().scaled(1e-9);
        assert_eq!(tiny.bookkeeping_iters, 1);
    }

    #[test]
    fn energy_clamped() {
        let p = WorkProfile::paper_scale();
        assert_eq!(
            p.effective_iters(NodeClass::Effect, -5.0),
            p.effective_iters(NodeClass::Effect, 0.0)
        );
        assert_eq!(
            p.effective_iters(NodeClass::Effect, 7.0),
            p.effective_iters(NodeClass::Effect, 1.0)
        );
    }
}
