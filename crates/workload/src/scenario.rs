//! DJ performance scenarios: deck, mixer and effect configurations.

use crate::netspec::NetSpec;
use crate::profile::WorkProfile;
use crate::track::TrackStyle;

/// Configuration of one deck.
#[derive(Debug, Clone, Copy)]
pub struct DeckConfig {
    /// Whether the deck is playing.
    pub active: bool,
    /// Playback tempo factor (1.0 = original; time-stretched, not pitched).
    pub tempo: f32,
    /// Channel fader gain.
    pub gain: f32,
    /// 3-band EQ gains in dB (low, mid, high).
    pub eq_db: [f32; 3],
    /// Channel filter knob position in `[-1, 1]`.
    pub filter_pos: f32,
    /// Which of the four FX slots are enabled.
    pub fx_enabled: [bool; 4],
    /// Relative compute weight of this deck's effect chain. The paper's
    /// deck chains are visibly imbalanced (Fig. 11: the large effect blocks
    /// differ per deck), which is what limits the 4-thread speedup to 2.40;
    /// unequal weights reproduce that imbalance.
    pub fx_weight: f32,
    /// Seed of this deck's synthesized track.
    pub track_seed: u64,
    /// Track tempo in BPM.
    pub bpm: f32,
    /// Track style.
    pub style: TrackStyle,
}

impl DeckConfig {
    /// An active deck with everything engaged (the paper's benchmark uses
    /// all 67 nodes, i.e. all effects on).
    pub fn full(track_seed: u64, bpm: f32) -> Self {
        DeckConfig {
            active: true,
            tempo: 1.0,
            gain: 0.8,
            eq_db: [0.0, 0.0, 0.0],
            filter_pos: 0.0,
            fx_enabled: [true; 4],
            fx_weight: 1.0,
            track_seed,
            bpm,
            style: TrackStyle::House,
        }
    }

    /// An inactive deck.
    pub fn idle() -> Self {
        DeckConfig {
            active: false,
            tempo: 1.0,
            gain: 0.0,
            eq_db: [0.0; 3],
            filter_pos: 0.0,
            fx_enabled: [false; 4],
            fx_weight: 1.0,
            track_seed: 0,
            bpm: 120.0,
            style: TrackStyle::House,
        }
    }
}

/// A complete performance scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The four decks.
    pub decks: [DeckConfig; 4],
    /// Crossfader position in `[0, 1]`.
    pub crossfader: f32,
    /// Master output gain.
    pub master_gain: f32,
    /// Node cost model.
    pub work: WorkProfile,
    /// Length of the synthesized tracks in seconds.
    pub track_secs: f32,
    /// Network scenario (remote decks + broadcast); disabled by default.
    pub net: NetSpec,
}

impl Scenario {
    /// The paper's evaluation setup: four active decks with different
    /// tracks, all effects engaged, paper-scale node costs.
    pub fn paper_default() -> Self {
        Scenario {
            decks: [
                DeckConfig {
                    tempo: 1.02,
                    fx_weight: 1.55,
                    ..DeckConfig::full(11, 126.0)
                },
                DeckConfig {
                    tempo: 0.98,
                    fx_weight: 1.0,
                    style: TrackStyle::Breakbeat,
                    ..DeckConfig::full(22, 132.0)
                },
                DeckConfig {
                    eq_db: [-6.0, 0.0, 3.0],
                    fx_weight: 0.75,
                    ..DeckConfig::full(33, 124.0)
                },
                DeckConfig {
                    filter_pos: -0.3,
                    fx_weight: 0.55,
                    style: TrackStyle::Ambient,
                    ..DeckConfig::full(44, 128.0)
                },
            ],
            crossfader: 0.5,
            master_gain: 0.9,
            work: WorkProfile::paper_scale(),
            track_secs: 30.0,
            net: NetSpec::default(),
        }
    }

    /// Same structure but tiny node costs and short tracks, for tests.
    pub fn light_test() -> Self {
        let mut s = Self::paper_default();
        s.work = WorkProfile::light();
        s.track_secs = 2.0;
        s
    }

    /// A two-deck mix (decks C/D idle) — used by the thread-scaling and
    /// ablation studies.
    pub fn two_deck_mix() -> Self {
        let mut s = Self::paper_default();
        s.decks[2] = DeckConfig::idle();
        s.decks[3] = DeckConfig::idle();
        s
    }

    /// Number of active decks.
    pub fn active_decks(&self) -> usize {
        self.decks.iter().filter(|d| d.active).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_four_full_decks() {
        let s = Scenario::paper_default();
        assert_eq!(s.active_decks(), 4);
        assert!(s.decks.iter().all(|d| d.fx_enabled.iter().all(|&e| e)));
        // Different tracks per deck, as in the paper.
        let seeds: std::collections::HashSet<u64> = s.decks.iter().map(|d| d.track_seed).collect();
        assert_eq!(seeds.len(), 4);
    }

    #[test]
    fn two_deck_mix_has_two_active() {
        assert_eq!(Scenario::two_deck_mix().active_decks(), 2);
    }

    #[test]
    fn light_test_is_cheap() {
        let s = Scenario::light_test();
        assert!(s.work.fx_iters < 1000);
        assert!(s.track_secs <= 2.0);
    }
}
