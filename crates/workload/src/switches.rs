//! Deterministic topology-switch scripts: the workload half of the live
//! reconfiguration experiment (E13).
//!
//! A script is a list of cycle-stamped topology actions — deck loads and
//! ejects, FX-slot inserts and removals — that a bench harness replays
//! against a running engine. The generator tracks the shape it has
//! produced so far, so every emitted action is valid when applied in
//! order; and it never touches decks A/B, which keep playing throughout
//! (a DJ's working decks are never the ones being swapped).

use djstar_dsp::rng::SmallRng;

/// One topology action, engine-agnostic (the bench harness maps these to
/// the engine's `GraphEdit`s).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchAction {
    /// Load deck `d`.
    LoadDeck(usize),
    /// Eject deck `d`.
    UnloadDeck(usize),
    /// Append an FX slot to deck `d`'s chain.
    InsertFxSlot(usize),
    /// Remove the last FX slot of deck `d`'s chain.
    RemoveFxSlot(usize),
}

/// A topology action scheduled at an engine cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SwitchEvent {
    /// Cycle (0-based) immediately before which the switch is applied.
    pub at_cycle: usize,
    /// What to change.
    pub action: SwitchAction,
}

/// A replayable topology-switch script, sorted by cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchScript {
    events: Vec<SwitchEvent>,
}

impl SwitchScript {
    /// The scheduled switches, in cycle order.
    pub fn events(&self) -> &[SwitchEvent] {
        &self.events
    }

    /// Number of switches in the script.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the script schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Cycle of the last switch (0 when empty).
    pub fn last_cycle(&self) -> usize {
        self.events.last().map(|e| e.at_cycle).unwrap_or(0)
    }
}

/// Bounds the generator keeps FX chains inside (matching the engine's
/// 1..=8 slot range without depending on it).
const MIN_FX: usize = 1;
const MAX_FX: usize = 8;

/// Generate a toggle storm: `switches` valid topology actions, one every
/// `period_cycles` cycles starting at `period_cycles`, produced by a
/// seeded RNG so every run of a given `(switches, period_cycles, seed)`
/// triple replays the identical script.
///
/// Decks A and B (0, 1) are never loaded or ejected — they are the
/// playing decks; the storm churns decks C/D and FX chains on all four
/// decks. Actions are validated against the shape the script itself has
/// built up (starting from the paper default: all decks loaded, four FX
/// slots each), so replaying them in order never produces an invalid
/// edit.
pub fn toggle_storm(switches: usize, period_cycles: usize, seed: u64) -> SwitchScript {
    let mut rng = SmallRng::seed_from_u64(seed);
    let period = period_cycles.max(1);
    let mut loaded = [true; 4];
    let mut fx = [4usize; 4];
    let mut events = Vec::with_capacity(switches);
    for i in 0..switches {
        let at_cycle = (i + 1) * period;
        // Candidate actions valid in the current script-tracked shape.
        let mut candidates: Vec<SwitchAction> = Vec::with_capacity(12);
        for (d, &is_loaded) in loaded.iter().enumerate().skip(2) {
            candidates.push(if is_loaded {
                SwitchAction::UnloadDeck(d)
            } else {
                SwitchAction::LoadDeck(d)
            });
        }
        for d in 0..4 {
            if !loaded[d] {
                continue;
            }
            if fx[d] < MAX_FX {
                candidates.push(SwitchAction::InsertFxSlot(d));
            }
            if fx[d] > MIN_FX {
                candidates.push(SwitchAction::RemoveFxSlot(d));
            }
        }
        let action = candidates[rng.below(candidates.len())];
        match action {
            SwitchAction::LoadDeck(d) => loaded[d] = true,
            SwitchAction::UnloadDeck(d) => loaded[d] = false,
            SwitchAction::InsertFxSlot(d) => fx[d] += 1,
            SwitchAction::RemoveFxSlot(d) => fx[d] -= 1,
        }
        events.push(SwitchEvent { at_cycle, action });
    }
    SwitchScript { events }
}

/// The action that undoes `action` (same deck, opposite direction).
fn inverse(action: SwitchAction) -> SwitchAction {
    match action {
        SwitchAction::LoadDeck(d) => SwitchAction::UnloadDeck(d),
        SwitchAction::UnloadDeck(d) => SwitchAction::LoadDeck(d),
        SwitchAction::InsertFxSlot(d) => SwitchAction::RemoveFxSlot(d),
        SwitchAction::RemoveFxSlot(d) => SwitchAction::InsertFxSlot(d),
    }
}

/// Generate a revisit-biased mode walk: like [`toggle_storm`], but every
/// other step (on average) *undoes* the previous action, so the walk
/// oscillates between a handful of recurring shapes instead of drifting —
/// the workload of a performer flipping between set modes, and the access
/// pattern a per-shape blueprint cache exists for (E19). Same determinism
/// contract and deck A/B protection as [`toggle_storm`].
pub fn shape_walk(switches: usize, period_cycles: usize, seed: u64) -> SwitchScript {
    let mut rng = SmallRng::seed_from_u64(seed);
    let period = period_cycles.max(1);
    let mut loaded = [true; 4];
    let mut fx = [4usize; 4];
    let mut events: Vec<SwitchEvent> = Vec::with_capacity(switches);
    let mut last: Option<SwitchAction> = None;
    for i in 0..switches {
        let at_cycle = (i + 1) * period;
        // Half the time, revisit the shape we just left.
        let revisit = last.map(inverse).filter(|_| rng.below(2) == 0);
        let action = match revisit {
            Some(back) => back,
            None => {
                let mut candidates: Vec<SwitchAction> = Vec::with_capacity(12);
                for (d, &is_loaded) in loaded.iter().enumerate().skip(2) {
                    candidates.push(if is_loaded {
                        SwitchAction::UnloadDeck(d)
                    } else {
                        SwitchAction::LoadDeck(d)
                    });
                }
                for d in 0..4 {
                    if !loaded[d] {
                        continue;
                    }
                    if fx[d] < MAX_FX {
                        candidates.push(SwitchAction::InsertFxSlot(d));
                    }
                    if fx[d] > MIN_FX {
                        candidates.push(SwitchAction::RemoveFxSlot(d));
                    }
                }
                candidates[rng.below(candidates.len())]
            }
        };
        match action {
            SwitchAction::LoadDeck(d) => loaded[d] = true,
            SwitchAction::UnloadDeck(d) => loaded[d] = false,
            SwitchAction::InsertFxSlot(d) => fx[d] += 1,
            SwitchAction::RemoveFxSlot(d) => fx[d] -= 1,
        }
        last = Some(action);
        events.push(SwitchEvent { at_cycle, action });
    }
    SwitchScript { events }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_is_deterministic() {
        assert_eq!(toggle_storm(100, 10, 7), toggle_storm(100, 10, 7));
        assert_ne!(
            toggle_storm(100, 10, 7).events(),
            toggle_storm(100, 10, 8).events()
        );
    }

    #[test]
    fn storm_actions_are_always_valid_in_order() {
        let script = toggle_storm(500, 5, 42);
        assert_eq!(script.len(), 500);
        let mut loaded = [true; 4];
        let mut fx = [4usize; 4];
        let mut last_cycle = 0;
        for e in script.events() {
            assert!(e.at_cycle > last_cycle, "switches must be spaced out");
            last_cycle = e.at_cycle;
            match e.action {
                SwitchAction::LoadDeck(d) => {
                    assert!(d >= 2, "storm must not touch playing decks");
                    assert!(!loaded[d]);
                    loaded[d] = true;
                }
                SwitchAction::UnloadDeck(d) => {
                    assert!(d >= 2, "storm must not touch playing decks");
                    assert!(loaded[d]);
                    loaded[d] = false;
                }
                SwitchAction::InsertFxSlot(d) => {
                    assert!(loaded[d] && fx[d] < MAX_FX);
                    fx[d] += 1;
                }
                SwitchAction::RemoveFxSlot(d) => {
                    assert!(loaded[d] && fx[d] > MIN_FX);
                    fx[d] -= 1;
                }
            }
        }
        assert_eq!(script.last_cycle(), 2500);
    }

    #[test]
    fn shape_walk_is_deterministic_valid_and_revisits() {
        assert_eq!(shape_walk(200, 5, 9), shape_walk(200, 5, 9));
        assert_ne!(
            shape_walk(200, 5, 9).events(),
            shape_walk(200, 5, 10).events()
        );
        let script = shape_walk(300, 5, 42);
        let mut loaded = [true; 4];
        let mut fx = [4usize; 4];
        // Shapes as (loaded, fx) snapshots after each step; revisits are
        // steps landing on a shape seen before.
        let mut seen: Vec<([bool; 4], [usize; 4])> = vec![(loaded, fx)];
        let mut revisits = 0usize;
        for e in script.events() {
            match e.action {
                SwitchAction::LoadDeck(d) => {
                    assert!(d >= 2 && !loaded[d]);
                    loaded[d] = true;
                }
                SwitchAction::UnloadDeck(d) => {
                    assert!(d >= 2 && loaded[d]);
                    loaded[d] = false;
                }
                SwitchAction::InsertFxSlot(d) => {
                    assert!(loaded[d] && fx[d] < MAX_FX);
                    fx[d] += 1;
                }
                SwitchAction::RemoveFxSlot(d) => {
                    assert!(loaded[d] && fx[d] > MIN_FX);
                    fx[d] -= 1;
                }
            }
            if seen.contains(&(loaded, fx)) {
                revisits += 1;
            } else {
                seen.push((loaded, fx));
            }
        }
        // The undo bias makes revisits the norm, not the exception.
        assert!(
            revisits >= script.len() / 3,
            "only {revisits}/{} steps revisited a known shape",
            script.len()
        );
    }

    #[test]
    fn storm_exercises_every_action_kind() {
        let script = toggle_storm(200, 3, 1);
        let mut kinds = [false; 4];
        for e in script.events() {
            match e.action {
                SwitchAction::LoadDeck(_) => kinds[0] = true,
                SwitchAction::UnloadDeck(_) => kinds[1] = true,
                SwitchAction::InsertFxSlot(_) => kinds[2] = true,
                SwitchAction::RemoveFxSlot(_) => kinds[3] = true,
            }
        }
        assert_eq!(kinds, [true; 4], "a 200-switch storm must mix all kinds");
    }
}
