//! Synthetic club-track generation.
//!
//! Tracks are mono PCM at 44.1 kHz, assembled from a kick drum (exponentially
//! decaying sine), off-beat hats (filtered noise bursts), a sawtooth bass
//! line and a sine lead. The arrangement alternates every four bars between
//! *loud* (all layers) and *quiet* (bass + lead at reduced level) sections:
//! this is the engine of the bimodal node-cost distribution (Fig. 9),
//! because the effect nodes' data-dependent cost follows signal energy.

use djstar_dsp::rng::SmallRng;

/// Stylistic presets for the synthesizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackStyle {
    /// Four-on-the-floor with heavy kick and bass.
    House,
    /// Sparser kick pattern, more noise/hats.
    Breakbeat,
    /// Sustained pads, little percussion (lowest energy variance).
    Ambient,
}

/// A mono PCM track.
#[derive(Debug, Clone)]
pub struct Track {
    samples: Vec<f32>,
    sample_rate: u32,
    bpm: f32,
}

impl Track {
    /// The PCM samples.
    pub fn samples(&self) -> &[f32] {
        &self.samples
    }

    /// Sample rate in Hz.
    pub fn sample_rate(&self) -> u32 {
        self.sample_rate
    }

    /// Tempo in beats per minute.
    pub fn bpm(&self) -> f32 {
        self.bpm
    }

    /// Track length in seconds.
    pub fn duration_secs(&self) -> f32 {
        self.samples.len() as f32 / self.sample_rate as f32
    }

    /// RMS level of the sample window `[start, start+len)` (silence outside).
    pub fn window_rms(&self, start: usize, len: usize) -> f32 {
        if len == 0 {
            return 0.0;
        }
        let sum: f32 = (start..start + len)
            .map(|i| self.samples.get(i).copied().unwrap_or(0.0).powi(2))
            .sum();
        (sum / len as f32).sqrt()
    }
}

/// Synthesize a deterministic track.
///
/// `seed` selects note material; `bpm` the tempo; `seconds` the length.
pub fn synth_track(seed: u64, bpm: f32, seconds: f32, style: TrackStyle) -> Track {
    let sr = 44_100u32;
    let n = (seconds * sr as f32) as usize;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut samples = vec![0.0f32; n];

    let beat_len = (60.0 / bpm * sr as f32) as usize;
    let bar_len = beat_len * 4;
    // Minor-pentatonic-ish root offsets for the bass line.
    let scale = [0, 3, 5, 7, 10];
    let root_hz = 55.0 * 2f32.powf(rng.below(5) as f32 / 12.0);
    let bass_notes: Vec<f32> = (0..8)
        .map(|_| root_hz * 2f32.powf(scale[rng.below(scale.len())] as f32 / 12.0))
        .collect();
    let lead_notes: Vec<f32> = (0..16)
        .map(|_| root_hz * 4.0 * 2f32.powf(scale[rng.below(scale.len())] as f32 / 12.0))
        .collect();

    let (kick_every, hat_level, pad_level) = match style {
        TrackStyle::House => (1, 0.25, 0.0),
        TrackStyle::Breakbeat => (2, 0.4, 0.0),
        TrackStyle::Ambient => (4, 0.05, 0.3),
    };

    let mut noise_state = seed as u32 | 1;
    let mut noise = move || {
        noise_state ^= noise_state << 13;
        noise_state ^= noise_state >> 17;
        noise_state ^= noise_state << 5;
        (noise_state as f32 / u32::MAX as f32) * 2.0 - 1.0
    };

    for (i, out) in samples.iter_mut().enumerate() {
        let t = i as f32 / sr as f32;
        let bar = i / bar_len;
        let in_bar = i % bar_len;
        let beat = in_bar / beat_len;
        let in_beat = in_bar % beat_len;
        // Loud / quiet alternation every 4 bars.
        let loud = (bar / 4).is_multiple_of(2);
        let section_gain = if loud { 1.0 } else { 0.35 };

        let mut s = 0.0f32;
        // Kick: 55 Hz decaying sine with a downward pitch sweep.
        if beat.is_multiple_of(kick_every) && loud {
            let tt = in_beat as f32 / sr as f32;
            let pitch = 55.0 + 140.0 * (-tt * 40.0).exp();
            s += 0.9 * (-tt * 18.0).exp() * (core::f32::consts::TAU * pitch * tt).sin();
        }
        // Hat: noise burst on the off-beat.
        let off = in_bar + beat_len / 2;
        let hat_pos = off % beat_len;
        if hat_pos < beat_len / 8 && loud {
            let tt = hat_pos as f32 / sr as f32;
            s += hat_level * (-tt * 200.0).exp() * noise();
        }
        // Bass: saw following the note sequence, eighth notes.
        let eighth = (in_bar * 8 / bar_len + bar * 8) % bass_notes.len();
        let f_bass = bass_notes[eighth];
        let saw = 2.0 * ((t * f_bass).fract()) - 1.0;
        s += 0.35 * section_gain * saw;
        // Lead: sine arpeggio, sixteenth notes.
        let sixteenth = (in_bar * 16 / bar_len + bar * 16) % lead_notes.len();
        s += 0.18 * section_gain * (core::f32::consts::TAU * lead_notes[sixteenth] * t).sin();
        // Ambient pad.
        if pad_level > 0.0 {
            s += pad_level * (core::f32::consts::TAU * root_hz * 2.0 * t).sin() * 0.5;
        }
        *out = (s * 0.8).clamp(-1.0, 1.0);
    }
    Track {
        samples,
        sample_rate: sr,
        bpm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = synth_track(7, 128.0, 2.0, TrackStyle::House);
        let b = synth_track(7, 128.0, 2.0, TrackStyle::House);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    fn different_seeds_differ() {
        let a = synth_track(1, 128.0, 1.0, TrackStyle::House);
        let b = synth_track(2, 128.0, 1.0, TrackStyle::House);
        assert_ne!(a.samples(), b.samples());
    }

    #[test]
    fn length_and_bounds() {
        let t = synth_track(3, 120.0, 1.5, TrackStyle::Breakbeat);
        assert_eq!(t.samples().len(), (1.5 * 44_100.0) as usize);
        assert!((t.duration_secs() - 1.5).abs() < 1e-3);
        assert!(t.samples().iter().all(|s| s.abs() <= 1.0 && s.is_finite()));
    }

    #[test]
    fn loud_and_quiet_sections_alternate() {
        // 128 bpm, bar = 60/128*4 s ≈ 1.875 s; sections switch every 4 bars
        // = 7.5 s. Synthesize 16 s and compare the first section's RMS with
        // the second's.
        let t = synth_track(5, 128.0, 16.0, TrackStyle::House);
        let sr = t.sample_rate() as usize;
        let loud_rms = t.window_rms(sr, sr); // second 1-2 (loud section)
        let quiet_rms = t.window_rms(8 * sr, sr); // second 8-9 (quiet section)
        assert!(
            loud_rms > quiet_rms * 1.5,
            "loud {loud_rms} vs quiet {quiet_rms}"
        );
    }

    #[test]
    fn house_is_louder_than_ambient() {
        let h = synth_track(9, 125.0, 4.0, TrackStyle::House);
        let a = synth_track(9, 125.0, 4.0, TrackStyle::Ambient);
        assert!(h.window_rms(0, h.samples().len()) > a.window_rms(0, a.samples().len()));
    }

    #[test]
    fn window_rms_out_of_range_is_silent() {
        let t = synth_track(1, 120.0, 0.5, TrackStyle::House);
        assert_eq!(t.window_rms(10_000_000, 128), 0.0);
        assert_eq!(t.window_rms(0, 0), 0.0);
    }
}
