//! Deadline headroom across buffer sizes — the latency/robustness trade-off
//! §III-A describes: "As disk jockeys often change effects or mixer
//! parameters during their live performances, low latency is a key factor.
//! This results in rather small buffer sizes. At the same time timing
//! constraints are tightened."
//!
//! For buffer sizes 64/128/256/512 the example reports the sound-card
//! deadline, the measured mean APC and the headroom left — an extension
//! experiment beyond the paper's fixed 128-sample configuration.
//!
//! ```sh
//! cargo run --release --example deadline_headroom
//! ```

use djstar_core::exec::Strategy;
use djstar_engine::apc::AudioEngine;
use djstar_engine::soundcard::SoundCardSim;
use djstar_workload::scenario::Scenario;

fn main() {
    println!("buffer-size sweep (busy-waiting, 300 cycles each)\n");
    println!("| buffer | deadline ms | mean APC ms | headroom ms | underruns |");
    println!("|---|---|---|---|---|");
    // Note: the graph's node *work* is independent of the buffer size in
    // this cost model (the burn kernel dominates the 128-sample DSP), so
    // the sweep isolates how the deadline scales while the compute stays
    // constant — exactly the squeeze §III-A describes for small buffers.
    for frames in [64usize, 128, 256, 512] {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get().min(4))
            .unwrap_or(1);
        let mut engine = AudioEngine::new(Scenario::paper_default(), Strategy::Busy, threads);
        let mut card = SoundCardSim::new(djstar_dsp::BUFFER_FRAMES, djstar_dsp::SAMPLE_RATE);
        // The engine always renders 128-frame packets; a smaller/larger
        // hardware buffer changes the *deadline*, which we model directly.
        let deadline_ns = frames as u64 * 1_000_000_000 / djstar_dsp::SAMPLE_RATE as u64;
        engine.warmup(30);
        let mut misses = 0u64;
        let mut total_ns = 0u128;
        const CYCLES: usize = 300;
        for _ in 0..CYCLES {
            let t = engine.run_apc();
            let apc_ns = t.total().as_nanos() as u64;
            total_ns += apc_ns as u128;
            if apc_ns > deadline_ns {
                misses += 1;
            }
            card.submit(&engine.output(), apc_ns);
        }
        let mean_ms = total_ns as f64 / CYCLES as f64 / 1e6;
        println!(
            "| {frames} | {:.3} | {mean_ms:.3} | {:.3} | {misses} |",
            deadline_ns as f64 / 1e6,
            deadline_ns as f64 / 1e6 - mean_ms,
        );
    }
    println!("\nAt 64 samples the 1.45 ms budget leaves no room for the ~1.9 ms APC:");
    println!("every cycle glitches, which is why DJ Star ships with 128 as the default.");
}
