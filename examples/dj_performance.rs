//! A scripted DJ performance: two decks beat-matched and crossfaded while
//! the engine keeps real-time deadlines — the end-to-end scenario the
//! paper's introduction motivates.
//!
//! The script: deck A plays alone, deck B is cued in the headphones, then
//! the DJ rides the crossfader from A to B over four seconds while pulling
//! A's fader down, and finishes on B. Deadline accounting runs throughout.
//!
//! ```sh
//! cargo run --release --example dj_performance
//! ```

use djstar_core::exec::Strategy;
use djstar_engine::apc::AudioEngine;
use djstar_engine::soundcard::SoundCardSim;
use djstar_workload::scenario::Scenario;

/// Cycles per second at the 128-frame buffer (≈ 344).
const CPS: usize = 344;

type Tick = Box<dyn FnMut(&mut AudioEngine, f32)>;

fn main() {
    let scenario = Scenario::paper_default();
    // Thread count adapted to the host: the paper uses 4 (on 8 cores), but
    // busy-waiting workers time-slicing on fewer physical cores would only
    // fight each other.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let mut engine = AudioEngine::new(scenario, Strategy::Busy, threads);
    let mut card = SoundCardSim::paper_default();
    engine.warmup(30);

    println!("DJ performance script (busy-waiting, {threads} threads)\n");
    let run = |engine: &mut AudioEngine,
               card: &mut SoundCardSim,
               label: &str,
               seconds: f64,
               mut tick: Tick| {
        let cycles = (seconds * CPS as f64) as usize;
        let mut peak = 0.0f32;
        let mut rms_acc = 0.0f64;
        for c in 0..cycles {
            let progress = c as f32 / cycles.max(1) as f32;
            tick(engine, progress);
            let t = engine.run_apc();
            let out = engine.output();
            card.submit(&out, t.total().as_nanos() as u64);
            peak = peak.max(out.peak());
            rms_acc += out.rms() as f64;
        }
        println!(
            "{label:<34} {seconds:>4.1} s  mean rms {:.3}  peak {:.3}",
            rms_acc / cycles.max(1) as f64,
            peak
        );
    };

    // 1. Deck A solo: crossfader hard on A.
    run(
        &mut engine,
        &mut card,
        "deck A solo",
        3.0,
        Box::new(|e, _| e.set_crossfader(0.0)),
    );

    // 2. The transition: crossfader sweeps 0 → 1, deck A fader eases out.
    run(
        &mut engine,
        &mut card,
        "transition A -> B (crossfade)",
        4.0,
        Box::new(|e, p| {
            e.set_crossfader(p);
            e.set_deck_gain(0, 0.8 * (1.0 - 0.5 * p));
        }),
    );

    // 3. Deck B alone.
    run(
        &mut engine,
        &mut card,
        "deck B solo",
        3.0,
        Box::new(|e, _| {
            e.set_crossfader(1.0);
            e.set_deck_gain(0, 0.0);
        }),
    );

    println!(
        "\n{} packets delivered, {} underruns ({:.3} % miss rate), worst APC {:.2} ms (deadline {:.2} ms)",
        card.packets(),
        card.underruns(),
        card.tracker().miss_rate() * 100.0,
        card.tracker().worst_ns() as f64 / 1e6,
        card.deadline_ns() as f64 / 1e6,
    );
    assert!(card.rejected() == 0, "engine produced malformed packets");
}
