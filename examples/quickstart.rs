//! Quickstart: build the DJ Star engine, run audio cycles with the
//! busy-waiting scheduler, and inspect timings and output.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use djstar_core::exec::Strategy;
use djstar_engine::apc::AudioEngine;
use djstar_engine::soundcard::SoundCardSim;
use djstar_workload::scenario::Scenario;

fn main() {
    // A four-deck performance scenario with all effects engaged (the
    // paper's evaluation configuration).
    let scenario = Scenario::paper_default();

    // The engine with the paper's winning strategy.
    // Thread count adapted to the host: the paper uses 4 (on 8 cores), but
    // busy-waiting workers time-slicing on fewer physical cores would only
    // fight each other.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let mut engine = AudioEngine::new(scenario, Strategy::Busy, threads);
    let mut card = SoundCardSim::paper_default();

    println!("DJ Star reproduction — quickstart");
    println!(
        "graph: {} nodes, {} sources, critical path {} nodes",
        engine.executor_mut().topology().len(),
        engine.executor_mut().topology().sources().len(),
        engine.executor_mut().topology().critical_path_len(),
    );
    println!(
        "strategy: {:?} on {} threads; sound-card deadline {:.2} ms\n",
        engine.strategy(),
        engine.threads(),
        card.deadline_ns() as f64 / 1e6
    );

    // Let the time-stretcher pipelines fill.
    engine.warmup(30);

    // Run 500 audio processing cycles and hand each packet to the card.
    for _ in 0..500 {
        let timing = engine.run_apc();
        let packet = engine.output();
        card.submit(&packet, timing.total().as_nanos() as u64);
    }

    let timing = engine.run_apc();
    println!("one APC breakdown:");
    println!("  timecode (TP)      : {:>6} us", timing.tp.as_micros());
    println!("  preprocessing (GP) : {:>6} us", timing.gp.as_micros());
    println!("  task graph         : {:>6} us", timing.graph.as_micros());
    println!("  various calc (VC)  : {:>6} us", timing.vc.as_micros());
    println!(
        "  total              : {:>6} us\n",
        timing.total().as_micros()
    );

    let out = engine.output();
    println!(
        "output packet: rms {:.3}, peak {:.3}",
        out.rms(),
        out.peak()
    );
    println!(
        "sound card: {} packets, {} underruns, max peak {:.3}",
        card.packets(),
        card.underruns(),
        card.max_peak()
    );
    if card.underruns() > 0 {
        println!(
            "note: underruns on a loaded, non-real-time host are the paper's \
             §VI observation — 'there is nothing we can do about it' short of \
             a real-time OS."
        );
    }
}
