//! Record a short DJ set to a WAV file through the RecordBuffer path of
//! the graph (Fig. 3: "RecordBuffer — Limiter, Clip"), then decode it back
//! and report its levels — the full disk-recording loop of DJ Star.
//!
//! ```sh
//! cargo run --release --example record_set
//! ```

use djstar_core::exec::Strategy;
use djstar_dsp::wav::{append_buffer, read_wav, write_wav};
use djstar_dsp::AudioBuf;
use djstar_engine::apc::AudioEngine;
use djstar_workload::scenario::Scenario;

fn main() -> std::io::Result<()> {
    // Thread count adapted to the host: the paper uses 4 (on 8 cores), but
    // busy-waiting workers time-slicing on fewer physical cores would only
    // fight each other.
    let threads = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let mut engine = AudioEngine::new(Scenario::paper_default(), Strategy::Busy, threads);
    engine.warmup(30);

    // Record ~6 seconds (344 cycles/s) with a crossfade in the middle.
    const SECONDS: f32 = 6.0;
    let cycles = (SECONDS * 344.5) as usize;
    let mut pcm: Vec<f32> = Vec::with_capacity(cycles * 256);
    let mut rec_buf = AudioBuf::stereo_default();
    let record_node = engine.node_map().record;

    println!("recording {SECONDS} s of the record bus ...");
    for c in 0..cycles {
        engine.set_crossfader(c as f32 / cycles as f32);
        engine.run_apc();
        engine.executor_mut().read_output(record_node, &mut rec_buf);
        append_buffer(&mut pcm, &rec_buf);
    }

    let path = std::env::temp_dir().join("djstar_record_set.wav");
    let file = std::fs::File::create(&path)?;
    write_wav(
        std::io::BufWriter::new(file),
        &pcm,
        2,
        djstar_dsp::SAMPLE_RATE,
    )?;
    println!("wrote {}", path.display());

    // Decode it back and verify the recording survived the trip.
    let decoded = read_wav(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    assert_eq!(decoded.channels, 2);
    assert_eq!(decoded.sample_rate, djstar_dsp::SAMPLE_RATE);
    assert_eq!(decoded.frames(), cycles * djstar_dsp::BUFFER_FRAMES);
    let rms =
        (decoded.samples.iter().map(|s| s * s).sum::<f32>() / decoded.samples.len() as f32).sqrt();
    let peak = decoded.samples.iter().fold(0.0f32, |m, s| m.max(s.abs()));
    println!(
        "decoded: {} frames, rms {rms:.3}, peak {peak:.3} (record limiter ceiling 0.95)",
        decoded.frames()
    );
    assert!(peak <= 0.96, "record limiter violated");
    assert!(rms > 0.01, "silent recording");
    Ok(())
}
