//! Schedule explorer: inspect the 67-node graph and compare how each
//! scheduling strategy lays it out across threads.
//!
//! ```sh
//! cargo run --release --example schedule_explorer -- [threads] [--dot]
//! ```
//!
//! With `--dot` the graph is printed in Graphviz format instead.

use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::graphbuild::build_djstar_graph;
use djstar_sim::earliest::earliest_start;
use djstar_sim::gantt::render_schedule;
use djstar_sim::list::list_schedule;
use djstar_sim::model::{DurationModel, SimGraph};
use djstar_sim::strategy::{simulate_strategy, OverheadModel, SimStrategy};
use djstar_workload::scenario::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads: usize = args
        .iter()
        .filter_map(|a| a.parse().ok())
        .find(|&t: &usize| (1..=16).contains(&t))
        .unwrap_or(4);

    if args.iter().any(|a| a == "--dot") {
        let (graph, _) = build_djstar_graph(&Scenario::paper_default());
        println!("{}", graph.topology().to_dot());
        return;
    }

    eprintln!("measuring node durations (400 cycles) ...");
    let mut engine = AudioEngine::with_aux(
        Scenario::paper_default(),
        Strategy::Sequential,
        1,
        AuxWork::light(),
    );
    engine.warmup(30);
    let samples = engine.measured_node_durations(400);
    let graph = SimGraph::from_topology(engine.executor_mut().topology());
    let durations = DurationModel::Empirical(samples).means(graph.len());
    let overheads = OverheadModel::default_host();

    println!("## DJ Star graph\n");
    println!("{} nodes, {} sources", graph.len(), graph.sources().len());
    let inf = earliest_start(&graph, &durations, 0);
    println!(
        "critical path: {:.1} us through {}",
        inf.makespan_ns as f64 / 1e3,
        inf.critical_path
            .iter()
            .map(|&n| graph.name(n))
            .collect::<Vec<_>>()
            .join(" -> ")
    );
    println!("max concurrency: {}\n", inf.max_concurrency);

    println!("## List schedule ({threads} cores)\n");
    let ls = list_schedule(&graph, &durations, 0, threads as u32);
    println!("makespan {:.1} us", ls.makespan_ns() as f64 / 1e3);
    println!("{}", render_schedule(&ls, 100));

    for strat in SimStrategy::ALL {
        let s = simulate_strategy(&graph, &durations, 0, threads, strat, &overheads);
        println!(
            "## {} ({} threads) — makespan {:.1} us\n",
            strat.label(),
            threads,
            s.makespan_ns() as f64 / 1e3
        );
        println!("{}", render_schedule(&s, 100));
    }
}
