#!/bin/sh
# Regenerate every table and figure of the paper (DESIGN.md §4).
# Results land in results/<binary>.txt; telemetry-enabled runs additionally
# leave results/telemetry_*.jsonl, telemetry_report writes the
# aggregated BENCH_telemetry.json baseline at the repo root, and
# fig4_plan_executor writes the BENCH_plan.json comparison. Takes a few
# minutes at full scale; override DJSTAR_CYCLES / DJSTAR_MEASURE_CYCLES /
# DJSTAR_TELEMETRY_CYCLES to trade fidelity for time.
#
# Usage: ./run_experiments.sh [--check]
#   --check   run the lint/test gate (scripts/check.sh) first
set -e
if [ "${1:-}" = "--check" ]; then
  sh scripts/check.sh
fi
cargo build --release -p djstar-bench --bins
for bin in hotspot_analysis fig4_optimal_schedule fig4_plan_executor \
           table1_response_times fig9_histograms fig11_schedules \
           fig12_busy_sim deadline_misses thread_scaling ablations \
           telemetry_report; do
  echo "=== $bin ==="
  ./target/release/$bin | tee results/$bin.txt
done
