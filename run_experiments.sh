#!/bin/sh
# Regenerate every table and figure of the paper (DESIGN.md §4).
# Results land in results/<binary>.txt. Takes a few minutes at full scale;
# override DJSTAR_CYCLES / DJSTAR_MEASURE_CYCLES to trade fidelity for time.
set -e
cargo build --release -p djstar-bench --bins
for bin in hotspot_analysis fig4_optimal_schedule table1_response_times \
           fig9_histograms fig11_schedules fig12_busy_sim deadline_misses \
           thread_scaling ablations; do
  echo "=== $bin ==="
  ./target/release/$bin | tee results/$bin.txt
done
