#!/bin/sh
# Regenerate every table and figure of the paper (DESIGN.md §4).
# Results land in results/<binary>.txt; telemetry-enabled runs additionally
# leave results/telemetry_*.jsonl, telemetry_report writes the
# aggregated BENCH_telemetry.json baseline at the repo root,
# fig4_plan_executor writes the BENCH_plan.json comparison,
# fig_reconfig writes BENCH_reconfig.json (E13), fig_faults writes
# BENCH_faults.json (E14), fig_dsp_simd writes BENCH_dsp.json (E16),
# fig_net writes BENCH_net.json (E17), and fig_venue writes
# BENCH_venue.json (E18).
# Takes a few minutes at full scale; override DJSTAR_CYCLES /
# DJSTAR_MEASURE_CYCLES / DJSTAR_TELEMETRY_CYCLES /
# DJSTAR_RECONFIG_CYCLES / DJSTAR_FAULT_CYCLES / DJSTAR_DSP_CYCLES /
# DJSTAR_NET_CYCLES / DJSTAR_VENUE_CYCLES to trade fidelity for time.
#
# Usage: ./run_experiments.sh [--check]
#   --check   run the lint/test gate (scripts/check.sh) first
set -eu
if [ "${1:-}" = "--check" ]; then
  sh scripts/check.sh
fi
cargo build --release -p djstar-bench --bins
mkdir -p results
for bin in hotspot_analysis fig4_optimal_schedule fig4_plan_executor \
           table1_response_times fig9_histograms fig11_schedules \
           fig12_busy_sim deadline_misses thread_scaling ablations \
           telemetry_report fig_reconfig fig_faults fig_dsp_simd \
           fig_net fig_venue; do
  if [ ! -x "./target/release/$bin" ]; then
    echo "error: bench binary '$bin' not found or not executable at" \
         "./target/release/$bin — did the release build fail?" >&2
    exit 1
  fi
  echo "=== $bin ==="
  ./target/release/$bin | tee "results/$bin.txt"
done
