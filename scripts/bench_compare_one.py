#!/usr/bin/env python3
"""Compare one BENCH_*.json file against its baseline (bench_compare.sh helper).

Usage: bench_compare_one.py <name> <baseline-path> <candidate-path> <tol-pct>

Extracts the file's key p50 metrics, prints a delta line per metric, and
exits non-zero if any candidate value exceeds baseline * (1 + tol/100).
Metrics present in only one file are skipped with a warning (strategy sets
can differ between reduced and full runs).
"""

import json
import sys


def metrics(name, doc):
    """Yield (metric-label, value) for the file's key p50 numbers."""
    if name == "BENCH_telemetry.json":
        for run in doc.get("runs", []):
            label = f"{run.get('strategy', '?')}@{run.get('threads', '?')}t"
            p50 = run.get("graph_ns", {}).get("p50")
            if p50 is not None:
                yield f"graph_p50[{label}]", float(p50)
    elif name == "BENCH_plan.json":
        p50 = doc.get("real", {}).get("plan_p50_ns")
        if p50 is not None:
            yield "real.plan_p50_ns", float(p50)
    elif name == "BENCH_reconfig.json":
        for s in doc.get("strategies", []):
            label = s.get("strategy", "?")
            for half in ("stage_ns", "commit_ns"):
                p50 = s.get(half, {}).get("p50")
                if p50 is not None:
                    yield f"{half}.p50[{label}]", float(p50)
    elif name == "BENCH_faults.json":
        for s in doc.get("strategies", []):
            label = s.get("strategy", "?")
            p50 = s.get("baseline_p50_ns")
            if p50 is not None:
                yield f"baseline_p50_ns[{label}]", float(p50)
    elif name == "BENCH_dsp.json":
        for s in doc.get("strategies", []):
            label = s.get("strategy", "?")
            p50 = s.get("simd_p50_ns")
            if p50 is not None:
                yield f"simd_p50_ns[{label}]", float(p50)
        for k in doc.get("kernels", []):
            label = k.get("kernel", "?")
            ns = k.get("simd_ns")
            if ns is not None:
                yield f"kernel_simd_ns[{label}]", float(ns)
    elif name == "BENCH_net.json":
        # Dropout counts, not timings: deterministic for a fixed trace
        # seed and cycle count, so any delta is a real behavior change.
        trade = doc.get("trade", {})
        adaptive = trade.get("adaptive_dropouts")
        if adaptive is not None:
            yield "trade.adaptive_dropouts", float(adaptive)
        for run in trade.get("fixed", []):
            depth = run.get("depth", "?")
            drops = run.get("dropouts")
            if drops is not None:
                yield f"fixed_dropouts[d{depth}]", float(drops)
    elif name == "BENCH_modes.json":
        # Warm (cached) stage latency is the metric the blueprint cache
        # exists for; the cold half is tracked by BENCH_reconfig.json.
        for s in doc.get("strategies", []):
            label = s.get("strategy", "?")
            p50 = s.get("warm_stage_ns", {}).get("p50")
            if p50 is not None:
                yield f"warm_stage_ns.p50[{label}]", float(p50)
    elif name == "BENCH_venue.json":
        for s in doc.get("strategies", []):
            label = s.get("strategy", "?")
            p50 = s.get("venue_p50_ns")
            if p50 is not None:
                yield f"venue_p50_ns[{label}]", float(p50)
        for p in doc.get("scaling", []):
            sessions = p.get("sessions", "?")
            p50 = p.get("batch_p50_ns")
            if p50 is not None:
                yield f"batch_p50_ns[{sessions}s]", float(p50)


def main():
    name, base_path, cand_path, tol_pct = sys.argv[1:5]
    tol = float(tol_pct)
    with open(base_path) as f:
        base = dict(metrics(name, json.load(f)))
    with open(cand_path) as f:
        cand = dict(metrics(name, json.load(f)))
    if not base or not cand:
        print(f"[bench_compare] skip {name}: no key metrics found", file=sys.stderr)
        return 0
    failed = 0
    for key in base:
        if key not in cand:
            print(f"[bench_compare] warn {name} {key}: missing in candidate", file=sys.stderr)
            continue
        b, c = base[key], cand[key]
        delta = (c - b) / b * 100.0 if b else 0.0
        verdict = "ok"
        if delta > tol:
            verdict = "REGRESSED"
            failed = 1
        print(
            f"[bench_compare] {name} {key}: {b:.0f} -> {c:.0f} ns "
            f"({delta:+.1f}%, tol {tol:.0f}%) {verdict}"
        )
    for key in cand:
        if key not in base:
            print(f"[bench_compare] warn {name} {key}: missing in baseline", file=sys.stderr)
    return failed


if __name__ == "__main__":
    sys.exit(main())
