#!/bin/sh
# Lint and test gate: formatting, clippy with warnings as errors, tests.
# Run standalone or via `./run_experiments.sh --check`.
set -e
echo "== cargo fmt --check =="
cargo fmt --all -- --check
echo "== cargo clippy (warnings are errors) =="
cargo clippy --workspace --all-targets -- -D warnings
echo "== cargo test =="
cargo test -q
echo "check.sh: all gates passed"
