//! Property test for miss forensics: across every strategy and a span of
//! thread counts, every dossier produced from a recorded window must
//! (a) blame-decompose exactly to the measured cycle overrun and
//! (b) tile the cycle's `[start, end]` interval with contiguous slices.
//!
//! A budget far below any real cycle time flags *every* stamped cycle as
//! a miss, so the invariants are checked across the whole run, not just
//! the pathological tail — and a storm fault plan keeps Fault spans,
//! stall burns and degenerate waits in the mix.

use djstar_core::exec::Strategy;
use djstar_core::flight::FlightConfig;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_stats::{analyze_miss, MissContext};
use djstar_workload::faults::FaultSpec;
use djstar_workload::scenario::Scenario;

#[test]
fn blame_sums_to_overrun_across_strategies_and_threads() {
    const CYCLES: usize = 24;
    // Far below any real cycle time, so every stamp is an overrun.
    const BUDGET_NS: u64 = 1_000;
    let mut dossiers = 0u64;
    for strategy in Strategy::ALL {
        let thread_counts: &[usize] = if strategy == Strategy::Sequential {
            &[1]
        } else {
            &[1, 2, 4, 8]
        };
        for &t in thread_counts {
            let mut engine =
                AudioEngine::with_aux(Scenario::light_test(), strategy, t, AuxWork::light());
            engine.set_faults(Some(&FaultSpec::storm(0xE15).with_iters(50, 50, 25)));
            engine.warmup(4);
            engine.set_flight_recorder(Some(FlightConfig {
                spans_per_worker: 8192,
                cycles: 64,
                session: 0,
            }));
            for _ in 0..CYCLES {
                engine.run_apc();
            }
            let window = engine
                .take_flight_window()
                .expect("recorder armed before the measured cycles");
            let label = strategy.label();
            assert!(!window.is_empty(), "{label}@{t}: empty window");
            assert_eq!(window.cycles.len(), CYCLES, "{label}@{t}: missing stamps");
            for stamp in &window.cycles {
                assert!(
                    stamp.duration_ns() > BUDGET_NS,
                    "{label}@{t}: a real cycle ran under {BUDGET_NS} ns?"
                );
                let ctx = MissContext::default();
                let d = analyze_miss(&window, stamp.cycle, BUDGET_NS, label, t, ctx)
                    .expect("stamped miss must produce a dossier");
                assert_eq!(
                    d.overrun_ns,
                    stamp.duration_ns() - BUDGET_NS,
                    "{label}@{t} cycle {}: overrun mismatch",
                    stamp.cycle
                );
                assert_eq!(
                    d.blame.total(),
                    d.overrun_ns,
                    "{label}@{t} cycle {}: blame does not sum to the overrun",
                    stamp.cycle
                );
                // The realized path tiles [start, end] with no gap or
                // overlap — slices touch and cover the whole envelope.
                let first = d.path.first().expect("non-empty path");
                let last = d.path.last().expect("non-empty path");
                assert_eq!(first.start_ns, stamp.start_ns, "{label}@{t}");
                assert_eq!(last.end_ns, stamp.end_ns, "{label}@{t}");
                for pair in d.path.windows(2) {
                    assert_eq!(
                        pair[0].end_ns, pair[1].start_ns,
                        "{label}@{t} cycle {}: path not contiguous",
                        stamp.cycle
                    );
                }
                dossiers += 1;
            }
        }
    }
    assert!(dossiers > 0, "no dossiers were ever produced");
}
