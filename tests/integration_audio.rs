//! Audio-path integration: WAV recording round trip, vinyl scratching,
//! loops, sync and the event middleware driving a full engine.

use djstar_core::exec::Strategy;
use djstar_dsp::wav::{append_buffer, read_wav, write_wav};
use djstar_dsp::AudioBuf;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::deck::{PlayMode, TrackPlayer};
use djstar_engine::events::{ControlEvent, EventQueue};
use djstar_engine::sync::SyncController;
use djstar_workload::scenario::Scenario;
use djstar_workload::track::{synth_track, TrackStyle};

fn light_engine() -> AudioEngine {
    AudioEngine::with_aux(Scenario::light_test(), Strategy::Busy, 2, AuxWork::light())
}

#[test]
fn record_bus_round_trips_through_wav() {
    let mut engine = light_engine();
    engine.warmup(30);
    let record_node = engine.node_map().record;
    let mut pcm = Vec::new();
    let mut buf = AudioBuf::stereo_default();
    for _ in 0..100 {
        engine.run_apc();
        engine.executor_mut().read_output(record_node, &mut buf);
        append_buffer(&mut pcm, &buf);
    }
    let mut bytes = Vec::new();
    write_wav(&mut bytes, &pcm, 2, djstar_dsp::SAMPLE_RATE).unwrap();
    let decoded = read_wav(&bytes[..]).unwrap();
    assert_eq!(decoded.frames(), 100 * djstar_dsp::BUFFER_FRAMES);
    assert_eq!(decoded.sample_rate, djstar_dsp::SAMPLE_RATE);
    let peak = decoded.samples.iter().fold(0.0f32, |m, s| m.max(s.abs()));
    assert!(peak <= 0.96, "record limiter ceiling violated: {peak}");
    assert!(peak > 0.001, "silent recording");
}

#[test]
fn scratch_session_produces_finite_audio() {
    // A DJ scratch: forward, hard brake, backspin, release.
    let mut player = TrackPlayer::new(synth_track(9, 128.0, 4.0, TrackStyle::House));
    let mut out = AudioBuf::stereo_default();
    let script: Vec<(f32, usize)> = vec![
        (1.0, 80),  // play
        (0.1, 20),  // brake (vinyl crawl)
        (-2.5, 30), // backspin
        (0.0, 10),  // stopped
        (1.0, 80),  // release
    ];
    for (speed, cycles) in script {
        for _ in 0..cycles {
            player.pull_dvs(speed, &mut out);
            assert!(out.is_finite());
            assert!(out.peak() <= 1.2);
        }
    }
    assert_eq!(player.mode(), PlayMode::Stretch, "released back to stretch");
}

#[test]
fn loop_roll_survives_full_engine_cycles() {
    // Engage a beat loop on a raw player while an engine runs — the loop
    // API is deck-level; verify combined use stays stable.
    let mut engine = light_engine();
    engine.warmup(20);
    let mut player = TrackPlayer::new(synth_track(3, 126.0, 4.0, TrackStyle::Breakbeat));
    let sr = 44_100.0;
    assert!(player.set_loop(sr, sr + 11_025.0)); // quarter-second loop
    player.seek(sr);
    let mut out = AudioBuf::stereo_default();
    for _ in 0..600 {
        engine.run_apc();
        player.pull(1.0, &mut out);
        let pos = player.position();
        assert!(
            pos >= sr - 1.0 && pos < sr + 11_025.0 + 4_096.0,
            "pos {pos}"
        );
    }
}

#[test]
fn sync_two_engine_decks_by_events() {
    // Use the sync controller's advice to steer deck gains/tempo via the
    // event queue; this is a smoke test of the whole control loop.
    let mut engine = light_engine();
    let mut queue = EventQueue::standard();
    let sync = SyncController::standard();
    let _ = sync; // advice computation itself is unit-tested; here we stress
                  // the event plumbing end to end:
    for c in 0..200u64 {
        queue.push(c, ControlEvent::Crossfader((c as f32 / 200.0).min(1.0)));
        if c % 10 == 0 {
            queue.push(c, ControlEvent::DeckEq(1, [-3.0, 0.0, 2.0]));
            queue.push(c, ControlEvent::Nudge(0, 0.02));
        }
        engine.apply_events(&mut queue);
        engine.run_apc();
        assert!(engine.output().is_finite());
    }
    assert_eq!(queue.dropped(), 0);
}

#[test]
fn sp_filterbank_reconstructs_deck_signal() {
    // With all effects disabled, FX1's band sum must carry essentially the
    // full deck spectrum: the channel output should have comparable energy
    // to the raw deck input (LR crossover reconstruction, within EQ and
    // fader effects).
    let mut scenario = Scenario::light_test();
    for d in &mut scenario.decks {
        d.fx_enabled = [false; 4];
        d.eq_db = [0.0; 3];
        d.filter_pos = 0.0;
        d.gain = 1.0;
    }
    let mut engine = AudioEngine::with_aux(scenario, Strategy::Sequential, 1, AuxWork::light());
    engine.warmup(60);
    // Compare deck A's external input RMS with channel A's output RMS over
    // a stretch of cycles.
    let channel = engine.node_map().channel(0).unwrap();
    let mut in_rms = 0.0f64;
    let mut out_rms = 0.0f64;
    let mut ch_buf = AudioBuf::stereo_default();
    for _ in 0..120 {
        engine.run_apc();
        engine.executor_mut().read_output(channel, &mut ch_buf);
        out_rms += ch_buf.rms() as f64;
        // The deck input isn't directly exposed; use SP band sum ≈ input.
        let mut sum = AudioBuf::stereo_default();
        let mut band = AudioBuf::stereo_default();
        let sp_nodes = engine.node_map().deck(0).unwrap().sp;
        for node in sp_nodes {
            engine.executor_mut().read_output(node, &mut band);
            sum.mix_add(&band, 1.0);
        }
        in_rms += sum.rms() as f64;
    }
    let ratio = out_rms / in_rms.max(1e-9);
    assert!(
        (0.5..=2.0).contains(&ratio),
        "channel/bank-energy ratio {ratio}"
    );
}
