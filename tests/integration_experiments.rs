//! Miniature versions of the paper's experiments (light workload, few
//! cycles): the *shape* assertions that the full harness binaries rely on.

use djstar_bench::{build_harness_with, mean_ms, Harness};
use djstar_sim::earliest::earliest_start;
use djstar_sim::list::list_schedule;
use djstar_sim::strategy::{simulate_makespans, SimStrategy};
use djstar_stats::Histogram;
use djstar_workload::scenario::Scenario;
use std::sync::OnceLock;

/// The light harness is expensive enough to share across tests.
fn harness() -> &'static Harness {
    static H: OnceLock<Harness> = OnceLock::new();
    H.get_or_init(|| build_harness_with(Scenario::light_test(), 60, false))
}

#[test]
fn e2_fig4_structure_holds_on_measured_durations() {
    let h = harness();
    let means = h.durations.means(h.graph.len());
    let inf = earliest_start(&h.graph, &means, 0);
    // 33 source nodes run at t=0; with *measured* (unequal) durations a
    // depth-1 node can start while slow sources still run, so the peak may
    // slightly exceed 33 (with uniform durations it is exactly 33 — see
    // integration_simulation).
    assert_eq!(h.graph.sources().len(), 33);
    assert!(
        (33..=36).contains(&inf.max_concurrency),
        "peak concurrency {} out of band",
        inf.max_concurrency
    );
    let four = list_schedule(&h.graph, &means, 0, 4);
    let ratio = four.makespan_ns() as f64 / inf.makespan_ns as f64;
    assert!(
        (1.0..1.6).contains(&ratio),
        "4-core vs unbounded ratio {ratio:.2}"
    );
}

#[test]
fn e3_table1_shape_small_scale() {
    let h = harness();
    let cycles = 50;
    let baseline = mean_ms(&h.sequential_sum_ns());
    for strat in SimStrategy::ALL {
        let m1 = mean_ms(&simulate_makespans(
            &h.graph,
            &h.durations,
            1,
            strat,
            &h.overheads,
            cycles,
        ));
        let m4 = mean_ms(&simulate_makespans(
            &h.graph,
            &h.durations,
            4,
            strat,
            &h.overheads,
            cycles,
        ));
        // One thread tracks the sequential baseline...
        assert!(
            (m1 / baseline - 1.0).abs() < 0.6,
            "{strat:?}: 1-thread {m1:.4} vs baseline {baseline:.4}"
        );
        // ...and four threads are meaningfully faster.
        assert!(
            m4 < m1 * 0.8,
            "{strat:?}: no parallel gain ({m1:.4} -> {m4:.4})"
        );
    }
}

#[test]
fn e4_busy_wins_or_ties_at_four_threads() {
    let h = harness();
    let cycles = 50;
    let mut means = Vec::new();
    for strat in SimStrategy::ALL {
        means.push(mean_ms(&simulate_makespans(
            &h.graph,
            &h.durations,
            4,
            strat,
            &h.overheads,
            cycles,
        )));
    }
    let busy = means[0];
    // The tolerance is host-dependent: the simulation replays *measured*
    // overhead constants, and on hosts where steals come out very cheap
    // (small containers with hot shared caches) WS can edge out BUSY by a
    // few percent. The paper-shape claim is "BUSY is not materially worse
    // than the alternatives at 4 threads", so allow a 10 % band.
    assert!(
        busy <= means[1] * 1.10 && busy <= means[2] * 1.10,
        "BUSY {busy:.4} vs SLEEP {:.4} vs WS {:.4}",
        means[1],
        means[2]
    );
}

#[test]
fn e5_histograms_populate_and_sleep_floor_is_higher() {
    let h = harness();
    let cycles = 60;
    let busy = simulate_makespans(
        &h.graph,
        &h.durations,
        4,
        SimStrategy::Busy,
        &h.overheads,
        cycles,
    );
    let sleep = simulate_makespans(
        &h.graph,
        &h.durations,
        4,
        SimStrategy::Sleep,
        &h.overheads,
        cycles,
    );
    let min_busy = *busy.iter().min().unwrap();
    let min_sleep = *sleep.iter().min().unwrap();
    // The SLEEP floor sits above BUSY's (thread wake-up cost; Fig. 9's
    // "no graph executions below 0.4 ms" observation).
    assert!(
        min_sleep >= min_busy,
        "sleep floor {min_sleep} below busy floor {min_busy}"
    );
    let ms: Vec<f64> = busy.iter().map(|&n| n as f64 / 1e6).collect();
    let lo = ms.iter().cloned().fold(f64::INFINITY, f64::min) * 0.9;
    let hi = ms.iter().cloned().fold(0.0f64, f64::max) * 1.1;
    let mut hist = Histogram::new(lo, hi.max(lo + 1e-6), 20);
    hist.record_all(&ms);
    assert_eq!(hist.total(), cycles as u64);
}

#[test]
fn e10_no_gain_beyond_the_structural_parallelism() {
    let h = harness();
    let cycles = 40;
    let m4 = mean_ms(&simulate_makespans(
        &h.graph,
        &h.durations,
        4,
        SimStrategy::Busy,
        &h.overheads,
        cycles,
    ));
    let m8 = mean_ms(&simulate_makespans(
        &h.graph,
        &h.durations,
        8,
        SimStrategy::Busy,
        &h.overheads,
        cycles,
    ));
    // Eight threads may help marginally or hurt, but never approach a
    // further 2x (the graph has only 4 chains).
    assert!(
        m8 > m4 * 0.75,
        "impossible extra scaling: {m4:.4} -> {m8:.4}"
    );
}

#[test]
fn e8_overheads_increase_simulated_busy_time() {
    let h = harness();
    let zero = djstar_sim::strategy::OverheadModel::zero();
    let ideal = mean_ms(&simulate_makespans(
        &h.graph,
        &h.durations,
        4,
        SimStrategy::Busy,
        &zero,
        30,
    ));
    let real = mean_ms(&simulate_makespans(
        &h.graph,
        &h.durations,
        4,
        SimStrategy::Busy,
        &h.overheads,
        30,
    ));
    assert!(real >= ideal, "overheads cannot speed things up");
}
