//! End-to-end pipeline tests: engine → graph → sound card, across all
//! strategies, on the light workload.

use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::soundcard::{SoundCardSim, SubmitResult};
use djstar_workload::scenario::Scenario;

fn light_engine(strategy: Strategy, threads: usize) -> AudioEngine {
    AudioEngine::with_aux(Scenario::light_test(), strategy, threads, AuxWork::light())
}

#[test]
fn full_pipeline_delivers_valid_packets() {
    for strategy in [
        Strategy::Sequential,
        Strategy::Busy,
        Strategy::Sleep,
        Strategy::Steal,
    ] {
        let threads = if strategy == Strategy::Sequential {
            1
        } else {
            3
        };
        let mut engine = light_engine(strategy, threads);
        let mut card = SoundCardSim::paper_default();
        engine.warmup(20);
        for _ in 0..100 {
            let t = engine.run_apc();
            let out = engine.output();
            let res = card.submit(&out, t.total().as_nanos() as u64);
            assert_ne!(
                res,
                SubmitResult::Rejected,
                "{strategy:?} produced a malformed packet"
            );
        }
        assert_eq!(card.rejected(), 0);
        assert_eq!(card.packets(), 100);
        assert!(card.max_peak() > 0.0, "{strategy:?}: silent output");
    }
}

#[test]
fn all_strategies_bit_identical_over_long_run() {
    // 120 cycles with live control movement: the graph output must stay
    // bit-identical across schedulers (floating-point sums have a fixed
    // order per node regardless of which thread runs it).
    let script = |engine: &mut AudioEngine, c: usize| {
        engine.set_crossfader(c as f32 / 120.0);
        engine.set_deck_gain(1, 0.5 + 0.5 * (c as f32 * 0.1).sin());
    };
    let mut reference = Vec::new();
    {
        let mut engine = light_engine(Strategy::Sequential, 1);
        for c in 0..120 {
            script(&mut engine, c);
            engine.run_apc();
            reference.push(engine.output());
        }
    }
    for strategy in [
        Strategy::Busy,
        Strategy::Sleep,
        Strategy::Steal,
        Strategy::Hybrid,
    ] {
        let mut engine = light_engine(strategy, 4);
        for (c, want) in reference.iter().enumerate() {
            script(&mut engine, c);
            engine.run_apc();
            let got = engine.output();
            assert_eq!(
                want.samples(),
                got.samples(),
                "{strategy:?} diverged at cycle {c}"
            );
        }
    }
}

#[test]
fn two_deck_scenario_runs() {
    let mut scenario = Scenario::two_deck_mix();
    scenario.work = djstar_workload::profile::WorkProfile::light();
    scenario.track_secs = 2.0;
    let mut engine = AudioEngine::with_aux(scenario, Strategy::Busy, 2, AuxWork::light());
    engine.warmup(30);
    let out = engine.output();
    assert!(out.is_finite());
    assert!(out.rms() > 1e-4, "two active decks must produce audio");
}

#[test]
fn deadline_accounting_matches_timings() {
    let mut engine = light_engine(Strategy::Sequential, 1);
    let mut card = SoundCardSim::paper_default();
    engine.warmup(5);
    // Feed artificial timings: alternate on-time and late.
    for i in 0..50 {
        engine.run_apc();
        let out = engine.output();
        let elapsed = if i % 10 == 9 { 5_000_000 } else { 1_000_000 };
        card.submit(&out, elapsed);
    }
    assert_eq!(card.underruns(), 5);
    assert_eq!(card.packets(), 50);
    assert!((card.tracker().miss_rate() - 0.1).abs() < 1e-9);
}

#[test]
fn output_respects_master_limiter_under_hot_settings() {
    let mut scenario = Scenario::light_test();
    for d in &mut scenario.decks {
        d.gain = 3.0; // absurd fader settings
        d.eq_db = [12.0, 12.0, 12.0];
    }
    scenario.master_gain = 2.0;
    let mut engine = AudioEngine::with_aux(scenario, Strategy::Busy, 2, AuxWork::light());
    engine.warmup(100);
    for _ in 0..50 {
        engine.run_apc();
        let out = engine.output();
        assert!(out.peak() <= 1.0 + 1e-4, "output clipped: {}", out.peak());
        assert!(out.is_finite());
    }
}

#[test]
fn engine_survives_extreme_tempo_and_silence() {
    let mut scenario = Scenario::light_test();
    scenario.decks[0].tempo = 3.9;
    scenario.decks[1].tempo = 0.26;
    scenario.decks[2].active = false;
    scenario.decks[3].active = false;
    let mut engine = AudioEngine::with_aux(scenario, Strategy::Steal, 4, AuxWork::light());
    for _ in 0..200 {
        engine.run_apc();
        assert!(engine.output().is_finite());
    }
}
