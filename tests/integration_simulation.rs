//! Simulator ↔ real-graph integration: the §IV structural results must
//! hold on the actual 67-node topology, and the simulated strategies must
//! agree with real traces where physics allows.

use djstar_core::exec::Strategy;
use djstar_engine::apc::{AudioEngine, AuxWork};
use djstar_engine::graphbuild::build_djstar_graph;
use djstar_sim::earliest::earliest_start;
use djstar_sim::list::list_schedule;
use djstar_sim::model::{DurationModel, SimGraph};
use djstar_sim::strategy::{simulate_strategy, OverheadModel, SimStrategy};
use djstar_workload::scenario::Scenario;

fn dj_sim_graph() -> SimGraph {
    let (graph, _) = build_djstar_graph(&Scenario::light_test());
    SimGraph::from_topology(graph.topology())
}

fn uniform(graph: &SimGraph, ns: u64) -> DurationModel {
    DurationModel::Constant(vec![ns; graph.len()])
}

#[test]
fn earliest_start_on_dj_graph_shows_the_paper_structure() {
    let graph = dj_sim_graph();
    let d = uniform(&graph, 10_000);
    let r = earliest_start(&graph, &d, 0);
    // 33 initially concurrent nodes (§IV).
    assert_eq!(r.max_concurrency, 33);
    // Critical path has 10 nodes → 100 us at uniform 10 us.
    assert_eq!(r.makespan_ns, 100_000);
    assert!(r.schedule.is_valid(&graph));
    // Concurrency at time zero is 33 and eventually drops to <= 4.
    let profile = r.schedule.concurrency_profile();
    assert_eq!(profile[0].1, 33);
    assert!(profile.iter().any(|&(_, c)| c <= 4 && c > 0));
}

#[test]
fn four_core_schedule_close_to_unbounded_on_dj_graph() {
    // The paper's §IV observation: 4 cores cost only ~8 % over infinite
    // cores, because structural parallelism is 4 after the source burst.
    let graph = dj_sim_graph();
    // Effect-heavy realistic durations.
    let d = DurationModel::Constant(
        (0..graph.len())
            .map(|n| {
                let name = graph.name(n as u32);
                if name.starts_with("FX") {
                    50_000
                } else if name.starts_with("Channel") {
                    18_000
                } else if name.starts_with("SP") {
                    4_000
                } else {
                    2_000
                }
            })
            .collect(),
    );
    let inf = earliest_start(&graph, &d, 0).makespan_ns;
    let four = list_schedule(&graph, &d, 0, 4).makespan_ns();
    let ratio = four as f64 / inf as f64;
    assert!(
        (1.0..1.25).contains(&ratio),
        "4-core/unbounded ratio {ratio:.3}"
    );
}

#[test]
fn simulated_strategies_valid_on_dj_graph_at_all_thread_counts() {
    let graph = dj_sim_graph();
    let d = DurationModel::Constant(
        (0..graph.len() as u64)
            .map(|i| 1_000 + (i * 977) % 40_000)
            .collect(),
    );
    let oh = OverheadModel::default_host();
    for strat in SimStrategy::ALL {
        for threads in 1..=8 {
            let s = simulate_strategy(&graph, &d, 0, threads, strat, &oh);
            assert!(s.is_valid(&graph), "{strat:?} t={threads}");
            assert!(s.max_concurrency() <= threads as u32);
        }
    }
}

#[test]
fn busy_simulation_tracks_real_sequential_time_at_one_thread() {
    // At one thread BUSY degenerates to sequential execution; the simulated
    // makespan built from measured per-node durations must match the
    // measured sequential cycle within a tight factor.
    let mut engine = AudioEngine::with_aux(
        Scenario::light_test(),
        Strategy::Sequential,
        1,
        AuxWork::light(),
    );
    engine.warmup(20);
    let samples = engine.measured_node_durations(40);
    let graph = SimGraph::from_topology(engine.executor_mut().topology());
    let d = DurationModel::Empirical(samples.clone());
    let sim_1t = simulate_strategy(&graph, &d, 7, 1, SimStrategy::Busy, &OverheadModel::zero())
        .makespan_ns();
    let sample_sum: u64 = samples.iter().map(|s| s[7]).sum();
    assert_eq!(sim_1t, sample_sum, "1-thread BUSY must equal the node sum");
}

#[test]
fn speedup_ordering_on_dj_graph_with_realistic_imbalance() {
    // Heaviest chain ~1.5x the lightest, like the paper's Fig. 11.
    let graph = dj_sim_graph();
    let d = DurationModel::Constant(
        (0..graph.len())
            .map(|n| {
                let name = graph.name(n as u32);
                match name.chars().nth(2) {
                    _ if !name.starts_with("FX") => 3_000,
                    Some('A') => 60_000u64,
                    Some('B') => 45_000,
                    Some('C') => 32_000,
                    _ => 25_000,
                }
            })
            .collect(),
    );
    let oh = OverheadModel::default_host();
    let seq: u64 = (0..graph.len() as u32).map(|n| d.duration(n, 0)).sum();
    for strat in SimStrategy::ALL {
        let m4 = simulate_strategy(&graph, &d, 0, 4, strat, &oh).makespan_ns();
        let speedup = seq as f64 / m4 as f64;
        assert!(
            (1.5..3.8).contains(&speedup),
            "{strat:?}: speedup {speedup:.2} out of plausible band"
        );
    }
    // BUSY beats SLEEP (the paper's headline).
    let busy = simulate_strategy(&graph, &d, 0, 4, SimStrategy::Busy, &oh).makespan_ns();
    let sleep = simulate_strategy(&graph, &d, 0, 4, SimStrategy::Sleep, &oh).makespan_ns();
    assert!(busy <= sleep);
}

#[test]
fn gantt_rendering_of_dj_schedules_is_well_formed() {
    let graph = dj_sim_graph();
    let d = uniform(&graph, 5_000);
    let s = simulate_strategy(
        &graph,
        &d,
        0,
        4,
        SimStrategy::Busy,
        &OverheadModel::default_host(),
    );
    let text = djstar_sim::gantt::render_schedule(&s, 90);
    assert_eq!(text.lines().count(), 5); // 4 threads + axis
    for t in 0..4 {
        assert!(text.contains(&format!("T{t} |")));
    }
    let csv = djstar_sim::gantt::schedule_csv(&s);
    assert_eq!(csv.lines().count(), 68); // header + 67 nodes
}
