//! Scheduler correctness on the real 67-node DJ Star graph: exactly-once
//! execution, dependency safety, queue-order properties, stress cycles.

use djstar_core::exec::{
    BusyExecutor, GraphExecutor, HybridExecutor, PlannedExecutor, ScheduleBlueprint,
    SequentialExecutor, SleepExecutor, StealExecutor,
};
use djstar_core::faults::FaultPlan;
use djstar_core::graph::{NodeId, Priority};
use djstar_core::trace::TraceKind;
use djstar_dsp::AudioBuf;
use djstar_engine::graphbuild::build_djstar_graph;
use djstar_workload::scenario::Scenario;

fn executors(threads: usize) -> Vec<Box<dyn GraphExecutor>> {
    let frames = djstar_dsp::BUFFER_FRAMES;
    let mk = || build_djstar_graph(&Scenario::light_test()).0;
    vec![
        Box::new(SequentialExecutor::new(mk(), frames)),
        Box::new(BusyExecutor::new(mk(), threads, frames)),
        Box::new(SleepExecutor::new(mk(), threads, frames)),
        Box::new(StealExecutor::new(mk(), threads, frames)),
        Box::new(HybridExecutor::new(mk(), threads, frames, 1_000)),
    ]
}

fn deck_audio() -> Vec<AudioBuf> {
    (0..4)
        .map(|d| {
            AudioBuf::from_fn(2, djstar_dsp::BUFFER_FRAMES, |_, i| {
                0.3 * ((i + d * 31) as f32 * 0.13).sin()
            })
        })
        .collect()
}

#[test]
fn every_strategy_executes_all_67_nodes_exactly_once() {
    let audio = deck_audio();
    let controls = vec![0.5, 0.9, 0.0, 0.8, 0.8, 0.8, 0.8];
    for mut ex in executors(4) {
        ex.set_tracing(true);
        for cycle in 0..25 {
            ex.run_cycle(&audio, &controls);
            let trace = ex.take_trace().expect("trace enabled");
            let mut nodes: Vec<u32> = trace.executions().iter().map(|e| e.node).collect();
            nodes.sort_unstable();
            assert_eq!(
                nodes,
                (0..67).collect::<Vec<u32>>(),
                "{:?} cycle {cycle}: wrong execution set",
                ex.strategy()
            );
        }
    }
}

#[test]
fn traces_respect_dependencies_across_strategies_and_threads() {
    let audio = deck_audio();
    let controls = vec![0.5, 0.9, 0.0, 0.8, 0.8, 0.8, 0.8];
    for threads in [2, 3, 4, 5] {
        for mut ex in executors(threads) {
            ex.set_tracing(true);
            for _ in 0..10 {
                ex.run_cycle(&audio, &controls);
                let trace = ex.take_trace().unwrap();
                let topo = ex.topology();
                assert!(
                    trace.respects_dependencies(|n| topo.preds(NodeId(n)).to_vec()),
                    "{:?} with {threads} threads violated a dependency",
                    ex.strategy()
                );
            }
        }
    }
}

#[test]
fn sequential_trace_follows_queue_order_exactly() {
    let (graph, _) = build_djstar_graph(&Scenario::light_test());
    let queue = graph.topology().queue().to_vec();
    let mut ex = SequentialExecutor::new(graph, djstar_dsp::BUFFER_FRAMES);
    ex.set_tracing(true);
    ex.run_cycle(&deck_audio(), &[]);
    let order = ex.take_trace().unwrap().execution_order();
    assert_eq!(order, queue);
}

#[test]
fn busy_trace_contains_busywait_not_sleep() {
    let (graph, _) = build_djstar_graph(&Scenario::light_test());
    let mut ex = BusyExecutor::new(graph, 4, djstar_dsp::BUFFER_FRAMES);
    ex.set_tracing(true);
    let mut kinds = std::collections::HashSet::new();
    for _ in 0..20 {
        ex.run_cycle(&deck_audio(), &[]);
        for e in ex.take_trace().unwrap().events {
            kinds.insert(e.kind);
        }
    }
    assert!(kinds.contains(&TraceKind::Exec));
    assert!(!kinds.contains(&TraceKind::Sleep), "BUSY must never sleep");
}

#[test]
fn sleep_trace_contains_sleep_not_busywait() {
    let (graph, _) = build_djstar_graph(&Scenario::light_test());
    let mut ex = SleepExecutor::new(graph, 4, djstar_dsp::BUFFER_FRAMES);
    ex.set_tracing(true);
    let mut kinds = std::collections::HashSet::new();
    for _ in 0..20 {
        ex.run_cycle(&deck_audio(), &[]);
        for e in ex.take_trace().unwrap().events {
            kinds.insert(e.kind);
        }
    }
    assert!(!kinds.contains(&TraceKind::BusyWait), "SLEEP must not spin");
}

#[test]
fn stress_thousand_cycles_with_odd_thread_counts() {
    // Thread counts that do not divide 67 exercise uneven round-robin tails.
    let audio = deck_audio();
    for threads in [1usize, 3, 5, 7] {
        let (graph, map) = build_djstar_graph(&Scenario::light_test());
        let mut ex = StealExecutor::new(graph, threads, djstar_dsp::BUFFER_FRAMES);
        let mut out = AudioBuf::stereo_default();
        for _ in 0..300 {
            ex.run_cycle(&audio, &[0.5, 0.9, 0.0, 0.8, 0.8, 0.8, 0.8]);
        }
        ex.read_output(map.audio_out, &mut out);
        assert!(out.is_finite(), "ws-{threads} corrupted audio");
    }
}

#[test]
fn executors_are_reusable_after_idle_gaps() {
    // Simulates the engine idling between sound-card callbacks: workers
    // park and must wake for the next cycle.
    let (graph, _) = build_djstar_graph(&Scenario::light_test());
    let mut ex = BusyExecutor::new(graph, 4, djstar_dsp::BUFFER_FRAMES);
    let audio = deck_audio();
    for _ in 0..5 {
        ex.run_cycle(&audio, &[]);
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    ex.set_tracing(true);
    ex.run_cycle(&audio, &[]);
    assert_eq!(ex.take_trace().unwrap().executions().len(), 67);
}

/// All six strategies over the real graph, each paired with its master
/// output node (graphs are built per executor, so node ids are per-pair).
fn all_executors(threads: usize) -> Vec<(Box<dyn GraphExecutor>, NodeId)> {
    let frames = djstar_dsp::BUFFER_FRAMES;
    let mk = || build_djstar_graph(&Scenario::light_test());
    let mut v: Vec<(Box<dyn GraphExecutor>, NodeId)> = Vec::new();
    let (g, m) = mk();
    v.push((Box::new(SequentialExecutor::new(g, frames)), m.audio_out));
    let (g, m) = mk();
    v.push((Box::new(BusyExecutor::new(g, threads, frames)), m.audio_out));
    let (g, m) = mk();
    v.push((
        Box::new(SleepExecutor::new(g, threads, frames)),
        m.audio_out,
    ));
    let (g, m) = mk();
    v.push((
        Box::new(StealExecutor::new(g, threads, frames)),
        m.audio_out,
    ));
    let (g, m) = mk();
    v.push((
        Box::new(HybridExecutor::new(g, threads, frames, 1_000)),
        m.audio_out,
    ));
    let (g, m) = mk();
    let bp = ScheduleBlueprint::round_robin(g.topology(), threads, Priority::CriticalPath);
    v.push((Box::new(PlannedExecutor::new(g, frames, bp)), m.audio_out));
    v
}

#[test]
fn fault_storm_is_deterministic_and_audio_transparent_on_the_real_graph() {
    // One fixed seed; every strategy must (1) keep the master output
    // bit-exact with its own fault-free run, (2) agree with every other
    // strategy on both the output bits and the summed fault telemetry,
    // and (3) reproduce all of it on a repeat run.
    let audio = deck_audio();
    let controls = vec![0.5, 0.9, 0.0, 0.8, 0.8, 0.8, 0.8];
    let storm = FaultPlan {
        seed: 0xE14,
        spike_rate: 0.06,
        spike_iters: 60,
        stall_lanes: 5,
        stall_rate: 0.2,
        stall_iters: 90,
        pressure_period: 12,
        pressure_len: 5,
        pressure_iters: 40,
    };
    let run = |plan: Option<FaultPlan>| -> Vec<(Vec<u32>, u64, u64)> {
        all_executors(4)
            .into_iter()
            .map(|(mut ex, out_node)| {
                ex.set_faults(plan);
                ex.set_telemetry(true);
                for _ in 0..40 {
                    ex.run_cycle(&audio, &controls);
                }
                let mut out = AudioBuf::stereo_default();
                ex.read_output(out_node, &mut out);
                let bits: Vec<u32> = out.samples().iter().map(|s| s.to_bits()).collect();
                let (mut events, mut iters) = (0u64, 0u64);
                for rec in ex.take_telemetry().unwrap().iter() {
                    let t = rec.totals();
                    events += t.fault_events();
                    iters += t.fault_iters();
                }
                (bits, events, iters)
            })
            .collect()
    };
    let base = run(None);
    let faulted = run(Some(storm));
    let again = run(Some(storm));
    assert_eq!(faulted, again, "fixed seed must reproduce exactly");
    let (ref_bits, ref_events, ref_iters) = &faulted[0];
    assert!(*ref_events > 0, "storm produced no fault events");
    for (i, ((b_bits, b_events, _), (f_bits, f_events, f_iters))) in
        base.iter().zip(&faulted).enumerate()
    {
        assert_eq!(b_bits, f_bits, "strategy {i}: faults leaked into audio");
        assert_eq!(*b_events, 0, "strategy {i}: events without a plan");
        assert_eq!(f_bits, ref_bits, "strategy {i}: output diverged");
        assert_eq!(f_events, ref_events, "strategy {i}: event count diverged");
        assert_eq!(f_iters, ref_iters, "strategy {i}: injected work diverged");
    }
}

#[test]
fn node_processor_access_allows_live_retuning() {
    let (graph, map) = build_djstar_graph(&Scenario::light_test());
    let mut ex = SequentialExecutor::new(graph, djstar_dsp::BUFFER_FRAMES);
    let audio = deck_audio();
    let controls = vec![0.0, 0.9, 0.0, 0.8, 0.8, 0.8, 0.8]; // full deck A
    for _ in 0..30 {
        ex.run_cycle(&audio, &controls);
    }
    let mut before = AudioBuf::stereo_default();
    let channel_a = map.channel(0).unwrap();
    ex.read_output(channel_a, &mut before);
    // Kill channel A's filter via the processor handle.
    let proc = ex.node_processor(channel_a);
    // Downcast is not exposed; instead verify the handle is usable by
    // processing a buffer through it manually.
    let mut scratch = AudioBuf::stereo_default();
    let ctx = djstar_core::processor::CycleCtx::bare(9_999);
    proc.process(&[&before], &mut scratch, &ctx);
    assert!(scratch.is_finite());
}
